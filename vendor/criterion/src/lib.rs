//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`Throughput`] and
//! [`Bencher::iter`] — with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery. Good enough to compile every bench and
//! produce indicative ns/iter numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark("", &id.label(), 10, None, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Declares how much work one iteration performs, for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the target measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &self.name,
            &id.label(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            &self.name,
            &id.label(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

/// The amount of work one iteration represents.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Hands the measurement closure to the timing loop.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times for a stable estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call, then batches until the sample budget
        // (a few milliseconds) is spent.
        black_box(routine());
        let budget = Duration::from_millis(5);
        let mut iterations = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget {
            black_box(routine());
            iterations += 1;
        }
        self.iterations += iterations.max(1);
        self.elapsed += start.elapsed();
    }
}

fn run_benchmark<F>(
    group: &str,
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    for _ in 0..samples.min(3) {
        f(&mut bencher);
    }
    let name = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if bencher.iterations == 0 {
        println!("bench {name}: no iterations recorded");
        return;
    }
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => {
            let gib_s = bytes as f64 / ns_per_iter; // bytes/ns == GB/s
            format!(" ({gib_s:.3} GB/s)")
        }
        Throughput::Elements(elems) => {
            let melem_s = elems as f64 * 1e3 / ns_per_iter;
            format!(" ({melem_s:.3} Melem/s)")
        }
    });
    println!(
        "bench {name}: {ns_per_iter:.1} ns/iter{}",
        rate.unwrap_or_default()
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut group = c.benchmark_group("test");
            group.sample_size(2);
            group.throughput(Throughput::Bytes(8));
            group.bench_function("noop", |b| b.iter(|| 1 + 1));
            group.bench_with_input(BenchmarkId::new("param", 4), &4, |b, &n| b.iter(|| n * 2));
            group.finish();
            ran += 1;
        }
        assert_eq!(ran, 1);
    }
}
