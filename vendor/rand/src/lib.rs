//! Offline stand-in for the `rand` crate.
//!
//! Exposes the subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] over
//! integer and float ranges. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast and plenty good for simulation; it makes
//! no cryptographic claims (neither does the simulation).

use std::ops::{Range, RangeInclusive};

/// The raw entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable with [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T;
}

/// Draws a uniform `u64` in `[0, span)` without modulo bias.
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the largest multiple of `span`.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let raw = rng.next_u64();
        if raw < zone {
            return raw % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=9u64);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = rng.gen_range(0..=u64::MAX);
    }
}
