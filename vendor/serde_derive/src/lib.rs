//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes the workspace uses — named-field structs, tuple structs, unit
//! structs and enums whose variants are unit, tuple or struct-like — plus the
//! `#[serde(transparent)]` container attribute. Generics are not supported
//! (the workspace derives only on concrete types).
//!
//! The `syn`/`quote` crates are unavailable offline, so parsing walks the
//! raw [`proc_macro::TokenStream`] directly and code generation goes through
//! plain string formatting.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input looked like, reduced to the parts codegen needs.
enum Shape {
    Unit,
    Named { fields: Vec<String> },
    Tuple { arity: usize },
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    transparent: bool,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let parsed = match parse(input) {
        Ok(parsed) => parsed,
        Err(message) => {
            return format!("compile_error!({message:?});").parse().unwrap();
        }
    };
    let code = if serialize {
        gen_serialize(&parsed)
    } else {
        gen_deserialize(&parsed)
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if attr_is_serde_transparent(g.stream()) {
                        transparent = true;
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the offline serde derive does not support generics (type `{name}`)"
            ));
        }
    }

    let shape = if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                variants: parse_variants(g.stream())?,
            },
            other => return Err(format!("expected enum body, found {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Named {
                fields: parse_named_fields(g.stream())?,
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Tuple {
                arity: count_top_level_items(g.stream()),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("expected struct body, found {other:?}")),
        }
    };

    Ok(Input {
        name,
        transparent,
        shape,
    })
}

/// True when an attribute body (the tokens inside `#[...]`) is
/// `serde(... transparent ...)`.
fn attr_is_serde_transparent(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "transparent"))
        }
        _ => false,
    }
}

/// Splits a comma-separated token stream at top level, tracking `<...>`
/// nesting (angle brackets are punctuation, not groups).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(token);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn count_top_level_items(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Extracts the field name from one `attrs vis name: Type` segment.
fn field_name(segment: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    loop {
        match segment.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = segment.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) => return Ok(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .iter()
        .map(|s| field_name(s))
        .collect()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level(stream)
        .iter()
        .map(|segment| {
            let mut i = 0;
            // Skip variant attributes (doc comments etc.).
            while matches!(segment.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
                i += 2;
            }
            let name = match segment.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected variant name, found {other:?}")),
            };
            i += 1;
            let shape = match segment.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_top_level_items(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream())?)
                }
                None => VariantShape::Unit,
                // `= discriminant` on unit variants.
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantShape::Unit,
                other => return Err(format!("unexpected variant body: {other:?}")),
            };
            Ok(Variant { name, shape })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Unit => "::serde::value::Value::Null".to_string(),
        Shape::Named { fields } => {
            if input.transparent && fields.len() == 1 {
                format!("::serde::Serialize::to_value(&self.{})", fields[0])
            } else {
                let inserts: String = fields
                    .iter()
                    .map(|f| {
                        format!("__map.insert({f:?}, ::serde::Serialize::to_value(&self.{f}));\n")
                    })
                    .collect();
                format!(
                    "let mut __map = ::serde::value::Map::new();\n{inserts}\
                     ::serde::value::Value::Object(__map)"
                )
            }
        }
        Shape::Tuple { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum { variants } => {
            let arms: String = variants
                .iter()
                .map(|v| gen_serialize_variant(name, v))
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_serialize_variant(type_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.shape {
        VariantShape::Unit => {
            format!("{type_name}::{v} => ::serde::value::Value::String({v:?}.to_string()),\n")
        }
        VariantShape::Tuple(arity) => {
            let bindings: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
            let payload = if *arity == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items: Vec<String> = bindings
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "{type_name}::{v}({binds}) => {{\n\
                 let mut __map = ::serde::value::Map::new();\n\
                 __map.insert({v:?}, {payload});\n\
                 ::serde::value::Value::Object(__map)\n}}\n",
                binds = bindings.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let inserts: String = fields
                .iter()
                .map(|f| format!("__inner.insert({f:?}, ::serde::Serialize::to_value({f}));\n"))
                .collect();
            format!(
                "{type_name}::{v} {{ {binds} }} => {{\n\
                 let mut __inner = ::serde::value::Map::new();\n{inserts}\
                 let mut __map = ::serde::value::Map::new();\n\
                 __map.insert({v:?}, ::serde::value::Value::Object(__inner));\n\
                 ::serde::value::Value::Object(__map)\n}}\n",
                binds = fields.join(", ")
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Unit => format!("Ok({name})"),
        Shape::Named { fields } => {
            if input.transparent && fields.len() == 1 {
                format!(
                    "Ok({name} {{ {f}: ::serde::Deserialize::from_value(__value)? }})",
                    f = fields[0]
                )
            } else {
                let gets: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(__obj.get({f:?})\
                             .ok_or_else(|| ::serde::Error::custom(concat!(\"missing field `\", {f:?}, \"` in \", {name:?})))?)?,\n"
                        )
                    })
                    .collect();
                format!(
                    "let __obj = __value.as_object().ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"expected an object for \", {name:?})))?;\n\
                     Ok({name} {{\n{gets}}})"
                )
            }
        }
        Shape::Tuple { arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::Tuple { arity } => {
            let gets: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(concat!(\"expected an array for \", {name:?})))?;\n\
                 if __items.len() != {arity} {{\n\
                 return Err(::serde::Error::custom(concat!(\"wrong arity for \", {name:?})));\n}}\n\
                 Ok({name}({gets}))",
                gets = gets.join(", ")
            )
        }
        Shape::Enum { variants } => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| format!("{v:?} => Ok({name}::{v}),\n", v = v.name))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.shape {
                VariantShape::Unit => None,
                VariantShape::Tuple(1) => Some(format!(
                    "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),\n"
                )),
                VariantShape::Tuple(arity) => {
                    let gets: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    Some(format!(
                        "{vn:?} => {{\n\
                         let __items = __payload.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected an array variant payload\"))?;\n\
                         if __items.len() != {arity} {{\n\
                         return Err(::serde::Error::custom(\"wrong variant arity\"));\n}}\n\
                         Ok({name}::{vn}({gets}))\n}}\n",
                        gets = gets.join(", ")
                    ))
                }
                VariantShape::Named(fields) => {
                    let gets: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(__inner.get({f:?})\
                                 .ok_or_else(|| ::serde::Error::custom(concat!(\"missing field `\", {f:?}, \"`\")))?)?,\n"
                            )
                        })
                        .collect();
                    Some(format!(
                        "{vn:?} => {{\n\
                         let __inner = __payload.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected an object variant payload\"))?;\n\
                         Ok({name}::{vn} {{\n{gets}}})\n}}\n"
                    ))
                }
            }
        })
        .collect();
    format!(
        "match __value {{\n\
         ::serde::value::Value::String(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
         }},\n\
         ::serde::value::Value::Object(__map) if __map.len() == 1 => {{\n\
         let (__tag, __payload) = __map.iter().next().unwrap();\n\
         match __tag.as_str() {{\n\
         {tagged_arms}\
         __other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
         }}\n\
         }}\n\
         __other => Err(::serde::Error::custom(concat!(\"expected a \", {name:?}, \" value\"))),\n\
         }}"
    )
}
