//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use: the [`proptest!`]
//! macro, `prop_assert!` / `prop_assert_eq!`, [`strategy::Strategy`] over
//! numeric ranges and tuples, [`arbitrary::any`], and
//! [`collection::vec()`]. Cases are generated from a fixed seed so test runs
//! are deterministic; there is no shrinking — a failing case panics with the
//! generated values available via the assertion message.

pub mod test_runner {
    pub use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Default number of random cases each property runs (override at run
    /// time with the `PROPTEST_CASES` environment variable, as the real
    /// proptest supports — CI's dedicated property job raises it to 1024).
    pub const CASES: usize = 64;

    /// Number of cases to run: `PROPTEST_CASES` when set and parseable,
    /// [`CASES`] otherwise.
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(CASES)
    }

    /// The deterministic per-test RNG.
    pub type TestRng = StdRng;

    /// Creates the deterministic RNG every property test starts from.
    pub fn deterministic_rng() -> TestRng {
        StdRng::seed_from_u64(0x5eed_cafe_f00d_d00d)
    }
}

pub mod strategy {
    use rand::{Rng, RngCore};
    use std::ops::{Range, RangeFrom, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A recipe for generating random values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_float_strategies!(f32, f64);

    /// A strategy that always yields the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategies {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategies! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Strategy for [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_any!(bool, u8, u16, u32, u64, usize, f32, f64);

    impl Strategy for Any<i32> {
        type Value = i32;
        fn sample(&self, rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }

    impl Strategy for Any<i64> {
        type Value = i64;
        fn sample(&self, rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// A strategy producing uniformly distributed values of `T`.
    pub fn any<T>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The number of elements a [`vec()`] strategy may generate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: range.start,
                max: range.end.max(range.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: range.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact + 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn` runs [`test_runner::CASES`] times with
/// freshly sampled arguments.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::deterministic_rng();
                for __case in 0..$crate::test_runner::cases() {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a property-test invariant.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, f in 0.5f64..2.0, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(1u64..100, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (1..100).contains(&x)));
        }

        #[test]
        fn tuple_strategies_work(t in (1u32..4, 0.0f64..1.0)) {
            prop_assert!((1..4).contains(&t.0));
            prop_assert!((0.0..1.0).contains(&t.1));
        }
    }

    #[test]
    fn case_count_defaults_and_env_override() {
        // Without the env var (or with garbage) the default applies; the CI
        // property job sets PROPTEST_CASES=1024 to deepen the search.
        let cases = crate::test_runner::cases();
        assert!(cases >= 1);
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(cases, crate::test_runner::CASES);
        }
    }
}
