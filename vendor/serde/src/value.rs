//! The self-describing value tree used by the offline serde stand-in,
//! plus `Serialize`/`Deserialize` implementations for primitives and the
//! collections the workspace uses.

use std::collections::{BTreeMap, HashMap};

use crate::{Deserialize, Error, Serialize};

/// A JSON-like value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key/value map with insertion order preserved.
    Object(Map),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A short human-readable description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A number: signed, unsigned or floating point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The numeric value as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The numeric value as `u64`, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(f) => {
                if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The numeric value as `i64`, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }
}

impl PartialEq for Number {
    /// Numeric equality across representations, so a round-trip that turns
    /// `2.0` into the integer `2` still compares equal.
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => return a == b,
                (None, None) => {}
                _ => return false,
            },
        }
        self.as_f64() == other.as_f64()
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Builds a map from key/value pairs.
    pub fn from_pairs(entries: Vec<(String, Value)>) -> Self {
        Map { entries }
    }

    /// Appends or replaces an entry.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up an entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

fn expected(what: &'static str, got: &Value) -> Error {
    Error::custom(format!("expected {what}, found {}", got.kind()))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| expected(stringify!($t), value)),
                    _ => Err(expected(stringify!($t), value)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| expected(stringify!($t), value)),
                    _ => Err(expected(stringify!($t), value)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    _ => Err(expected(stringify!($t), value)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(v) => Value::Number(Number::PosInt(v)),
            // Out-of-range totals degrade to floats, as serde_json does for
            // arbitrary-precision-disabled builds.
            Err(_) => Value::Number(Number::Float(*self as f64)),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => n
                .as_u64()
                .map(u128::from)
                .ok_or_else(|| expected("u128", value)),
            _ => Err(expected("u128", value)),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => v.to_value(),
            Err(_) => Value::Number(Number::Float(*self as f64)),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => n
                .as_i64()
                .map(i128::from)
                .ok_or_else(|| expected("i128", value)),
            _ => Err(expected("i128", value)),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(expected("bool", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(expected("string", value)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(expected("single-character string", value)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(expected("array", value)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = value.as_array().ok_or_else(|| expected("tuple array", value))?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected a {LEN}-element array, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Serializes a map key, which must render as a string (serde_json's rule
/// for JSON object keys).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        Value::Number(n) => match n {
            Number::PosInt(v) => v.to_string(),
            Number::NegInt(v) => v.to_string(),
            Number::Float(v) => v.to_string(),
        },
        Value::Bool(b) => b.to_string(),
        other => panic!("map keys must serialize to strings, got {}", other.kind()),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    K::from_value(&Value::String(key.to_string())).or_else(|_| {
        // Integer-keyed maps round-trip through stringified numbers.
        let parsed = if let Ok(u) = key.parse::<u64>() {
            Value::Number(Number::PosInt(u))
        } else if let Ok(i) = key.parse::<i64>() {
            Value::Number(Number::NegInt(i))
        } else {
            return Err(Error::custom(format!("invalid map key `{key}`")));
        };
        K::from_value(&parsed)
    })
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(Map::from_pairs(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        ))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| expected("object", value))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: Serialize + Ord,
    V: Serialize,
    S: std::hash::BuildHasher,
{
    fn to_value(&self) -> Value {
        // Stable key order keeps serialization deterministic.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(Map::from_pairs(pairs))
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| expected("object", value))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => s
                .parse()
                .map_err(|_| Error::custom(format!("invalid IPv4 address `{s}`"))),
            _ => Err(expected("IPv4 address string", value)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| Error::custom(format!("expected {N} elements, found {}", v.len())))
    }
}
