//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate (together with `serde_derive` and `serde_json` in `vendor/`)
//! provides the subset of serde's surface the workspace actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs and enums, including
//!   `#[serde(transparent)]` newtypes;
//! * externally-tagged enum representation, matching real serde's default;
//! * `serde::de::DeserializeOwned` as a trait bound;
//! * JSON round-trips through the sibling `serde_json` stand-in.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! simple self-describing [`value::Value`] tree. That is all the workspace
//! needs: state blobs, reports and test round-trips.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Serialization into the self-describing [`Value`] tree.
///
/// The derive macro implements this for structs and enums; implementations
/// for primitives, collections and a few `std` types live in [`value`].
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the self-describing [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// The (de)serialization error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// The deserialization half of serde's module layout.
pub mod de {
    pub use super::Error;

    /// A value that can be deserialized without borrowing from the input.
    ///
    /// In this stand-in every [`Deserialize`](super::Deserialize) type is
    /// owned, so the trait is a blanket alias.
    pub trait DeserializeOwned: super::Deserialize {}

    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// The serialization half of serde's module layout.
pub mod ser {
    pub use super::Error;
}
