//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the API subset the PAM workspace uses — [`to_string`],
//! [`from_str`], [`to_value`], [`from_value`], [`Value`] and the [`json!`]
//! macro — on top of the `serde` stand-in's self-describing value tree.
//! Output follows serde_json conventions: externally tagged enums, `null`
//! for `None`, objects for maps, and floats printed with a decimal point.

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Serializes a value to its JSON text representation.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

/// Converts a value into the generic [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Converts a generic [`Value`] tree into a typed value.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports nested objects and arrays with literal (or simple expression)
/// keys and values — the subset the workspace's tests use.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {
        $crate::Value::Object($crate::Map::from_pairs(vec![
            $( (($key).to_string(), $crate::json!($val)) ),*
        ]))
    };
    ($other:expr) => {
        $crate::to_value(&$other).unwrap()
    };
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n)?,
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_number(out: &mut String, number: &Number) -> Result<(), Error> {
    match *number {
        Number::PosInt(n) => out.push_str(&n.to_string()),
        Number::NegInt(n) => out.push_str(&n.to_string()),
        Number::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent NaN or infinity"));
            }
            // `{}` prints the shortest representation that round-trips; add a
            // trailing `.0` (as serde_json does) so the value reparses as a
            // float rather than an integer.
            let text = f.to_string();
            out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
    Ok(())
}

fn write_string(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(Map::from_pairs(entries)));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(Map::from_pairs(entries)));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        } else if let Ok(n) = text.parse::<u64>() {
            Number::PosInt(n)
        } else if let Ok(n) = text.parse::<i64>() {
            Number::NegInt(n)
        } else {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&3.2f64).unwrap(), "3.2");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&64u64).unwrap(), "64");
        assert_eq!(from_str::<f64>("3.2").unwrap(), 3.2);
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("64").unwrap(), 64);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_parse() {
        let text = "line\n\"quoted\"\\slash";
        let json = to_string(&text.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), text);
    }

    #[test]
    fn nested_structures_round_trip() {
        let value: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.5)];
        let json = to_string(&value).unwrap();
        assert_eq!(from_str::<Vec<(u64, f64)>>(&json).unwrap(), value);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"a": 1, "b": [true, null]});
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("a"), Some(&Value::Number(Number::PosInt(1))));
        assert_eq!(
            obj.get("b"),
            Some(&Value::Array(vec![Value::Bool(true), Value::Null]))
        );
    }

    #[test]
    fn maps_round_trip() {
        use std::collections::BTreeMap;
        let mut map = BTreeMap::new();
        map.insert("nic".to_string(), 0.9f64);
        map.insert("cpu".to_string(), 0.4f64);
        let json = to_string(&map).unwrap();
        let back: BTreeMap<String, f64> = from_str(&json).unwrap();
        assert_eq!(back, map);
    }
}
