//! Property tests of the iterative pre-copy migration engine.
//!
//! Two invariants, over random traffic interleavings (load, seed, packet
//! mix, migration instant and engine knobs all randomised):
//!
//! 1. **zero loss** — when the staging buffer is sized per config (the
//!    buffer bound covers the worst-case final-freeze blackout), no packet
//!    is ever dropped by migration;
//! 2. **per-flow ordering** — packet ids are assigned in send order, so for
//!    every flow the ids observed at egress must be strictly increasing even
//!    across the pre-copy handover.
//!
//! The full randomised suites are `#[ignore]`d out of the tier-1
//! `cargo test -q` path and run by CI's dedicated `proptest` job with
//! `PROPTEST_CASES=1024`; a deterministic smoke case of each property stays
//! in the default path.

use pam::core::Placement;
use pam::nf::ServiceChainSpec;
use pam::runtime::{ChainRuntime, MigrationConfig, MigrationMode, RuntimeConfig};
use pam::traffic::{
    ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TraceConfig, TraceSynthesizer,
    TrafficSchedule,
};
use pam::types::{ByteSize, Device, Gbps, NfId, SimDuration, SimTime};
use proptest::prelude::*;

/// One randomised pre-copy run: warm up, migrate the monitor mid-trace,
/// drain everything. Returns the runtime for inspection.
fn pre_copy_run(
    load_gbps: f64,
    seed: u64,
    migrate_at_us: u64,
    convergence_flows: usize,
    max_rounds: usize,
    mixed_sizes: bool,
) -> ChainRuntime {
    let config = RuntimeConfig::evaluation_default().with_migration(MigrationConfig {
        mode: MigrationMode::PreCopy,
        max_precopy_rounds: max_rounds,
        convergence_flows,
        ..MigrationConfig::default()
    });
    let mut runtime = ChainRuntime::new(
        ServiceChainSpec::figure1(),
        &Placement::figure1_initial(),
        config,
    )
    .unwrap();
    runtime.record_egress();
    let mut trace = TraceSynthesizer::new(TraceConfig {
        sizes: if mixed_sizes {
            PacketSizeProfile::paper_sweep()
        } else {
            PacketSizeProfile::Fixed(ByteSize::bytes(512))
        },
        flows: FlowGeneratorConfig {
            flow_count: 400,
            zipf_exponent: 1.0,
            tcp_fraction: 0.8,
        },
        arrival: ArrivalProcess::Cbr,
        schedule: TrafficSchedule::constant(Gbps::new(load_gbps), SimDuration::from_millis(6)),
        seed,
    });
    let migrate_at = SimTime::from_micros(migrate_at_us);
    runtime.run_until(&mut trace, migrate_at);
    runtime
        .live_migrate(NfId::new(1), Device::Cpu, runtime.now())
        .expect("monitor starts on the NIC");
    runtime.run_to_completion(&mut trace);
    runtime
}

/// Asserts both properties on a finished run.
fn assert_properties(runtime: &ChainRuntime, context: &str) {
    let outcome = runtime.outcome();
    // The handover completed and nothing was dropped to migration: the
    // default 2 ms staging-buffer bound covers the residual freeze by
    // orders of magnitude, so a single drop means the engine blacked out
    // far longer than the dirty set justifies.
    assert_eq!(outcome.migrations.len(), 1, "{context}: no handover");
    assert_eq!(
        outcome.drops_migration, 0,
        "{context}: migration dropped packets despite a buffer sized per config"
    );
    let report = &outcome.migrations[0];
    assert_eq!(report.mode, MigrationMode::PreCopy, "{context}");
    assert!(
        report.blackout() <= runtime.config().migration_buffer_bound,
        "{context}: blackout {} exceeded the staging bound",
        report.blackout()
    );
    // Per-flow ordering: ids are send-ordered, so each flow's egress ids
    // must be strictly increasing across the handover.
    let mut last_seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for &(id, flow) in runtime.egress_log() {
        if let Some(prev) = last_seen.insert(flow, id) {
            assert!(
                id > prev,
                "{context}: flow {flow} reordered — packet {id} egressed after {prev}"
            );
        }
    }
    assert!(
        !runtime.egress_log().is_empty(),
        "{context}: nothing egressed"
    );
}

proptest! {
    /// The randomised suite (CI's `proptest` job, PROPTEST_CASES=1024).
    #[test]
    #[ignore = "randomised suite: run via `cargo test -- --ignored` (CI proptest job)"]
    fn pre_copy_never_drops_and_never_reorders(
        load in 0.6f64..1.7,
        seed in 0u64..10_000,
        migrate_at_us in 200u64..4_000,
        convergence in 4usize..128,
        rounds in 2usize..10,
        mixed in any::<bool>(),
    ) {
        let runtime = pre_copy_run(load, seed, migrate_at_us, convergence, rounds, mixed);
        assert_properties(
            &runtime,
            &format!(
                "load={load:.2} seed={seed} at={migrate_at_us}us conv={convergence} rounds={rounds} mixed={mixed}"
            ),
        );
    }
}

/// Deterministic smoke case of the same two properties (tier-1 path).
#[test]
fn pre_copy_smoke_no_loss_no_reorder() {
    let runtime = pre_copy_run(1.5, 42, 2_000, 32, 8, true);
    assert_properties(&runtime, "smoke");
}

/// The ordering property also holds under stop-and-copy (packets wait out
/// the blackout in arrival order) — the staging buffer just has to be large
/// enough, which the default config guarantees at these state sizes.
#[test]
fn stop_and_copy_smoke_preserves_ordering_too() {
    let mut runtime = ChainRuntime::new(
        ServiceChainSpec::figure1(),
        &Placement::figure1_initial(),
        RuntimeConfig::evaluation_default(),
    )
    .unwrap();
    runtime.record_egress();
    let mut trace = TraceSynthesizer::new(TraceConfig {
        sizes: PacketSizeProfile::Fixed(ByteSize::bytes(512)),
        flows: FlowGeneratorConfig {
            flow_count: 400,
            zipf_exponent: 1.0,
            tcp_fraction: 0.8,
        },
        arrival: ArrivalProcess::Cbr,
        schedule: TrafficSchedule::constant(Gbps::new(1.5), SimDuration::from_millis(6)),
        seed: 7,
    });
    runtime.run_until(&mut trace, SimTime::from_millis(2));
    runtime
        .live_migrate(NfId::new(1), Device::Cpu, runtime.now())
        .unwrap();
    runtime.run_to_completion(&mut trace);
    assert_eq!(runtime.outcome().drops_migration, 0);
    let mut last_seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for &(id, flow) in runtime.egress_log() {
        if let Some(prev) = last_seen.insert(flow, id) {
            assert!(id > prev, "flow {flow} reordered: {id} after {prev}");
        }
    }
}
