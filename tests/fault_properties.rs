//! Property tests of the fault-injection subsystem.
//!
//! Random seeded fault schedules ([`pam::sim::FaultPlan::generate`]) over
//! random mini-fleets, three invariants:
//!
//! 1. **zero loss / no duplicate apply** — after a drain margin, every
//!    server's `injected == delivered + drops` exactly, and the faulted
//!    run's `injected + fault_drops` equals the fault-free reference's
//!    injected count (arrivals are seeded and fault-independent: each one is
//!    either submitted or black-holed, never silently gone and never
//!    double-counted);
//! 2. **sharded byte-identity under faults** — the faulted run's report is
//!    byte-identical whether the fleet ran sequentially or sharded (fault
//!    events are window barriers in the sharded runner);
//! 3. **replay determinism** — the same `(scenario, plan)` pair replays to
//!    byte-identical JSON.
//!
//! The full randomised suites are `#[ignore]`d out of the tier-1
//! `cargo test -q` path and run by CI's fault jobs (nightly deep sweep at
//! `PROPTEST_CASES=4096`); a deterministic smoke case of each property
//! stays in the default path.

use pam::core::StrategyKind;
use pam::experiments::fleet::{FleetScenario, FleetScenarioKind};
use pam::fleet::FleetReport;
use pam::sim::{FaultPlan, FaultPlanConfig};
use pam::types::SimDuration;
use proptest::prelude::*;

/// Drain margin past the traffic horizon so conservation is exact.
const DRAIN: SimDuration = SimDuration::from_millis(4);

/// The scenario of case `kind_index`, sized and seeded by the case.
fn scenario_for(kind_index: usize, servers: usize, seed: u64) -> FleetScenario {
    let kind = FleetScenarioKind::ALL[kind_index % FleetScenarioKind::ALL.len()];
    let mut scenario = FleetScenario::new(kind, servers);
    scenario.seed = seed;
    scenario
}

/// A generated fault plan fitting the scenario's traffic horizon.
fn plan_for(scenario: &FleetScenario, fault_seed: u64) -> FaultPlan {
    let horizon = scenario.schedule_for(0).total_duration();
    let config = FaultPlanConfig {
        crashes: 2,
        flaps: 3,
        swings: 2,
        ..FaultPlanConfig::default()
    };
    let plan = FaultPlan::generate(fault_seed, scenario.servers, horizon, &config);
    assert!(
        plan.validate(scenario.servers).is_ok(),
        "generated plans always validate"
    );
    plan
}

/// Runs `scenario` under `plan` to the drained horizon on `shards` lanes
/// (0 = the sequential runner) and returns the report.
fn faulted_run(scenario: &FleetScenario, plan: &FaultPlan, shards: usize) -> FleetReport {
    let mut fleet = scenario
        .build_fleet(StrategyKind::Pam)
        .expect("scenario builds");
    fleet
        .set_fault_plan(plan.clone())
        .expect("generated plans install");
    let horizon = scenario.horizon() + DRAIN;
    if shards == 0 {
        fleet.run(horizon);
    } else {
        fleet.run_sharded(horizon, shards);
    }
    fleet.report()
}

/// Asserts invariant 1 (zero loss / no duplicate apply) on a faulted run
/// against its fault-free reference.
fn assert_conservation(scenario: &FleetScenario, faulted: &FleetReport, context: &str) {
    let mut reference = scenario
        .build_fleet(StrategyKind::Pam)
        .expect("scenario builds");
    reference.run(scenario.horizon() + DRAIN);
    let reference = reference.report();
    assert_eq!(
        faulted.totals.injected + faulted.totals.fault_drops,
        reference.totals.injected,
        "{context}: offered load not conserved"
    );
    for server in &faulted.servers {
        assert_eq!(
            server.injected,
            server.delivered + server.drops_overload + server.drops_policy + server.drops_migration,
            "{context}: server {} lost or duplicated packets",
            server.server
        );
    }
    // Eventual drain: with the margin past the horizon nothing is in
    // flight, so the fleet totals close exactly too.
    assert_eq!(
        faulted.totals.injected,
        faulted.totals.delivered
            + faulted.totals.drops_overload
            + faulted.totals.drops_policy
            + faulted.totals.drops_migration,
        "{context}: fleet totals did not drain"
    );
}

/// One full case: conservation, shard byte-identity and replay determinism.
fn check_case(kind_index: usize, servers: usize, seed: u64, fault_seed: u64, shards: usize) {
    let scenario = scenario_for(kind_index, servers, seed);
    let plan = plan_for(&scenario, fault_seed);
    let context = format!(
        "{} servers={servers} seed={seed} faults={} fault_seed={fault_seed} shards={shards}",
        scenario.kind,
        plan.len()
    );
    let sequential = faulted_run(&scenario, &plan, 0);
    assert_conservation(&scenario, &sequential, &context);
    let sequential_json = serde_json::to_string(&sequential).expect("report serializes");
    let sharded = faulted_run(&scenario, &plan, shards);
    assert_eq!(
        sequential_json,
        serde_json::to_string(&sharded).expect("report serializes"),
        "{context}: sharded faulted run diverged from sequential"
    );
    let replay = faulted_run(&scenario, &plan, 0);
    assert_eq!(
        sequential_json,
        serde_json::to_string(&replay).expect("report serializes"),
        "{context}: identical faulted runs diverged"
    );
}

proptest! {
    /// The randomised suite (CI's fault jobs; the nightly deep sweep runs it
    /// at PROPTEST_CASES=4096).
    #[test]
    #[ignore = "randomised suite: run via `cargo test -- --ignored` (CI fault jobs)"]
    fn random_fault_schedules_conserve_and_shard_deterministically(
        kind_index in 0usize..4,
        servers in 2usize..5,
        seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        shards in 2usize..5,
    ) {
        check_case(kind_index, servers, seed, fault_seed, shards);
    }
}

/// Deterministic smoke case of every property (tier-1 path): one case per
/// traffic shape, crossing shard counts.
#[test]
fn fault_smoke_conserves_and_shards_deterministically() {
    check_case(0, 2, 2018, 7, 2);
    check_case(3, 4, 2018, 21, 3);
}

/// A plan whose crashes never recover still conserves: everything the dead
/// servers would have admitted is either re-steered to survivors or counted
/// as a fault drop — never lost.
#[test]
fn unrecovered_crashes_still_conserve() {
    use pam::sim::FaultKind;
    let scenario = scenario_for(1, 3, 2018);
    let generated = plan_for(&scenario, 99);
    let crash_only = FaultPlan::new(
        generated
            .events()
            .iter()
            .copied()
            .filter(|event| !matches!(event.kind, FaultKind::ServerRecover { .. }))
            .collect(),
    );
    let report = faulted_run(&scenario, &crash_only, 0);
    assert_conservation(&scenario, &report, "crash-only");
}
