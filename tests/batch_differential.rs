//! Differential test: the batched datapath must change *when* packets move,
//! never *what* happens to them. A `batch=N` run over the same seeded trace
//! as a `batch=1` run must produce identical per-flow NF end states (monitor
//! counters, NAT bindings and port cursor) and identical per-flow egress
//! order — batching may reorder packets of *different* flows (they share a
//! doorbell batch) but never packets of the same flow.
//!
//! The trace is sized so no run drops anything: then every packet reaches
//! every NF at every batch size and the only batch-dependent observable is
//! timing, which the comparisons deliberately project out (timestamps are
//! latency).

use pam::core::Placement;
use pam::nf::{NfKind, ServiceChainSpec};
use pam::runtime::{ChainRuntime, MigrationMode, RunOutcome, RuntimeConfig};
use pam::traffic::{
    ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TraceConfig, TraceSynthesizer,
    TrafficSchedule,
};
use pam::types::{Device, Endpoint, Gbps, NfId, SimDuration, SimTime};
use serde_json::Value;
use std::collections::BTreeMap;

/// Monitor → NAT on the SmartNIC, as in the migration differential suite;
/// optionally the monitor migrates to the CPU mid-run so the batched path is
/// also exercised across a blackout and handover.
fn run_batched(max_batch: usize, migrate: bool) -> (ChainRuntime, RunOutcome) {
    let spec = ServiceChainSpec::new(
        "monitor-nat",
        Endpoint::Wire,
        Endpoint::Host,
        vec![NfKind::Monitor, NfKind::Nat],
    );
    let placement = Placement::all_on(Device::SmartNic, 2);
    let config = RuntimeConfig::evaluation_default()
        .with_migration_mode(MigrationMode::PreCopy)
        .with_max_batch(max_batch);
    let mut runtime = ChainRuntime::new(spec, &placement, config).unwrap();
    runtime.record_egress();
    let mut trace = TraceSynthesizer::new(TraceConfig {
        sizes: PacketSizeProfile::paper_sweep(),
        flows: FlowGeneratorConfig {
            flow_count: 600,
            zipf_exponent: 1.0,
            tcp_fraction: 0.8,
        },
        arrival: ArrivalProcess::Cbr,
        schedule: TrafficSchedule::constant(Gbps::new(1.2), SimDuration::from_millis(8)),
        seed: 2018,
    });
    if migrate {
        runtime.run_until(&mut trace, SimTime::from_millis(3));
        runtime
            .live_migrate(NfId::new(0), Device::Cpu, runtime.now())
            .unwrap();
    }
    runtime.run_to_completion(&mut trace);
    let outcome = runtime.outcome();
    (runtime, outcome)
}

fn uint(value: &Value) -> u64 {
    match value {
        Value::Number(n) => n.as_u64().expect("non-negative integer"),
        other => panic!("expected a number, got {}", other.kind()),
    }
}

/// The monitor's batch-invariant projection: sorted (flow, packets, bytes).
fn monitor_rows(runtime: &ChainRuntime) -> Vec<(u64, u64, u64)> {
    let state = runtime.instances()[0].nf.export_state();
    let object = state.data.as_object().unwrap();
    let mut rows: Vec<(u64, u64, u64)> = object
        .get("flows")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|pair| {
            let entry = pair.as_array().unwrap();
            let stats = entry[1].as_object().unwrap();
            (
                uint(&entry[0]),
                uint(stats.get("packets").unwrap()),
                uint(stats.get("bytes").unwrap()),
            )
        })
        .collect();
    rows.sort_unstable();
    rows
}

/// The NAT's end state is already timestamp-free: compare it byte for byte.
fn nat_state_json(runtime: &ChainRuntime) -> String {
    serde_json::to_string(&runtime.instances()[1].nf.export_state()).unwrap()
}

/// The egress log projected per flow: for each flow, the packet ids in
/// delivery order. Batching may interleave flows differently but must keep
/// every flow's own sequence intact and identical across batch sizes.
fn per_flow_egress(runtime: &ChainRuntime) -> BTreeMap<u64, Vec<u64>> {
    let mut flows: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (id, flow) in runtime.egress_log() {
        flows.entry(*flow).or_default().push(*id);
    }
    flows
}

fn assert_no_drops(name: &str, outcome: &RunOutcome) {
    assert_eq!(outcome.drops_overload, 0, "{name}: overload drops");
    assert_eq!(outcome.drops_policy, 0, "{name}: policy drops");
    assert_eq!(outcome.drops_migration, 0, "{name}: migration drops");
    assert_eq!(outcome.injected, outcome.delivered, "{name}: lost packets");
}

#[test]
fn batch_sizes_agree_on_per_flow_nf_end_states_and_egress_order() {
    let (baseline_runtime, baseline) = run_batched(1, false);
    assert_no_drops("batch=1", &baseline);
    let reference_rows = monitor_rows(&baseline_runtime);
    let reference_nat = nat_state_json(&baseline_runtime);
    let reference_egress = per_flow_egress(&baseline_runtime);
    assert!(reference_rows.len() > 100, "trace exercises many flows");

    for max_batch in [2usize, 8, 32] {
        let (runtime, outcome) = run_batched(max_batch, false);
        assert_no_drops(&format!("batch={max_batch}"), &outcome);
        assert_eq!(outcome.injected, baseline.injected);
        assert_eq!(
            monitor_rows(&runtime),
            reference_rows,
            "batch={max_batch}: monitor per-flow counters diverged"
        );
        assert_eq!(
            nat_state_json(&runtime),
            reference_nat,
            "batch={max_batch}: NAT bindings diverged"
        );
        assert_eq!(
            per_flow_egress(&runtime),
            reference_egress,
            "batch={max_batch}: per-flow egress order diverged"
        );
    }
}

#[test]
fn batched_runs_agree_across_a_live_migration() {
    let (baseline_runtime, baseline) = run_batched(1, true);
    let (batched_runtime, batched) = run_batched(8, true);
    for (name, outcome) in [("batch=1", &baseline), ("batch=8", &batched)] {
        assert_no_drops(name, outcome);
        assert_eq!(outcome.migrations.len(), 1, "{name}: one migration");
    }
    assert_eq!(
        monitor_rows(&baseline_runtime),
        monitor_rows(&batched_runtime)
    );
    assert_eq!(
        nat_state_json(&baseline_runtime),
        nat_state_json(&batched_runtime)
    );
    assert_eq!(
        per_flow_egress(&baseline_runtime),
        per_flow_egress(&batched_runtime)
    );
}

#[test]
fn batched_replay_is_deterministic() {
    // Two identical batched runs must agree on everything observable, down
    // to the exact egress interleaving and latency percentiles.
    let (a_runtime, a) = run_batched(8, true);
    let (b_runtime, b) = run_batched(8, true);
    assert_eq!(a_runtime.egress_log(), b_runtime.egress_log());
    assert_eq!(a.injected, b.injected);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.mean_latency, b.mean_latency);
    assert_eq!(a.p50_latency, b.p50_latency);
    assert_eq!(a.p99_latency, b.p99_latency);
    assert_eq!(a.pcie_crossings, b.pcie_crossings);
}
