//! Replay determinism of the fleet layer: two identical fleet runs produce
//! byte-identical JSON reports, across every scenario in the matrix and
//! under both live-migration transfer modes.

use pam::core::StrategyKind;
use pam::experiments::fleet::{FleetScenario, FleetScenarioKind, FleetTuning};
use pam::runtime::MigrationMode;

fn report_json(
    kind: FleetScenarioKind,
    strategy: StrategyKind,
    servers: usize,
    mode: MigrationMode,
) -> String {
    let scenario =
        FleetScenario::new(kind, servers).with_tuning(FleetTuning::default().with_mode(mode));
    let report = scenario.run(strategy).expect("scenario runs");
    serde_json::to_string(&report).expect("report serializes")
}

#[test]
fn every_scenario_replays_byte_identically_under_pam() {
    for kind in FleetScenarioKind::ALL {
        let a = report_json(kind, StrategyKind::Pam, 2, MigrationMode::StopAndCopy);
        let b = report_json(kind, StrategyKind::Pam, 2, MigrationMode::StopAndCopy);
        assert_eq!(a, b, "{kind} diverged between identical runs");
    }
}

#[test]
fn every_scenario_replays_byte_identically_with_pre_copy() {
    for kind in FleetScenarioKind::ALL {
        let a = report_json(kind, StrategyKind::Pam, 2, MigrationMode::PreCopy);
        let b = report_json(kind, StrategyKind::Pam, 2, MigrationMode::PreCopy);
        assert_eq!(a, b, "{kind} diverged between identical pre-copy runs");
    }
}

#[test]
fn every_scenario_replays_byte_identically_with_a_batched_datapath() {
    for kind in FleetScenarioKind::ALL {
        let run = || {
            let scenario = FleetScenario::new(kind, 2).with_tuning(
                FleetTuning::default()
                    .with_mode(MigrationMode::PreCopy)
                    .with_batch(8),
            );
            let report = scenario.run(StrategyKind::Pam).expect("scenario runs");
            serde_json::to_string(&report).expect("report serializes")
        };
        assert_eq!(
            run(),
            run(),
            "{kind} diverged between identical batched runs"
        );
    }
}

#[test]
fn batched_pre_copy_runs_shard_byte_identically() {
    // The heavy configuration — pre-copy live migration on the coalesced
    // batch=8 datapath — through the sharded runner: exactly the bytes the
    // sequential run produces.
    for kind in FleetScenarioKind::ALL {
        let scenario = FleetScenario::new(kind, 2).with_tuning(
            FleetTuning::default()
                .with_mode(MigrationMode::PreCopy)
                .with_batch(8),
        );
        let sequential = scenario.run(StrategyKind::Pam).expect("scenario runs");
        let sharded = scenario
            .run_sharded(StrategyKind::Pam, 2)
            .expect("sharded scenario runs");
        assert_eq!(
            serde_json::to_string(&sequential).expect("report serializes"),
            serde_json::to_string(&sharded).expect("report serializes"),
            "{kind} diverged between the sequential and sharded runners"
        );
    }
}

#[test]
fn batch_size_changes_the_report_but_batch_one_is_the_baseline() {
    let kind = FleetScenarioKind::RollingHotspot;
    let unbatched = FleetScenario::new(kind, 2);
    let baseline = serde_json::to_string(&unbatched.run(StrategyKind::Pam).unwrap()).unwrap();
    // batch=1 is the identity knob...
    let batch1 = unbatched.with_tuning(FleetTuning::default().with_batch(1));
    assert_eq!(
        baseline,
        serde_json::to_string(&batch1.run(StrategyKind::Pam).unwrap()).unwrap()
    );
    // ...and batch=8 is a genuinely different (but self-consistent) datapath.
    let batch8 = unbatched.with_tuning(FleetTuning::default().with_batch(8));
    assert_ne!(
        baseline,
        serde_json::to_string(&batch8.run(StrategyKind::Pam).unwrap()).unwrap()
    );
}

#[test]
fn migration_modes_produce_distinct_but_self_consistent_reports() {
    // The modes must actually change the metrics (blackout accounting), and
    // each must replay exactly.
    let kind = FleetScenarioKind::RollingHotspot;
    let stop = report_json(kind, StrategyKind::Pam, 2, MigrationMode::StopAndCopy);
    let pre = report_json(kind, StrategyKind::Pam, 2, MigrationMode::PreCopy);
    assert_ne!(stop, pre, "modes must not produce one report");
    assert_eq!(
        pre,
        report_json(kind, StrategyKind::Pam, 2, MigrationMode::PreCopy)
    );
}

#[test]
fn strategies_diverge_but_each_is_self_consistent() {
    let kind = FleetScenarioKind::RollingHotspot;
    let pam = report_json(kind, StrategyKind::Pam, 2, MigrationMode::StopAndCopy);
    let naive = report_json(
        kind,
        StrategyKind::NaiveBottleneck,
        2,
        MigrationMode::StopAndCopy,
    );
    assert_ne!(
        pam, naive,
        "different strategies must not produce one report"
    );
    assert_eq!(
        naive,
        report_json(
            kind,
            StrategyKind::NaiveBottleneck,
            2,
            MigrationMode::StopAndCopy
        )
    );
}

#[test]
fn fleet_size_changes_the_report_shape() {
    let kind = FleetScenarioKind::FlashCrowd;
    let two = report_json(kind, StrategyKind::Pam, 2, MigrationMode::PreCopy);
    let three = report_json(kind, StrategyKind::Pam, 3, MigrationMode::PreCopy);
    assert_ne!(two, three);
}
