//! Replay determinism of the fleet layer: two identical fleet runs produce
//! byte-identical JSON reports, across every scenario in the matrix.

use pam::core::StrategyKind;
use pam::experiments::fleet::{FleetScenario, FleetScenarioKind};

fn report_json(kind: FleetScenarioKind, strategy: StrategyKind, servers: usize) -> String {
    let scenario = FleetScenario::new(kind, servers);
    let report = scenario.run(strategy).expect("scenario runs");
    serde_json::to_string(&report).expect("report serializes")
}

#[test]
fn every_scenario_replays_byte_identically_under_pam() {
    for kind in FleetScenarioKind::ALL {
        let a = report_json(kind, StrategyKind::Pam, 2);
        let b = report_json(kind, StrategyKind::Pam, 2);
        assert_eq!(a, b, "{kind} diverged between identical runs");
    }
}

#[test]
fn strategies_diverge_but_each_is_self_consistent() {
    let kind = FleetScenarioKind::RollingHotspot;
    let pam = report_json(kind, StrategyKind::Pam, 2);
    let naive = report_json(kind, StrategyKind::NaiveBottleneck, 2);
    assert_ne!(
        pam, naive,
        "different strategies must not produce one report"
    );
    assert_eq!(naive, report_json(kind, StrategyKind::NaiveBottleneck, 2));
}

#[test]
fn fleet_size_changes_the_report_shape() {
    let kind = FleetScenarioKind::FlashCrowd;
    let two = report_json(kind, StrategyKind::Pam, 2);
    let three = report_json(kind, StrategyKind::Pam, 3);
    assert_ne!(two, three);
}
