//! The sharded fleet runner against the sequential one, end to end through
//! the `pam` facade: same scenario, same seeds, any shard count — the report
//! JSON, the simulator event count and the decision outcome must match byte
//! for byte. The in-crate suites pin the mechanism (window plans, lookahead
//! safety, per-server submission order); this wall pins the product.

use pam::core::StrategyKind;
use pam::experiments::fleet::{run_scale_curve, FleetScenario, FleetScenarioKind};

/// Sequential reference: `(report JSON, events scheduled)`.
fn sequential(kind: FleetScenarioKind, servers: usize) -> (String, u64) {
    let scenario = FleetScenario::new(kind, servers);
    let (report, events) = scenario
        .run_with_stats(StrategyKind::Pam)
        .expect("sequential run");
    let json = serde_json::to_string(&report).expect("report serializes");
    (json, events)
}

/// Sharded run at `shards`: `(report JSON, events scheduled, lane packets)`.
fn sharded(kind: FleetScenarioKind, servers: usize, shards: usize) -> (String, u64, u64) {
    let scenario = FleetScenario::new(kind, servers);
    let (report, events, stats) = scenario
        .run_with_stats_sharded(StrategyKind::Pam, shards)
        .expect("sharded run");
    let json = serde_json::to_string(&report).expect("report serializes");
    let lane_packets = stats.lanes.iter().map(|lane| lane.packets).sum();
    (json, events, lane_packets)
}

#[test]
fn every_scenario_is_byte_identical_under_sharding() {
    for kind in FleetScenarioKind::ALL {
        let (seq_json, seq_events) = sequential(kind, 2);
        let (shard_json, shard_events, lane_packets) = sharded(kind, 2, 2);
        assert_eq!(seq_json, shard_json, "{kind} report diverged at 2 shards");
        assert_eq!(
            seq_events, shard_events,
            "{kind} scheduled a different number of events under sharding"
        );
        assert!(
            lane_packets > 0,
            "{kind} lanes submitted no packets — the sharded path did not run"
        );
    }
}

#[test]
fn the_shard_count_never_changes_the_report() {
    let kind = FleetScenarioKind::RollingHotspot;
    let (seq_json, seq_events) = sequential(kind, 3);
    for shards in [2, 8] {
        let (json, events, _) = sharded(kind, 3, shards);
        assert_eq!(seq_json, json, "report diverged at {shards} shards");
        assert_eq!(
            seq_events, events,
            "event count diverged at {shards} shards"
        );
    }
}

#[test]
fn non_pam_strategies_shard_identically_too() {
    let scenario = FleetScenario::new(FleetScenarioKind::FlashCrowd, 2);
    let sequential = scenario
        .run(StrategyKind::NaiveBottleneck)
        .expect("sequential run");
    let sharded = scenario
        .run_sharded(StrategyKind::NaiveBottleneck, 2)
        .expect("sharded run");
    assert_eq!(
        serde_json::to_string(&sequential).expect("serializes"),
        serde_json::to_string(&sharded).expect("serializes"),
    );
}

#[test]
fn the_scale_curve_carries_its_own_determinism_check() {
    // `run_scale_curve` byte-compares every sharded point against the
    // sequential reference and errors on divergence, so a successful return
    // IS the determinism assertion; the rest pins the curve's accounting.
    let points = run_scale_curve(&[2], &[1, 2]).expect("curve runs and matches");
    assert_eq!(points.len(), 2);
    assert_eq!(points[0].shards, 1);
    assert!((points[0].speedup - 1.0).abs() < f64::EPSILON);
    assert_eq!(points[1].shards, 2);
    assert_eq!(points[0].events, points[1].events);
    assert!(points[1].windows > 0);
    assert!(!points[1].lanes.is_empty());
}
