//! Reproducibility: the same scenario with the same seed produces identical
//! results, and changing the seed changes the trace without changing the
//! qualitative outcome.

use pam::experiments::Figure1Scenario;
use pam::prelude::*;

fn run_once(seed: u64) -> (u64, u64, u64, SimDuration) {
    // The default scenario sweeps packet sizes, so the seed shapes both the
    // flow identities and the size sequence.
    let scenario = Figure1Scenario {
        seed,
        baseline_duration: SimDuration::from_millis(3),
        overload_duration: SimDuration::from_millis(7),
        ..Figure1Scenario::default()
    };
    let mut runtime = scenario.build_runtime().unwrap();
    let mut trace = scenario.build_trace();
    let mut orchestrator = Orchestrator::new(OrchestratorConfig::with_strategy(StrategyKind::Pam));
    orchestrator.run(
        &mut runtime,
        &mut trace,
        SimTime::ZERO + scenario.total_duration(),
    );
    let outcome = runtime.outcome();
    (
        outcome.injected,
        outcome.delivered,
        outcome.pcie_crossings,
        outcome.mean_latency,
    )
}

#[test]
fn same_seed_is_bit_for_bit_repeatable() {
    assert_eq!(run_once(7), run_once(7));
}

#[test]
fn different_seed_changes_the_trace_but_not_the_story() {
    let a = run_once(7);
    let b = run_once(8);
    assert_ne!(a, b, "different seeds should not produce identical runs");
    // Both runs still deliver the overwhelming majority of packets after the
    // PAM migration and keep mean latency in the same band.
    let delivered_fraction = b.1 as f64 / b.0 as f64;
    assert!(delivered_fraction > 0.95);
    assert!((150.0..400.0).contains(&b.3.as_micros_f64()));
}
