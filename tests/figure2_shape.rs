//! Cross-crate integration test: the packet-level reproduction of Figure 2
//! keeps the paper's qualitative result — PAM's latency stays at the
//! pre-migration level while the naive migration pays for its extra PCIe
//! crossings, and both migrations restore throughput the overloaded original
//! cannot deliver.

use pam::experiments::figure2::{run_figure2, Figure2Config};
use pam::prelude::*;

#[test]
fn figure2_shape_is_reproduced_end_to_end() {
    let results = run_figure2(&Figure2Config::quick());
    let original = results.row(StrategyKind::Original).expect("original row");
    let naive = results
        .row(StrategyKind::NaiveBottleneck)
        .expect("naive row");
    let pam = results.row(StrategyKind::Pam).expect("pam row");

    // Figure 2(a): latency ordering and magnitude.
    assert!(
        pam.mean_latency < naive.mean_latency,
        "PAM ({}) must beat naive ({})",
        pam.mean_latency,
        naive.mean_latency
    );
    let reduction = results.pam_latency_reduction_vs_naive();
    assert!(
        (8.0..35.0).contains(&reduction),
        "latency reduction {reduction:.1}% is out of the expected band around the paper's 18%"
    );
    let drift = (pam.mean_latency.as_micros_f64() - original.mean_latency.as_micros_f64()).abs()
        / original.mean_latency.as_micros_f64();
    assert!(
        drift < 0.10,
        "PAM latency should be almost unchanged vs the original chain (drift {drift:.3})"
    );

    // Figure 2(b): throughput ordering.
    assert!(naive.throughput.as_gbps() > original.throughput.as_gbps());
    assert!(pam.throughput.as_gbps() >= naive.throughput.as_gbps() * 0.98);

    // Structural explanation: crossings per packet.
    assert!(naive.crossings_per_packet > pam.crossings_per_packet + 1.0);
}

#[test]
fn analytical_and_packet_level_models_agree_on_the_ordering() {
    let chain = ChainModel::figure1_example();
    let original = Placement::figure1_initial();
    let mut naive = original.clone();
    naive.set(NfId::new(1), Device::Cpu).unwrap();
    let mut pam = original.clone();
    pam.set(NfId::new(2), Device::Cpu).unwrap();

    let model = LatencyModel::default();
    let analytic_naive = model.chain_latency(&chain, &naive);
    let analytic_pam = model.chain_latency(&chain, &pam);
    assert!(analytic_pam < analytic_naive);

    let packet_level = run_figure2(&Figure2Config::quick());
    let sim_naive = packet_level
        .row(StrategyKind::NaiveBottleneck)
        .unwrap()
        .mean_latency;
    let sim_pam = packet_level.row(StrategyKind::Pam).unwrap().mean_latency;
    // Orderings agree and magnitudes are within 25% of each other (the
    // packet-level run adds queueing the analytical model ignores).
    assert!(sim_pam < sim_naive);
    let ratio = sim_pam.as_micros_f64() / analytic_pam.as_micros_f64();
    assert!(
        (0.75..1.35).contains(&ratio),
        "sim/analytic ratio {ratio:.2}"
    );
}
