//! Differential test: `stop_and_copy` and `pre_copy` runs over the same
//! seeded trace must produce identical per-flow NF outcomes — the same
//! flow-table contents (per-flow packet/byte counters) and the same NAT
//! bindings and port cursor — differing only in latency/blackout metrics.
//!
//! The trace is sized so neither run drops anything (no overload, staging
//! buffer far larger than any blackout): then every packet reaches every NF
//! in both runs and the only mode-dependent observable is *when*, which the
//! per-flow comparison deliberately projects out (timestamps are latency).

use pam::core::Placement;
use pam::nf::{NfKind, ServiceChainSpec};
use pam::runtime::{ChainRuntime, MigrationMode, RunOutcome, RuntimeConfig};
use pam::traffic::{
    ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TraceConfig, TraceSynthesizer,
    TrafficSchedule,
};
use pam::types::{Device, Endpoint, Gbps, NfId, SimDuration, SimTime};
use serde_json::Value;

/// Monitor → NAT on the SmartNIC; the monitor migrates to the CPU mid-run.
fn run_mode(mode: MigrationMode) -> (ChainRuntime, RunOutcome) {
    let spec = ServiceChainSpec::new(
        "monitor-nat",
        Endpoint::Wire,
        Endpoint::Host,
        vec![NfKind::Monitor, NfKind::Nat],
    );
    let placement = Placement::all_on(Device::SmartNic, 2);
    let config = RuntimeConfig::evaluation_default().with_migration_mode(mode);
    let mut runtime = ChainRuntime::new(spec, &placement, config).unwrap();
    let mut trace = TraceSynthesizer::new(TraceConfig {
        sizes: PacketSizeProfile::paper_sweep(),
        flows: FlowGeneratorConfig {
            flow_count: 600,
            zipf_exponent: 1.0,
            tcp_fraction: 0.8,
        },
        arrival: ArrivalProcess::Cbr,
        schedule: TrafficSchedule::constant(Gbps::new(1.2), SimDuration::from_millis(8)),
        seed: 2018,
    });
    runtime.run_until(&mut trace, SimTime::from_millis(3));
    runtime
        .live_migrate(NfId::new(0), Device::Cpu, runtime.now())
        .unwrap();
    runtime.run_to_completion(&mut trace);
    let outcome = runtime.outcome();
    (runtime, outcome)
}

fn uint(value: &Value) -> u64 {
    match value {
        Value::Number(n) => n.as_u64().expect("non-negative integer"),
        other => panic!("expected a number, got {}", other.kind()),
    }
}

/// The monitor's mode-invariant projection: sorted (flow, packets, bytes).
fn monitor_rows(runtime: &ChainRuntime) -> Vec<(u64, u64, u64)> {
    let state = runtime.instances()[0].nf.export_state();
    let object = state.data.as_object().unwrap();
    let mut rows: Vec<(u64, u64, u64)> = object
        .get("flows")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|pair| {
            let entry = pair.as_array().unwrap();
            let stats = entry[1].as_object().unwrap();
            (
                uint(&entry[0]),
                uint(stats.get("packets").unwrap()),
                uint(stats.get("bytes").unwrap()),
            )
        })
        .collect();
    rows.sort_unstable();
    rows
}

/// The NAT's end state is already timestamp-free: compare it byte for byte.
fn nat_state_json(runtime: &ChainRuntime) -> String {
    serde_json::to_string(&runtime.instances()[1].nf.export_state()).unwrap()
}

#[test]
fn modes_agree_on_per_flow_nf_outcomes() {
    let (stop_runtime, stop) = run_mode(MigrationMode::StopAndCopy);
    let (pre_runtime, pre) = run_mode(MigrationMode::PreCopy);

    // Precondition for an exact comparison: nothing dropped in either run.
    for (name, outcome) in [("stop_and_copy", &stop), ("pre_copy", &pre)] {
        assert_eq!(outcome.drops_overload, 0, "{name}: overload drops");
        assert_eq!(outcome.drops_policy, 0, "{name}: policy drops");
        assert_eq!(outcome.drops_migration, 0, "{name}: migration drops");
        assert_eq!(outcome.injected, outcome.delivered, "{name}: lost packets");
        assert_eq!(outcome.migrations.len(), 1, "{name}: one migration");
    }

    // Identical per-flow NF end states...
    assert_eq!(
        monitor_rows(&stop_runtime),
        monitor_rows(&pre_runtime),
        "monitor per-flow counters diverged between modes"
    );
    assert_eq!(
        nat_state_json(&stop_runtime),
        nat_state_json(&pre_runtime),
        "NAT bindings diverged between modes"
    );
    assert_eq!(
        stop_runtime.instances()[0].nf.flow_count(),
        pre_runtime.instances()[0].nf.flow_count()
    );

    // ...while the migration metrics differ exactly as designed: same total
    // traffic, but pre-copy's blackout is strictly shorter.
    assert_eq!(stop.injected, pre.injected);
    let stop_blackout = stop.migrations[0].blackout();
    let pre_blackout = pre.migrations[0].blackout();
    assert!(
        pre_blackout < stop_blackout,
        "pre-copy blackout {pre_blackout} !< stop-and-copy {stop_blackout}"
    );
    assert_eq!(stop.migrations[0].mode, MigrationMode::StopAndCopy);
    assert_eq!(pre.migrations[0].mode, MigrationMode::PreCopy);
    assert!(pre.migrations[0].residual_dirty_flows < stop.migrations[0].residual_dirty_flows);
}
