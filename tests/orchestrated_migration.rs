//! End-to-end control-plane behaviour through the public facade: PAM and the
//! naive baseline react to the same overload with different migrations, and
//! Table 1 capacities are recovered by the capacity probe.

use pam::prelude::*;
use pam::runtime::probe_capacity;

fn run_strategy(strategy: StrategyKind) -> (Placement, usize) {
    let scenario = pam::experiments::Figure1Scenario {
        sizes: PacketSizeProfile::Fixed(ByteSize::bytes(512)),
        baseline_duration: SimDuration::from_millis(3),
        overload_duration: SimDuration::from_millis(9),
        ..Default::default()
    };
    let mut runtime = scenario.build_runtime().unwrap();
    let mut trace = scenario.build_trace();
    let mut orchestrator = Orchestrator::new(OrchestratorConfig::with_strategy(strategy));
    orchestrator.run(
        &mut runtime,
        &mut trace,
        SimTime::ZERO + scenario.total_duration(),
    );
    (runtime.placement(), orchestrator.migrations_executed())
}

#[test]
fn pam_and_naive_pick_different_vnfs_for_the_same_overload() {
    let (pam_placement, pam_migrations) = run_strategy(StrategyKind::Pam);
    let (naive_placement, naive_migrations) = run_strategy(StrategyKind::NaiveBottleneck);

    assert_eq!(pam_migrations, 1);
    assert_eq!(naive_migrations, 1);

    // PAM pushes the border Logger aside; naive moves the hot-spot Monitor.
    assert_eq!(
        pam_placement.device_of(NfId::new(2)).unwrap(),
        Device::Cpu,
        "PAM should migrate the Logger"
    );
    assert_eq!(
        pam_placement.device_of(NfId::new(1)).unwrap(),
        Device::SmartNic
    );
    assert_eq!(
        naive_placement.device_of(NfId::new(1)).unwrap(),
        Device::Cpu,
        "the naive baseline should migrate the Monitor"
    );

    // Crossing counts follow Figure 1: PAM keeps 3, naive pays 5.
    let chain = ChainModel::figure1_example();
    assert_eq!(pam_placement.pcie_crossings(&chain), 3);
    assert_eq!(naive_placement.pcie_crossings(&chain), 5);
}

#[test]
fn capacity_probe_recovers_table1_for_the_monitor() {
    let catalog = ProfileCatalog::table1();
    let nic = probe_capacity(NfKind::Monitor, Device::SmartNic, &catalog).unwrap();
    let cpu = probe_capacity(NfKind::Monitor, Device::Cpu, &catalog).unwrap();
    assert!((nic.measured.as_gbps() - 3.2).abs() / 3.2 < 0.1);
    assert!((cpu.measured.as_gbps() - 10.0).abs() / 10.0 < 0.1);
}
