//! Differential properties of the sliding heavy-hitter sketch against the
//! exact per-flow table, over random traffic traces.
//!
//! Three invariants (flow mix, skew, byte sizes and tick layout all
//! randomised):
//!
//! 1. **never undercount** — a count-min estimate only collides upward, so
//!    for every flow the sketch's windowed byte estimate must be at least
//!    the exact table's;
//! 2. **(ε, δ) overcount bound** — the per-flow overestimate stays within
//!    ε × (total live window bytes), for all but a δ-sized fraction of
//!    flows (the documented [`pam::fleet::LoadEstimator::error_bound`]);
//! 3. **identical tick view** — both estimator kinds answer byte-identical
//!    windowed mean / peak / latest loads, because the controller ladder
//!    reads tick samples, not per-flow state. This is why switching the
//!    fleet to `estimator = sketch` changes memory and nothing else.
//!
//! The full randomised suites are `#[ignore]`d out of the tier-1
//! `cargo test -q` path and run by CI's dedicated `proptest` job with
//! `PROPTEST_CASES=1024`; a deterministic smoke case of each property stays
//! in the default path. A final test pins the API-redesign compatibility
//! contract: a scenario with the estimator knob left at its default produces
//! the same report bytes as one explicitly tuned to `EstimatorKind::Exact`.

use pam::core::StrategyKind;
use pam::experiments::fleet::{FleetScenario, FleetScenarioKind, FleetTuning};
use pam::fleet::{EstimatorConfig, EstimatorKind, LoadEstimator};
use pam::types::{Gbps, SimDuration, SimTime};
use proptest::prelude::*;

/// Control-tick cadence used by every differential run.
const INTERVAL: SimDuration = SimDuration::from_micros(500);

/// Deterministic splitmix64 step, so each sampled `seed` expands into a
/// reproducible trace without threading an RNG through the harness.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Drives one identical random trace into a fresh exact/sketch pair:
/// `arrivals` flow arrivals with a skewed flow mix over `flow_count`
/// distinct flows, with a control tick sealed every `per_tick` arrivals.
fn differential_run(
    seed: u64,
    flow_count: u64,
    arrivals: usize,
    per_tick: usize,
) -> (LoadEstimator, LoadEstimator) {
    let config = |kind| EstimatorConfig::of(kind).with_window(SimDuration::from_micros(1_500));
    let mut exact = LoadEstimator::new(&config(EstimatorKind::Exact), INTERVAL);
    let mut sketch = LoadEstimator::new(&config(EstimatorKind::Sketch), INTERVAL);
    let mut state = seed;
    let mut tick = 0u64;
    for i in 0..arrivals {
        // min() of two draws skews the mix toward low flow ids, so the
        // trace has genuine heavy hitters instead of uniform noise.
        let flow = (splitmix(&mut state) % flow_count).min(splitmix(&mut state) % flow_count);
        let bytes = 64 + splitmix(&mut state) % 1_436;
        exact.record_arrival(flow, bytes);
        sketch.record_arrival(flow, bytes);
        if (i + 1) % per_tick == 0 {
            tick += 1;
            let now = SimTime::from_micros(tick * 500);
            let load = Gbps::new((1 + splitmix(&mut state) % 40) as f64 / 10.0);
            exact.record(now, load);
            sketch.record(now, load);
            // Property 3: the decision surface is identical every tick.
            assert_eq!(exact.windowed(), sketch.windowed(), "tick {tick}");
            assert_eq!(exact.peak(), sketch.peak(), "tick {tick}");
            assert_eq!(exact.latest(), sketch.latest(), "tick {tick}");
        }
    }
    (exact, sketch)
}

/// Asserts properties 1 and 2 on a finished run.
fn assert_differential(exact: &LoadEstimator, sketch: &LoadEstimator, flow_count: u64, ctx: &str) {
    let (epsilon, delta) = sketch.error_bound();
    assert!(epsilon > 0.0 && delta > 0.0, "{ctx}: bounds undocumented");
    // N in the count-min guarantee: every byte currently inside the live
    // window, which the exact table reports without error.
    let live_total: u64 = (0..flow_count).map(|f| exact.windowed_flow_bytes(f)).sum();
    let margin = (epsilon * live_total as f64).ceil() as u64;
    let mut over_margin = 0u64;
    for flow in 0..flow_count {
        let truth = exact.windowed_flow_bytes(flow);
        let estimate = sketch.windowed_flow_bytes(flow);
        assert!(
            estimate >= truth,
            "{ctx}: flow {flow} undercounted ({estimate} < {truth})"
        );
        if estimate - truth > margin {
            over_margin += 1;
        }
    }
    // Per-query failure probability is delta; across `flow_count` queries
    // allow twice the expected failures (plus one for tiny flow counts)
    // before declaring the sketch out of spec.
    let budget = 1 + (2.0 * delta * flow_count as f64).ceil() as u64;
    assert!(
        over_margin <= budget,
        "{ctx}: {over_margin} flows exceeded the ε-margin {margin} (budget {budget})"
    );
    // The sketch's own heavy-hitter view must obey the same floor: reported
    // estimates never undercount the exact table.
    for (flow, estimate) in sketch.heavy_hitters(16) {
        assert!(
            estimate >= exact.windowed_flow_bytes(flow),
            "{ctx}: heavy hitter {flow} undercounted"
        );
    }
}

proptest! {
    /// The randomised suite (CI's `proptest` job, PROPTEST_CASES=1024).
    #[test]
    #[ignore = "randomised suite: run via `cargo test -- --ignored` (CI proptest job)"]
    fn sketch_matches_exact_within_documented_bounds(
        seed in 0u64..1_000_000,
        flow_count in 8u64..512,
        arrivals in 512usize..4_096,
        per_tick in 64usize..1_024,
    ) {
        let (exact, sketch) = differential_run(seed, flow_count, arrivals, per_tick);
        assert_differential(
            &exact,
            &sketch,
            flow_count,
            &format!("seed={seed} flows={flow_count} arrivals={arrivals} per_tick={per_tick}"),
        );
    }
}

/// Deterministic smoke case of the same properties (tier-1 path).
#[test]
fn sketch_differential_smoke() {
    let (exact, sketch) = differential_run(2018, 97, 2_000, 400);
    assert_differential(&exact, &sketch, 97, "smoke");
}

/// A uniform million-id flood (no repeats, nothing survives pruning) still
/// never undercounts and stays inside fixed memory — the regime the fleet's
/// 1M-flow flash-crowd cell runs in.
#[test]
fn sketch_smoke_survives_a_wide_uniform_flood() {
    let (exact, sketch) = differential_run(7, 50_000, 4_096, 512);
    assert_differential(&exact, &sketch, 50_000, "flood");
    assert!(
        exact.resident_bytes() > 10 * sketch.resident_bytes(),
        "exact {} B !> 10x sketch {} B",
        exact.resident_bytes(),
        sketch.resident_bytes()
    );
}

/// The compatibility half of the API redesign: leaving the estimator knob
/// untouched is byte-for-byte the same run as explicitly selecting
/// [`EstimatorKind::Exact`] — which is why `BENCH_baseline.json` needed no
/// regeneration when the knob landed.
#[test]
fn default_scenario_is_byte_identical_to_explicit_exact() {
    let kind = FleetScenarioKind::FlashCrowd;
    let default_run = FleetScenario::new(kind, 2)
        .run(StrategyKind::Pam)
        .expect("scenario runs");
    let exact_run = FleetScenario::new(kind, 2)
        .with_tuning(FleetTuning::default().with_estimator(EstimatorKind::Exact))
        .run(StrategyKind::Pam)
        .expect("scenario runs");
    assert_eq!(
        serde_json::to_string(&default_run).expect("report serializes"),
        serde_json::to_string(&exact_run).expect("report serializes"),
    );
}
