#!/usr/bin/env bash
# Determinism / unsafe lint wall.
#
# The whole point of the model-checked protocol work is that what we prove
# about the machine transfers to the code that drives it. That transfer
# breaks if production code smuggles in nondeterminism or unsafety, so CI
# rejects, in every non-test source file of the workspace:
#
#   1. a crate root (lib or bin) missing `#![forbid(unsafe_code)]`,
#   2. any use of the `unsafe` keyword (comments excluded),
#   3. std HashMap/HashSet — their iteration order is randomized per
#      process, which is exactly the nondeterminism that would make the
#      byte-identical benchmark gate and the model checker's replayable
#      counterexamples meaningless. Use BTreeMap/BTreeSet or the fixed-key
#      FastMap in pam-nf instead. Test modules (`#[cfg(test)]` and files
#      under tests/) may use whatever they like.
#   4. `std::thread::spawn` anywhere, and scoped threads
#      (`thread::scope` / `.spawn`) outside the two window-parallel runners
#      (the sharded fleet runner and the benchmark matrix runner). Both
#      merge worker results through order-independent reductions; ad-hoc
#      threads elsewhere would race results into the gated output.
#   5. wall-clock (`Instant` / `SystemTime`) in simulation crates.
#      Simulated time is `SimTime`; reading the host clock inside the
#      simulation is how "deterministic" runs drift. The harness crates
#      (pam-experiments, pam-bench) measure wall-clock on purpose, and the
#      sharded runner keeps per-lane busy/wait accounting in a side channel
#      that never enters the gated report — those are the only exemptions.
#
# Run from the repo root: scripts/lint_determinism.sh
set -u

cd "$(dirname "$0")/.."
fail=0

say() { printf '%s\n' "$*"; }

# ---- 1. every crate root forbids unsafe code -------------------------------
roots=$(ls src/lib.rs crates/*/src/lib.rs crates/*/src/bin/*.rs 2>/dev/null)
for root in $roots; do
    if ! grep -q '#!\[forbid(unsafe_code)\]' "$root"; then
        say "FAIL: $root is a crate root without #![forbid(unsafe_code)]"
        fail=1
    fi
done

# Files allowed to use scoped threads: the two window-parallel runners.
scoped_thread_allow="crates/pam-fleet/src/shard.rs crates/pam-experiments/src/fleet.rs"
# Simulation-crate file allowed to read the wall clock: the sharded runner's
# per-lane busy/wait accounting (a side channel, never in the gated report).
wallclock_allow="crates/pam-fleet/src/shard.rs"

allowed() { # allowed <file> <list>
    case " $2 " in *" $1 "*) return 0 ;; *) return 1 ;; esac
}

# ---- 2-5. scan non-test production source ----------------------------------
# For each source file, strip everything from the first `#[cfg(test)]` line
# to EOF (the test-module tail), drop comment lines, then grep what remains.
srcs=$(find src crates/*/src -name '*.rs' 2>/dev/null)

# Sanity: files whose determinism the byte-identical gates lean on hardest
# must actually be in the scan set — if one of these ever moves out of the
# scanned tree, fail loudly instead of silently shrinking the wall. The
# fair-share link engine is listed explicitly: its f64 bookkeeping is only
# deterministic because it never touches the host (no clocks, no randomized
# containers), which is exactly what this script checks.
required_srcs="crates/pam-sim/src/sharing.rs crates/pam-sim/src/link.rs crates/pam-sim/src/events.rs crates/pam-fleet/src/sketch.rs crates/pam-fleet/src/estimator.rs crates/pam-sim/src/fault.rs crates/pam-fleet/src/health.rs"
for req in $required_srcs; do
    if ! printf '%s\n' "$srcs" | grep -qx "$req"; then
        say "FAIL: $req is not in the determinism scan set (moved or deleted?)"
        fail=1
    fi
done
for f in $srcs; do
    stripped=$(awk '/^[[:space:]]*#\[cfg\(test\)\]/ { exit } { print }' "$f" |
        grep -vE '^[[:space:]]*//')

    hits=$(printf '%s\n' "$stripped" | grep -nE '\bunsafe\b' |
        grep -v 'forbid(unsafe_code)' || true)
    if [ -n "$hits" ]; then
        say "FAIL: $f uses the unsafe keyword outside a test module:"
        say "$hits"
        fail=1
    fi

    hits=$(printf '%s\n' "$stripped" |
        grep -nE '\b(HashMap|HashSet)\b' || true)
    if [ -n "$hits" ]; then
        say "FAIL: $f uses std HashMap/HashSet outside a test module"
        say "      (randomized iteration order breaks determinism;"
        say "       use BTreeMap/BTreeSet or pam-nf's FastMap):"
        say "$hits"
        fail=1
    fi

    # 4a. detached threads are banned everywhere in production code.
    hits=$(printf '%s\n' "$stripped" | grep -nE 'thread::spawn' || true)
    if [ -n "$hits" ]; then
        say "FAIL: $f uses std::thread::spawn (detached threads race results;"
        say "      use std::thread::scope inside an allowlisted runner):"
        say "$hits"
        fail=1
    fi

    # 4b. scoped threads only inside the window-parallel runners.
    if ! allowed "$f" "$scoped_thread_allow"; then
        hits=$(printf '%s\n' "$stripped" |
            grep -nE 'thread::scope|\.spawn\(' || true)
        if [ -n "$hits" ]; then
            say "FAIL: $f spawns threads outside the allowlisted runners"
            say "      ($scoped_thread_allow):"
            say "$hits"
            fail=1
        fi
    fi

    # 5. wall-clock stays out of the simulation crates.
    case "$f" in
    crates/pam-experiments/* | crates/pam-bench/*) ;; # harness crates: exempt
    *)
        if ! allowed "$f" "$wallclock_allow"; then
            hits=$(printf '%s\n' "$stripped" |
                grep -nE '\b(Instant|SystemTime)\b' || true)
            if [ -n "$hits" ]; then
                say "FAIL: $f reads the wall clock in a simulation crate"
                say "      (use SimTime; only the sharded runner's lane"
                say "       accounting may touch Instant):"
                say "$hits"
                fail=1
            fi
        fi
        ;;
    esac
done

if [ "$fail" -ne 0 ]; then
    say "determinism lint: FAILED"
    exit 1
fi
say "determinism lint: OK ($(printf '%s\n' "$roots" | wc -l | tr -d ' ') crate roots, $(printf '%s\n' "$srcs" | wc -l | tr -d ' ') source files)"
