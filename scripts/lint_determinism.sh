#!/usr/bin/env bash
# Determinism / unsafe lint wall.
#
# The whole point of the model-checked protocol work is that what we prove
# about the machine transfers to the code that drives it. That transfer
# breaks if production code smuggles in nondeterminism or unsafety, so CI
# rejects, in every non-test source file of the workspace:
#
#   1. a crate root (lib or bin) missing `#![forbid(unsafe_code)]`,
#   2. any use of the `unsafe` keyword (comments excluded),
#   3. std HashMap/HashSet — their iteration order is randomized per
#      process, which is exactly the nondeterminism that would make the
#      byte-identical benchmark gate and the model checker's replayable
#      counterexamples meaningless. Use BTreeMap/BTreeSet or the fixed-key
#      FastMap in pam-nf instead. Test modules (`#[cfg(test)]` and files
#      under tests/) may use whatever they like.
#
# Run from the repo root: scripts/lint_determinism.sh
set -u

cd "$(dirname "$0")/.."
fail=0

say() { printf '%s\n' "$*"; }

# ---- 1. every crate root forbids unsafe code -------------------------------
roots=$(ls src/lib.rs crates/*/src/lib.rs crates/*/src/bin/*.rs 2>/dev/null)
for root in $roots; do
    if ! grep -q '#!\[forbid(unsafe_code)\]' "$root"; then
        say "FAIL: $root is a crate root without #![forbid(unsafe_code)]"
        fail=1
    fi
done

# ---- 2 + 3. scan non-test production source --------------------------------
# For each source file, strip everything from the first `#[cfg(test)]` line
# to EOF (the test-module tail), drop comment lines, then grep what remains.
srcs=$(find src crates/*/src -name '*.rs' 2>/dev/null)
for f in $srcs; do
    stripped=$(awk '/^[[:space:]]*#\[cfg\(test\)\]/ { exit } { print }' "$f" |
        grep -vE '^[[:space:]]*//')

    hits=$(printf '%s\n' "$stripped" | grep -nE '\bunsafe\b' |
        grep -v 'forbid(unsafe_code)' || true)
    if [ -n "$hits" ]; then
        say "FAIL: $f uses the unsafe keyword outside a test module:"
        say "$hits"
        fail=1
    fi

    hits=$(printf '%s\n' "$stripped" |
        grep -nE '\b(HashMap|HashSet)\b' || true)
    if [ -n "$hits" ]; then
        say "FAIL: $f uses std HashMap/HashSet outside a test module"
        say "      (randomized iteration order breaks determinism;"
        say "       use BTreeMap/BTreeSet or pam-nf's FastMap):"
        say "$hits"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    say "determinism lint: FAILED"
    exit 1
fi
say "determinism lint: OK ($(printf '%s\n' "$roots" | wc -l | tr -d ' ') crate roots, $(printf '%s\n' "$srcs" | wc -l | tr -d ' ') source files)"
