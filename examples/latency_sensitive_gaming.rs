//! A latency-sensitive workload (small packets, think game traffic or
//! high-frequency market data) traversing the Figure 1 chain: shows why the
//! extra PCIe crossings of a careless migration matter — the crossing cost
//! dominates the end-to-end budget at small packet sizes — and how PAM keeps
//! the latency distribution flat through the overload event.
//!
//! Run with `cargo run --release --example latency_sensitive_gaming`.

use pam::experiments::Figure1Scenario;
use pam::prelude::*;

fn run_with(
    strategy: StrategyKind,
    scenario: &Figure1Scenario,
) -> (SimDuration, SimDuration, Gbps) {
    let mut runtime = scenario.build_runtime().expect("runtime");
    let mut trace = scenario.build_trace();
    let mut orchestrator = Orchestrator::new(OrchestratorConfig::with_strategy(strategy));
    let total = SimTime::ZERO + scenario.total_duration();
    // Let the orchestrator handle the overload, then measure the tail.
    let settle = SimTime::ZERO + scenario.overload_onset() + SimDuration::from_millis(4);
    let poll = orchestrator.config().poll_interval;
    let mut next_poll = SimTime::ZERO + poll;
    let mut measuring = false;
    while next_poll <= total {
        runtime.run_until(&mut trace, next_poll);
        orchestrator.control_step(&mut runtime, next_poll);
        if !measuring && next_poll >= settle {
            runtime.start_measurement(next_poll);
            measuring = true;
        }
        next_poll += poll;
    }
    runtime.run_until(&mut trace, total);
    let report = runtime.measure(total);
    (report.mean_latency, report.p99_latency, report.delivered)
}

fn main() {
    // Small packets: 128 B, the regime where fixed per-hop and per-crossing
    // costs dominate (serialisation is negligible).
    let scenario = Figure1Scenario::at_packet_size(ByteSize::bytes(128));
    println!(
        "latency-sensitive workload: 128 B packets, overload at {} after {}\n",
        scenario.overload_load,
        scenario.overload_onset()
    );

    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "strategy", "mean latency", "p99 latency", "throughput"
    );
    let mut rows = Vec::new();
    for kind in StrategyKind::FIGURE2 {
        let (mean, p99, delivered) = run_with(kind, &scenario);
        println!(
            "{:<10} {:>14} {:>14} {:>13.2}G",
            kind.label(),
            mean.to_string(),
            p99.to_string(),
            delivered.as_gbps()
        );
        rows.push((kind, mean));
    }

    let naive = rows
        .iter()
        .find(|(k, _)| *k == StrategyKind::NaiveBottleneck)
        .unwrap()
        .1;
    let pam = rows
        .iter()
        .find(|(k, _)| *k == StrategyKind::Pam)
        .unwrap()
        .1;
    let saved = naive.saturating_sub(pam);
    println!(
        "\nfor a 30 ms game-server tick budget, PAM returns {} per packet to the application\n\
         compared with the naive migration — entirely by avoiding two extra PCIe crossings.",
        saved
    );
}
