//! Quickstart: plan a push-aside migration for the poster's Figure 1 chain.
//!
//! Run with `cargo run --example quickstart`.

use pam::prelude::*;

fn main() {
    // The Figure 1 chain (Firewall → Monitor → Logger → Load Balancer) with
    // the paper's Table 1 capacities; everything but the Load Balancer starts
    // on the SmartNIC.
    let chain = ChainModel::figure1_example();
    let placement = Placement::figure1_initial();

    // Traffic has fluctuated up to 2.2 Gbps and the SmartNIC is overloaded.
    let offered = Gbps::new(2.2);
    let model = ResourceModel::new(&chain, &placement, offered);
    println!("offered load: {offered}");
    println!(
        "SmartNIC utilisation: {:.1}%  CPU utilisation: {:.1}%",
        model.device_utilisation(Device::SmartNic).value() * 100.0,
        model.device_utilisation(Device::Cpu).value() * 100.0
    );

    // Ask the three strategies what to do.
    let latency = LatencyModel::default();
    for kind in [
        StrategyKind::Original,
        StrategyKind::NaiveBottleneck,
        StrategyKind::Pam,
    ] {
        let decision = kind.build().decide(&chain, &placement, offered);
        let mut after = placement.clone();
        if let Some(plan) = decision.plan() {
            for mv in &plan.moves {
                after.set(mv.nf, mv.to).expect("valid move");
            }
        }
        println!("\n{:<9} decision: {}", kind.label(), decision);
        println!(
            "          PCIe crossings per packet: {} -> {}",
            placement.pcie_crossings(&chain),
            after.pcie_crossings(&chain)
        );
        println!(
            "          estimated chain latency: {} -> {}",
            latency.chain_latency(&chain, &placement),
            latency.chain_latency(&chain, &after)
        );
    }

    println!(
        "\nPAM picks the border Logger (smallest θS among border vNFs), so the hot-spot\n\
         Monitor gets its SmartNIC capacity back without any extra PCIe crossing."
    );
}
