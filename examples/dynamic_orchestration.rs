//! Dynamic orchestration over a different chain: a security-oriented edge
//! chain (Rate Limiter → DPI → NAT → Monitor) whose offered load rises and
//! falls over the run. The orchestrator keeps polling and pushes border vNFs
//! aside only while the SmartNIC is actually overloaded, demonstrating the
//! control loop outside the paper's exact Figure 1 setting.
//!
//! Run with `cargo run --release --example dynamic_orchestration`.

use pam::prelude::*;
use pam::traffic::{ArrivalProcess, FlowGeneratorConfig, Phase};

fn main() {
    // An edge security chain: traffic arrives from the wire, is policed,
    // inspected, translated, accounted, and handed to the host.
    let spec = ServiceChainSpec::new(
        "edge-security",
        Endpoint::Wire,
        Endpoint::Host,
        vec![
            NfKind::RateLimiter,
            NfKind::Dpi,
            NfKind::Nat,
            NfKind::Monitor,
        ],
    );
    // Everything starts on the SmartNIC.
    let placement = Placement::all_on(Device::SmartNic, spec.len());
    let config = RuntimeConfig::evaluation_default().with_catalog(ProfileCatalog::table1());
    let mut runtime = ChainRuntime::new(spec, &placement, config).expect("runtime");

    // Offered load rises through the day and falls back.
    let schedule = TrafficSchedule::from_phases(vec![
        Phase::new(Gbps::new(0.8), SimDuration::from_millis(5)),
        Phase::new(Gbps::new(1.4), SimDuration::from_millis(10)),
        Phase::new(Gbps::new(1.8), SimDuration::from_millis(10)),
        Phase::new(Gbps::new(0.9), SimDuration::from_millis(5)),
    ]);
    let mut trace = TraceSynthesizer::new(TraceConfig {
        sizes: PacketSizeProfile::Imix,
        flows: FlowGeneratorConfig::default(),
        arrival: ArrivalProcess::Poisson,
        schedule,
        seed: 42,
    });

    let mut orchestrator = Orchestrator::new(OrchestratorConfig {
        strategy: StrategyKind::Pam,
        poll_interval: SimDuration::from_millis(1),
        overload_threshold: 1.0,
        cooldown: SimDuration::from_millis(3),
    });
    orchestrator.run(&mut runtime, &mut trace, SimTime::from_millis(30));

    println!("decision log (only actions shown):");
    for record in orchestrator.log() {
        if !record.decision.is_no_action() || !record.executed.is_empty() {
            println!(
                "  {}: offered {}, NIC util {:.0}%, CPU util {:.0}% -> {}",
                record.at,
                record.offered,
                record.nic_utilisation * 100.0,
                record.cpu_utilisation * 100.0,
                record.decision
            );
        }
    }

    let placement = runtime.placement();
    println!("\nfinal placement:");
    for instance in runtime.instances() {
        println!(
            "  {} ({}): {}",
            instance.nf_id,
            instance.kind,
            placement.device_of(instance.nf_id).unwrap()
        );
    }

    let outcome = runtime.outcome();
    println!(
        "\ndelivered {}/{} packets ({} overload drops, {} policy drops), mean latency {}",
        outcome.delivered,
        outcome.injected,
        outcome.drops_overload,
        outcome.drops_policy,
        outcome.mean_latency
    );
    println!(
        "migrations executed: {}, scale-out requests: {}",
        orchestrator.migrations_executed(),
        orchestrator.scale_out_requests()
    );
}
