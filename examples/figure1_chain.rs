//! The full Figure 1 scenario, packet by packet: the chain runs at a
//! comfortable baseline, traffic fluctuates upward, the SmartNIC overloads,
//! and the orchestrator (PAM vs the naive baseline) reacts by live-migrating
//! a vNF. Prints the resulting latency/throughput comparison — the same
//! pipeline the Figure 2 reproduction uses.
//!
//! Run with `cargo run --release --example figure1_chain`.

use pam::experiments::figure2::{run_figure2, Figure2Config};
use pam::experiments::Figure1Scenario;
use pam::prelude::*;

fn main() {
    let scenario = Figure1Scenario::default();
    println!(
        "scenario: {} baseline for {}, then {} for {} (overloads the SmartNIC)",
        scenario.baseline_load,
        scenario.baseline_duration,
        scenario.overload_load,
        scenario.overload_duration,
    );

    // Watch one PAM-managed run in detail.
    let mut runtime = scenario.build_runtime().expect("runtime");
    let mut trace = scenario.build_trace();
    let mut orchestrator = Orchestrator::new(OrchestratorConfig::with_strategy(StrategyKind::Pam));
    orchestrator.run(
        &mut runtime,
        &mut trace,
        SimTime::ZERO + scenario.total_duration(),
    );

    println!("\ncontrol-plane decisions:");
    for record in orchestrator
        .log()
        .iter()
        .filter(|r| !r.decision.is_no_action())
    {
        println!(
            "  {}: offered {}, NIC util {:.0}%, decision: {}",
            record.at,
            record.offered,
            record.nic_utilisation * 100.0,
            record.decision
        );
        for migration in &record.executed {
            println!(
                "    migrated {} {} -> {} ({} of state, blackout {})",
                migration.nf,
                migration.from,
                migration.to,
                migration.state_size,
                migration.blackout()
            );
        }
    }

    let outcome = runtime.outcome();
    println!(
        "\nPAM run: delivered {}/{} packets, mean latency {}, delivered throughput {}",
        outcome.delivered, outcome.injected, outcome.mean_latency, outcome.delivered_throughput
    );

    // And the full three-way comparison (reduced sweep so the example stays fast).
    println!("\nFigure 2 (reduced packet-size sweep):\n");
    let results = run_figure2(&Figure2Config::quick());
    println!("{}", results.render_latency());
    println!("{}", results.render_throughput());
    println!(
        "PAM latency reduction vs naive: {:.1}% (paper reports ~18%)",
        results.pam_latency_reduction_vs_naive()
    );
}
