//! PAM — *When Overloaded, Push Your Neighbor Aside!* — reproduced in Rust.
//!
//! This facade crate re-exports the whole workspace under one name so that
//! examples, integration tests and downstream users can write `use pam::...`:
//!
//! * [`types`] — shared units, time, identifiers and devices.
//! * [`wire`] — packet formats (Ethernet/IPv4/TCP/UDP).
//! * [`sim`] — the discrete-event simulation core and device models.
//! * [`nf`] — the network-function framework and the concrete vNFs.
//! * [`traffic`] — synthetic traffic generation.
//! * [`telemetry`] — counters, histograms and the metrics registry.
//! * [`core`] — the PAM algorithm, its baselines and the resource model.
//! * [`protocol`] — the migration/handover protocol as an explicit pure
//!   state machine, plus its exhaustive small-scope model checker.
//! * [`runtime`] — the packet-level chain runtime with live migration
//!   (every phase change drives the model-checked machine in [`protocol`]).
//! * [`orchestrator`] — the periodic monitor/decide/migrate control loop.
//! * [`fleet`] — N servers under one deterministic event queue, with
//!   cross-server scale-out via flow re-steering.
//! * [`experiments`] — the harness that regenerates the paper's tables and
//!   figures, plus the fleet scenario matrix behind `fleet_bench`.
//!
//! The [`prelude`] pulls in the handful of types almost every user needs.
//!
//! # Quickstart
//!
//! ```
//! use pam::prelude::*;
//!
//! // The poster's Figure 1 chain with Table 1 capacities, overloaded at 2.2 Gbps.
//! let chain = ChainModel::figure1_example();
//! let placement = Placement::figure1_initial();
//! let decision = PamPlanner::new().decide(&chain, &placement, Gbps::new(2.2));
//!
//! // PAM pushes the border Logger aside instead of the overloaded Monitor.
//! let plan = decision.plan().expect("the SmartNIC is overloaded");
//! assert_eq!(plan.moves[0].nf, NfId::new(2));
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub use pam_core as core;
pub use pam_experiments as experiments;
pub use pam_fleet as fleet;
pub use pam_nf as nf;
pub use pam_orchestrator as orchestrator;
pub use pam_protocol as protocol;
pub use pam_runtime as runtime;
pub use pam_sim as sim;
pub use pam_telemetry as telemetry;
pub use pam_traffic as traffic;
pub use pam_types as types;
pub use pam_wire as wire;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use pam_core::{
        ChainModel, Decision, LatencyModel, MigrationPlan, MigrationStrategy, NaiveBottleneck,
        NoMigration, PamPlanner, Placement, ResourceModel, StrategyKind, VnfDescriptor,
    };
    pub use pam_fleet::{Fleet, FleetConfig, FleetReport, ServerSpec};
    pub use pam_nf::{NfKind, ProfileCatalog, ServiceChainSpec};
    pub use pam_orchestrator::{Orchestrator, OrchestratorConfig};
    pub use pam_runtime::{ChainRuntime, RuntimeConfig};
    pub use pam_traffic::{PacketSizeProfile, TraceConfig, TraceSynthesizer, TrafficSchedule};
    pub use pam_types::{ByteSize, Device, Endpoint, Gbps, NfId, SimDuration, SimTime};
}
