//! A log-bucketed streaming latency histogram.
//!
//! Latencies in the reproduction span three orders of magnitude (microseconds
//! of service time to hundreds of microseconds of chain latency to
//! milliseconds during migration pauses). A fixed-size array of
//! logarithmically spaced buckets gives ~2.5 % relative resolution across
//! `1 ns … 100 s` with constant memory and O(1) insertion, which is plenty
//! for the mean/median/p99 numbers the experiments report.

use pam_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Number of buckets per decade (relative resolution ≈ 10^(1/96) ≈ 2.4 %).
const BUCKETS_PER_DECADE: usize = 96;
/// Number of decades covered starting at 1 ns (1 ns .. 10^11 ns = 100 s).
const DECADES: usize = 11;
const BUCKET_COUNT: usize = BUCKETS_PER_DECADE * DECADES;

/// A streaming histogram of durations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    min_nanos: u64,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }

    fn bucket_index(nanos: u64) -> usize {
        if nanos <= 1 {
            return 0;
        }
        let log = (nanos as f64).log10();
        ((log * BUCKETS_PER_DECADE as f64) as usize).min(BUCKET_COUNT - 1)
    }

    fn bucket_value(index: usize) -> u64 {
        10f64
            .powf((index as f64 + 0.5) / BUCKETS_PER_DECADE as f64)
            .round() as u64
    }

    /// Records one duration.
    pub fn record(&mut self, value: SimDuration) {
        let nanos = value.as_nanos();
        self.buckets[Self::bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum_nanos += u128::from(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact mean of recorded samples.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_nanos / u128::from(self.count)) as u64)
    }

    /// The exact minimum recorded sample.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_nanos)
        }
    }

    /// The exact maximum recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_nanos)
    }

    /// The approximate quantile `q` (in `[0, 1]`), accurate to the bucket
    /// resolution (~2.5 %). The exact min/max are used for the extremes.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                let estimate = Self::bucket_value(index);
                return SimDuration::from_nanos(estimate.clamp(self.min_nanos, self.max_nanos));
            }
        }
        self.max()
    }

    /// Convenience: the median.
    pub fn p50(&self) -> SimDuration {
        self.quantile(0.50)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&self) -> SimDuration {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Clears all recorded samples.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.p50(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LatencyHistogram::new();
        for micros in [100u64, 200, 300, 400] {
            h.record(SimDuration::from_micros(micros));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), SimDuration::from_micros(250));
        assert_eq!(h.min(), SimDuration::from_micros(100));
        assert_eq!(h.max(), SimDuration::from_micros(400));
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 microseconds, uniformly.
        for micros in 1..=1000u64 {
            h.record(SimDuration::from_micros(micros));
        }
        let p50 = h.p50().as_micros_f64();
        let p99 = h.p99().as_micros_f64();
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 {p99}");
        assert_eq!(h.quantile(0.0), SimDuration::from_micros(1));
        assert_eq!(h.quantile(1.0), SimDuration::from_micros(1000));
    }

    #[test]
    fn identical_samples_collapse_to_one_value() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(SimDuration::from_micros(228));
        }
        assert_eq!(h.p50(), SimDuration::from_micros(228));
        assert_eq!(h.p99(), SimDuration::from_micros(228));
        assert_eq!(h.mean(), SimDuration::from_micros(228));
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..50 {
            a.record(SimDuration::from_micros(100));
            b.record(SimDuration::from_micros(300));
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.mean(), SimDuration::from_micros(200));
        assert_eq!(a.min(), SimDuration::from_micros(100));
        assert_eq!(a.max(), SimDuration::from_micros(300));
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(5));
        h.reset();
        assert!(h.is_empty());
    }

    #[test]
    fn handles_extreme_values() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_nanos(1));
        h.record(SimDuration::from_secs(1000)); // beyond the last decade
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), SimDuration::from_secs(1000));
        assert!(h.quantile(0.99) <= h.max());
    }

    proptest! {
        /// Quantiles are monotone in q and bounded by min/max; the mean lies
        /// between min and max.
        #[test]
        fn quantile_invariants(samples in proptest::collection::vec(1u64..10_000_000, 1..200)) {
            let mut h = LatencyHistogram::new();
            for nanos in &samples {
                h.record(SimDuration::from_nanos(*nanos));
            }
            let q25 = h.quantile(0.25);
            let q50 = h.quantile(0.5);
            let q99 = h.quantile(0.99);
            prop_assert!(q25 <= q50);
            prop_assert!(q50 <= q99);
            prop_assert!(h.min() <= q25);
            prop_assert!(q99 <= h.max());
            prop_assert!(h.mean() >= h.min());
            prop_assert!(h.mean() <= h.max());
        }
    }
}
