//! The shared metrics registry.
//!
//! The runtime (data plane) continuously updates a [`ChainMetrics`] snapshot;
//! the orchestrator (control plane) polls it periodically, exactly like an
//! operator querying the SmartNIC and host counters. The registry wraps the
//! snapshot in a mutex so the two sides can share it without caring about
//! each other's internals.

use std::collections::BTreeMap;
use std::sync::Arc;

use pam_types::{Device, Gbps, SimDuration, SimTime};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::histogram::LatencyHistogram;
use crate::meters::TimeSeries;

/// A point-in-time view of a running chain, as the orchestrator sees it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChainMetrics {
    /// When the snapshot was last updated.
    pub updated_at: SimTime,
    /// Measured utilisation of each device over the current window.
    pub device_utilisation: BTreeMap<String, f64>,
    /// Current chain throughput offered to the ingress (Gbps).
    pub offered_load: Gbps,
    /// Current delivered chain throughput (Gbps).
    pub delivered_load: Gbps,
    /// Mean end-to-end latency over the current window.
    pub mean_latency: SimDuration,
    /// Packets dropped since the beginning of the run.
    pub total_drops: u64,
    /// Packets delivered since the beginning of the run.
    pub total_delivered: u64,
}

impl Default for ChainMetrics {
    fn default() -> Self {
        ChainMetrics {
            updated_at: SimTime::ZERO,
            device_utilisation: BTreeMap::new(),
            offered_load: Gbps::ZERO,
            delivered_load: Gbps::ZERO,
            mean_latency: SimDuration::ZERO,
            total_drops: 0,
            total_delivered: 0,
        }
    }
}

impl ChainMetrics {
    /// The utilisation recorded for `device` (zero if not yet reported).
    pub fn utilisation_of(&self, device: Device) -> f64 {
        self.device_utilisation
            .get(device.label())
            .copied()
            .unwrap_or(0.0)
    }

    /// Records the utilisation of a device.
    pub fn set_utilisation(&mut self, device: Device, utilisation: f64) {
        self.device_utilisation
            .insert(device.label().to_string(), utilisation);
    }

    /// Fraction of packets dropped so far.
    pub fn drop_ratio(&self) -> f64 {
        let total = self.total_drops + self.total_delivered;
        if total == 0 {
            0.0
        } else {
            self.total_drops as f64 / total as f64
        }
    }
}

/// A shareable registry holding the latest chain metrics plus history.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    current: ChainMetrics,
    latency: LatencyHistogram,
    nic_utilisation_history: TimeSeries,
    cpu_utilisation_history: TimeSeries,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(Mutex::new(Inner {
                current: ChainMetrics::default(),
                latency: LatencyHistogram::new(),
                nic_utilisation_history: TimeSeries::new(4096),
                cpu_utilisation_history: TimeSeries::new(4096),
            })),
        }
    }

    /// Publishes a new snapshot (called by the runtime).
    pub fn publish(&self, metrics: ChainMetrics) {
        let mut inner = self.inner.lock();
        inner
            .nic_utilisation_history
            .push(metrics.updated_at, metrics.utilisation_of(Device::SmartNic));
        inner
            .cpu_utilisation_history
            .push(metrics.updated_at, metrics.utilisation_of(Device::Cpu));
        inner.current = metrics;
    }

    /// Records one end-to-end packet latency (called by the runtime).
    pub fn record_latency(&self, latency: SimDuration) {
        self.inner.lock().latency.record(latency);
    }

    /// The latest snapshot (called by the orchestrator).
    pub fn snapshot(&self) -> ChainMetrics {
        self.inner.lock().current.clone()
    }

    /// The offered load of the latest snapshot, without cloning the whole
    /// snapshot (the control loop polls this every tick; the full
    /// [`ChainMetrics`] clone allocates its utilisation map each time).
    pub fn offered_load(&self) -> Gbps {
        self.inner.lock().current.offered_load
    }

    /// A copy of the full latency histogram.
    pub fn latency_histogram(&self) -> LatencyHistogram {
        self.inner.lock().latency.clone()
    }

    /// The recorded utilisation history of a device.
    pub fn utilisation_history(&self, device: Device) -> Vec<(SimTime, f64)> {
        let inner = self.inner.lock();
        match device {
            Device::SmartNic => inner.nic_utilisation_history.samples().to_vec(),
            Device::Cpu => inner.cpu_utilisation_history.samples().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_defaults_and_accessors() {
        let mut m = ChainMetrics::default();
        assert_eq!(m.utilisation_of(Device::SmartNic), 0.0);
        m.set_utilisation(Device::SmartNic, 0.8);
        m.set_utilisation(Device::Cpu, 0.3);
        assert_eq!(m.utilisation_of(Device::SmartNic), 0.8);
        assert_eq!(m.utilisation_of(Device::Cpu), 0.3);
        assert_eq!(m.drop_ratio(), 0.0);
        m.total_drops = 5;
        m.total_delivered = 15;
        assert!((m.drop_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn registry_publish_and_snapshot() {
        let registry = MetricsRegistry::new();
        let mut metrics = ChainMetrics {
            updated_at: SimTime::from_millis(5),
            ..ChainMetrics::default()
        };
        metrics.set_utilisation(Device::SmartNic, 1.2);
        metrics.offered_load = Gbps::new(2.2);
        registry.publish(metrics.clone());

        let snap = registry.snapshot();
        assert_eq!(snap.updated_at, SimTime::from_millis(5));
        assert_eq!(snap.utilisation_of(Device::SmartNic), 1.2);
        assert_eq!(snap.offered_load, Gbps::new(2.2));
    }

    #[test]
    fn registry_keeps_utilisation_history() {
        let registry = MetricsRegistry::new();
        for i in 0..5u64 {
            let mut m = ChainMetrics {
                updated_at: SimTime::from_millis(i),
                ..ChainMetrics::default()
            };
            m.set_utilisation(Device::SmartNic, i as f64 / 10.0);
            m.set_utilisation(Device::Cpu, 0.5);
            registry.publish(m);
        }
        let nic = registry.utilisation_history(Device::SmartNic);
        assert_eq!(nic.len(), 5);
        assert_eq!(nic[4].1, 0.4);
        let cpu = registry.utilisation_history(Device::Cpu);
        assert!(cpu.iter().all(|(_, v)| *v == 0.5));
    }

    #[test]
    fn registry_latency_histogram_accumulates() {
        let registry = MetricsRegistry::new();
        for micros in [100u64, 200, 300] {
            registry.record_latency(SimDuration::from_micros(micros));
        }
        let hist = registry.latency_histogram();
        assert_eq!(hist.count(), 3);
        assert_eq!(hist.mean(), SimDuration::from_micros(200));
    }

    #[test]
    fn registry_clones_share_state() {
        let registry = MetricsRegistry::new();
        let clone = registry.clone();
        clone.record_latency(SimDuration::from_micros(42));
        assert_eq!(registry.latency_histogram().count(), 1);
    }

    #[test]
    fn serde_round_trip_of_metrics() {
        let mut m = ChainMetrics::default();
        m.set_utilisation(Device::Cpu, 0.6);
        let json = serde_json::to_string(&m).unwrap();
        let back: ChainMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.utilisation_of(Device::Cpu), 0.6);
    }
}
