//! Counters, throughput meters and time series.

use pam_types::{ByteSize, Gbps, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn increment(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

/// Windowed delivered-throughput measurement: counts bytes between
/// [`ThroughputMeter::start_window`] and "now".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThroughputMeter {
    window_start: SimTime,
    bytes: u64,
    packets: u64,
}

impl ThroughputMeter {
    /// Creates a meter with its window starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a fresh measurement window at `now`.
    pub fn start_window(&mut self, now: SimTime) {
        self.window_start = now;
        self.bytes = 0;
        self.packets = 0;
    }

    /// Records a delivered packet of `size`.
    pub fn record(&mut self, size: ByteSize) {
        self.bytes += size.as_bytes();
        self.packets += 1;
    }

    /// Bytes delivered in the current window.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Packets delivered in the current window.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// The delivered throughput over the window ending at `now`.
    pub fn throughput(&self, now: SimTime) -> Gbps {
        let elapsed = now.duration_since(self.window_start).as_secs_f64();
        if elapsed <= 0.0 {
            return Gbps::ZERO;
        }
        Gbps::from_bytes_per_sec(self.bytes as f64 / elapsed)
    }

    /// The packet rate over the window ending at `now` (packets per second).
    pub fn packet_rate(&self, now: SimTime) -> f64 {
        let elapsed = now.duration_since(self.window_start).as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        self.packets as f64 / elapsed
    }
}

/// A bounded time series of `(time, value)` samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
    max_samples: usize,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new(0)
    }
}

impl TimeSeries {
    /// Creates a series bounded to `max_samples` points (zero = unbounded).
    pub fn new(max_samples: usize) -> Self {
        TimeSeries {
            samples: Vec::new(),
            max_samples,
        }
    }

    /// Appends a sample (drops the oldest when at capacity).
    pub fn push(&mut self, time: SimTime, value: f64) {
        if self.max_samples != 0 && self.samples.len() >= self.max_samples {
            self.samples.remove(0);
        }
        self.samples.push((time, value));
    }

    /// All retained samples, oldest first.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.samples.last().copied()
    }

    /// The mean of retained values.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }

    /// The maximum of retained values.
    pub fn max(&self) -> f64 {
        self.samples.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }

    /// The mean of values whose timestamps fall in `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> f64 {
        let selected: Vec<f64> = self
            .samples
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        if selected.is_empty() {
            0.0
        } else {
            selected.iter().sum::<f64>() / selected.len() as f64
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Helper: the duration-weighted mean of a set of `(duration, value)` pairs,
/// used when aggregating per-phase measurements into one figure.
pub fn weighted_mean(pairs: &[(SimDuration, f64)]) -> f64 {
    let total: f64 = pairs.iter().map(|(d, _)| d.as_secs_f64()).sum();
    if total <= 0.0 {
        return 0.0;
    }
    pairs.iter().map(|(d, v)| d.as_secs_f64() * v).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.increment();
        c.increment();
        c.add(10);
        assert_eq!(c.value(), 12);
    }

    #[test]
    fn throughput_meter_measures_rate() {
        let mut m = ThroughputMeter::new();
        m.start_window(SimTime::from_millis(10));
        for _ in 0..1000 {
            m.record(ByteSize::bytes(1250));
        }
        // 1.25 MB over 10 ms = 1 Gbps.
        let now = SimTime::from_millis(20);
        assert!((m.throughput(now).as_gbps() - 1.0).abs() < 1e-9);
        assert_eq!(m.bytes(), 1_250_000);
        assert_eq!(m.packets(), 1000);
        assert!((m.packet_rate(now) - 100_000.0).abs() < 1e-6);
        // Degenerate window.
        assert_eq!(m.throughput(SimTime::from_millis(10)), Gbps::ZERO);
        assert_eq!(m.packet_rate(SimTime::from_millis(5)), 0.0);
    }

    #[test]
    fn throughput_meter_window_reset() {
        let mut m = ThroughputMeter::new();
        m.record(ByteSize::bytes(100));
        m.start_window(SimTime::from_micros(50));
        assert_eq!(m.bytes(), 0);
        assert_eq!(m.packets(), 0);
    }

    #[test]
    fn time_series_bounds_and_stats() {
        let mut ts = TimeSeries::new(3);
        for i in 0..5u64 {
            ts.push(SimTime::from_millis(i), i as f64);
        }
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.samples()[0].1, 2.0);
        assert_eq!(ts.last(), Some((SimTime::from_millis(4), 4.0)));
        assert_eq!(ts.mean(), 3.0);
        assert_eq!(ts.max(), 4.0);
        assert!(!ts.is_empty());
    }

    #[test]
    fn time_series_windowed_mean() {
        let mut ts = TimeSeries::new(0);
        for i in 0..10u64 {
            ts.push(SimTime::from_millis(i), i as f64);
        }
        let mean = ts.mean_in(SimTime::from_millis(2), SimTime::from_millis(5));
        assert_eq!(mean, 3.0);
        assert_eq!(
            ts.mean_in(SimTime::from_millis(50), SimTime::from_millis(60)),
            0.0
        );
    }

    #[test]
    fn empty_series_behaviour() {
        let ts = TimeSeries::new(4);
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.max(), 0.0);
        assert_eq!(ts.last(), None);
    }

    #[test]
    fn weighted_mean_weights_by_duration() {
        let pairs = [
            (SimDuration::from_millis(10), 100.0),
            (SimDuration::from_millis(30), 200.0),
        ];
        assert!((weighted_mean(&pairs) - 175.0).abs() < 1e-9);
        assert_eq!(weighted_mean(&[]), 0.0);
    }
}
