//! Telemetry primitives for the PAM workspace.
//!
//! The poster's control loop "periodically query\[s\] the load of SmartNIC and
//! CPU" — this crate provides the measurement machinery behind that query,
//! plus the latency/throughput instrumentation the experiments report:
//!
//! * [`Counter`] — monotone event counters.
//! * [`LatencyHistogram`] — a log-bucketed streaming histogram with
//!   mean/percentile queries, used for every per-packet latency figure.
//! * [`ThroughputMeter`] — windowed delivered-throughput measurement.
//! * [`TimeSeries`] — bounded time-stamped samples (utilisation over time).
//! * [`MetricsRegistry`] — a shareable registry the runtime writes and the
//!   orchestrator reads, mirroring an operator's monitoring endpoint.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub mod histogram;
pub mod meters;
pub mod registry;

pub use histogram::LatencyHistogram;
pub use meters::{Counter, ThroughputMeter, TimeSeries};
pub use registry::{ChainMetrics, MetricsRegistry};
