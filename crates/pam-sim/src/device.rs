//! Compute-device models: the SmartNIC NPU and the host CPU.
//!
//! Following the poster's resource model (§2, after CoCo \[5\]), a device is a
//! shared pool whose utilisation is the sum over resident vNFs of
//! `θ_cur / θ_capacity`. The packet-level counterpart implemented here is a
//! single work-conserving [`RateServer`] per device: processing a packet of
//! `B` bits for a vNF whose capacity on this device is `θ` occupies the
//! server for `B / θ` seconds (scaled by the vNF's load factor). Summing over
//! resident vNFs reproduces exactly the analytical utilisation the PAM
//! algorithm reasons about, which is what lets the runtime's measured
//! utilisation and `pam-core`'s predicted utilisation be compared in tests.
//!
//! Fixed per-packet *pipeline latency* (NPU pipeline depth, DPDK batching,
//! virtualisation overhead) is modelled separately by the runtime as a delay
//! that does not occupy the server, so that a device can sustain multi-Gbps
//! throughput while still adding tens of microseconds of per-packet latency —
//! matching how the real hardware behaves.

use pam_types::{ByteSize, Device, Gbps, SimDuration, SimTime};

use crate::server::{RateServer, ServerStats};

/// Configuration of a compute device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Which device this is.
    pub device: Device,
    /// Admission limit: a packet whose queueing delay (backlog) would exceed
    /// this bound is dropped instead of enqueued. Zero means unbounded.
    pub max_backlog: SimDuration,
    /// Number of processing cores; informational (capacities in the vNF
    /// profiles already account for intra-device parallelism) but reported in
    /// experiment metadata.
    pub cores: u32,
}

impl DeviceConfig {
    /// The SmartNIC configuration used in the paper's testbed (Netronome
    /// Agilio CX, 2×10 GbE): a modest backlog bound because NIC buffers are
    /// small.
    pub fn smartnic() -> Self {
        DeviceConfig {
            device: Device::SmartNic,
            max_backlog: SimDuration::from_micros(200),
            cores: 60,
        }
    }

    /// The host CPU configuration (2× Xeon E5-2620 v2, 6 physical cores
    /// each): deeper software queues.
    pub fn cpu() -> Self {
        DeviceConfig {
            device: Device::Cpu,
            max_backlog: SimDuration::from_micros(1000),
            cores: 12,
        }
    }

    /// The default configuration for a given device kind.
    pub fn for_device(device: Device) -> Self {
        match device {
            Device::SmartNic => Self::smartnic(),
            Device::Cpu => Self::cpu(),
        }
    }
}

/// Statistics accumulated by a [`ComputeDevice`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Packets processed to completion.
    pub processed: u64,
    /// Bytes processed to completion.
    pub bytes: u64,
    /// Packets rejected by the admission check.
    pub rejected: u64,
}

/// The outcome of offering a packet to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessOutcome {
    /// The packet was accepted; processing finishes at the given instant.
    Accepted {
        /// When service begins (after any queueing).
        start: SimTime,
        /// When service completes.
        finish: SimTime,
    },
    /// The packet was dropped because the device backlog exceeded the bound.
    Rejected,
}

/// A compute device: a shared rate server plus accounting.
#[derive(Debug, Clone)]
pub struct ComputeDevice {
    config: DeviceConfig,
    server: RateServer,
    stats: DeviceStats,
    window_start: SimTime,
}

impl ComputeDevice {
    /// Creates a device from its configuration.
    pub fn new(config: DeviceConfig) -> Self {
        ComputeDevice {
            config,
            server: RateServer::new(),
            stats: DeviceStats::default(),
            window_start: SimTime::ZERO,
        }
    }

    /// Which device this is.
    pub fn device(&self) -> Device {
        self.config.device
    }

    /// The configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The service time a packet of `size` requires from a vNF with capacity
    /// `capacity` on this device, scaled by the vNF's `load_factor`
    /// (the fraction of traffic the vNF actually inspects, e.g. a sampling
    /// logger).
    pub fn service_time(size: ByteSize, capacity: Gbps, load_factor: f64) -> SimDuration {
        if capacity.as_gbps() <= 0.0 {
            // A vNF with no capacity on this device cannot run here; the
            // planner never places one, but be defensive.
            return SimDuration::from_millis(1);
        }
        SimDuration::transmission(size, capacity) * load_factor.max(0.0)
    }

    /// Offers a packet to the device at `now` with a precomputed service
    /// time; the admission check compares the current backlog against the
    /// configured bound.
    pub fn process(
        &mut self,
        now: SimTime,
        size: ByteSize,
        service: SimDuration,
    ) -> ProcessOutcome {
        if !self.config.max_backlog.is_zero() && self.server.backlog(now) > self.config.max_backlog
        {
            self.stats.rejected += 1;
            return ProcessOutcome::Rejected;
        }
        let (start, finish) = self.server.serve(now, service);
        self.stats.processed += 1;
        self.stats.bytes += size.as_bytes();
        ProcessOutcome::Accepted { start, finish }
    }

    /// The device's measured utilisation over the current window.
    pub fn utilisation(&self, now: SimTime) -> f64 {
        self.server.utilisation(self.window_start, now)
    }

    /// The throughput of *accepted* traffic over the current window.
    pub fn delivered_throughput(&self, now: SimTime) -> Gbps {
        let elapsed = now.duration_since(self.window_start).as_secs_f64();
        if elapsed <= 0.0 {
            return Gbps::ZERO;
        }
        Gbps::from_bytes_per_sec(self.stats.bytes as f64 / elapsed)
    }

    /// Current backlog (time until idle) seen by a packet arriving at `now`.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.server.backlog(now)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Low-level server statistics (waits, busy time).
    pub fn server_stats(&self) -> ServerStats {
        self.server.stats()
    }

    /// Starts a fresh measurement window at `now`, clearing counters but
    /// keeping in-flight backlog.
    pub fn start_window(&mut self, now: SimTime) {
        self.window_start = now;
        self.stats = DeviceStats::default();
        self.server.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_scales_with_size_capacity_and_load_factor() {
        // 1500 B at 2 Gbps (the Logger's SmartNIC capacity) = 6 us.
        let full = ComputeDevice::service_time(ByteSize::bytes(1500), Gbps::new(2.0), 1.0);
        assert_eq!(full, SimDuration::from_micros(6));
        // A sampling logger that touches 25% of traffic costs a quarter.
        let sampled = ComputeDevice::service_time(ByteSize::bytes(1500), Gbps::new(2.0), 0.25);
        assert_eq!(sampled, SimDuration::from_nanos(1500));
        // Larger capacity, shorter service.
        let faster = ComputeDevice::service_time(ByteSize::bytes(1500), Gbps::new(10.0), 1.0);
        assert!(faster < full);
        // Zero capacity falls back to a punitive constant rather than dividing by zero.
        let degenerate = ComputeDevice::service_time(ByteSize::bytes(64), Gbps::ZERO, 1.0);
        assert_eq!(degenerate, SimDuration::from_millis(1));
    }

    #[test]
    fn acceptance_and_timing() {
        let mut dev = ComputeDevice::new(DeviceConfig::smartnic());
        let now = SimTime::from_micros(1);
        match dev.process(now, ByteSize::bytes(1500), SimDuration::from_micros(6)) {
            ProcessOutcome::Accepted { start, finish } => {
                assert_eq!(start, now);
                assert_eq!(finish, now + SimDuration::from_micros(6));
            }
            ProcessOutcome::Rejected => panic!("packet should be accepted"),
        }
        assert_eq!(dev.stats().processed, 1);
        assert_eq!(dev.stats().bytes, 1500);
        assert_eq!(dev.device(), Device::SmartNic);
    }

    #[test]
    fn backlog_bound_drops_excess() {
        let config = DeviceConfig {
            device: Device::SmartNic,
            max_backlog: SimDuration::from_micros(10),
            cores: 1,
        };
        let mut dev = ComputeDevice::new(config);
        let now = SimTime::ZERO;
        // Fill slightly beyond the bound: each job takes 6 us.
        let mut accepted = 0;
        let mut rejected = 0;
        for _ in 0..5 {
            match dev.process(now, ByteSize::bytes(1500), SimDuration::from_micros(6)) {
                ProcessOutcome::Accepted { .. } => accepted += 1,
                ProcessOutcome::Rejected => rejected += 1,
            }
        }
        // Jobs 1 and 2 accepted (backlog 0 then 6 us); job 3 sees 12 us > 10 us.
        assert_eq!(accepted, 2);
        assert_eq!(rejected, 3);
        assert_eq!(dev.stats().rejected, 3);
        assert_eq!(dev.backlog(now), SimDuration::from_micros(12));
    }

    #[test]
    fn unbounded_backlog_never_rejects() {
        let config = DeviceConfig {
            device: Device::Cpu,
            max_backlog: SimDuration::ZERO,
            cores: 12,
        };
        let mut dev = ComputeDevice::new(config);
        for _ in 0..100 {
            match dev.process(
                SimTime::ZERO,
                ByteSize::bytes(64),
                SimDuration::from_micros(50),
            ) {
                ProcessOutcome::Accepted { .. } => {}
                ProcessOutcome::Rejected => panic!("unbounded device must not reject"),
            }
        }
        assert_eq!(dev.stats().rejected, 0);
    }

    #[test]
    fn utilisation_and_throughput_measurement() {
        let mut dev = ComputeDevice::new(DeviceConfig::cpu());
        dev.start_window(SimTime::ZERO);
        // 100 packets of 1250 bytes each, 1 us service each, over 1 ms.
        for i in 0..100u64 {
            let now = SimTime::from_micros(i * 10);
            dev.process(now, ByteSize::bytes(1250), SimDuration::from_micros(1));
        }
        let now = SimTime::from_millis(1);
        assert!((dev.utilisation(now) - 0.1).abs() < 0.01);
        // 125 000 bytes in 1 ms = 1 Gbps.
        assert!((dev.delivered_throughput(now).as_gbps() - 1.0).abs() < 0.01);
    }

    #[test]
    fn window_reset_clears_counters_but_not_backlog() {
        let mut dev = ComputeDevice::new(DeviceConfig::smartnic());
        dev.process(
            SimTime::ZERO,
            ByteSize::bytes(1500),
            SimDuration::from_micros(50),
        );
        dev.start_window(SimTime::from_micros(10));
        assert_eq!(dev.stats().processed, 0);
        assert!(dev.backlog(SimTime::from_micros(10)) > SimDuration::ZERO);
        assert_eq!(
            dev.delivered_throughput(SimTime::from_micros(10)),
            Gbps::ZERO
        );
    }

    #[test]
    fn default_configs_differ_per_device() {
        assert_eq!(
            DeviceConfig::for_device(Device::SmartNic).device,
            Device::SmartNic
        );
        assert_eq!(DeviceConfig::for_device(Device::Cpu).device, Device::Cpu);
        assert!(DeviceConfig::cpu().max_backlog > DeviceConfig::smartnic().max_backlog);
    }
}
