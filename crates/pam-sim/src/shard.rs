//! Conservative-lookahead shard planning for parallel simulation.
//!
//! A fleet-scale simulation is a set of per-node event streams coupled by
//! *channels* (re-steered flows, state handoffs, controller decisions), each
//! with a modeled delivery latency. Conservative parallel discrete-event
//! simulation exploits that latency as **lookahead**: if every channel into a
//! node carries at least `L` of latency, the node can safely execute `L`
//! ahead of its peers without ever receiving an event from its past.
//!
//! [`ShardPlan::conservative`] turns a topology into an execution plan for a
//! *windowed* runner that synchronises all shards at a global barrier every
//! `barrier` of simulated time:
//!
//! * a channel whose lookahead is **at least** the barrier interval never
//!   delivers inside the window it was sent in — it is exchanged at the
//!   barrier, and its endpoints may run on different shards;
//! * a channel with **less** lookahead than the barrier (in the limit, a
//!   zero-lookahead channel such as a re-steered flow delivered at its
//!   original arrival instant) could deliver mid-window, so its endpoints are
//!   merged into one **group** and executed sequentially on one worker.
//!
//! Groups are the unit of parallelism: the plan partitions nodes into groups
//! (the connected components of the sub-barrier channel graph) and
//! [`ShardPlan::lanes`] deals groups round-robin onto worker lanes. Within a
//! group the runner preserves the exact global `(time, seq)` event order, so
//! the parallel run is event-for-event identical to the sequential one — the
//! property the fleet's shard-determinism CI wall byte-diffs.
//!
//! [`ShardPlan::safe_horizon`] is the windowed runner's safety bound: the
//! largest distance past a window's start any group may execute before the
//! next barrier, `min(barrier, min cross-group lookahead)`. With the grouping
//! rule above every cross-group channel has lookahead ≥ barrier, so the
//! horizon equals the barrier interval; the formula stays general so a
//! future runner can trade shorter windows for more parallelism.

use pam_types::{SimDuration, SimTime};

/// One directed coupling between two simulated nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardChannel {
    /// Sending node index.
    pub from: usize,
    /// Receiving node index.
    pub to: usize,
    /// Minimum simulated time between sending and delivery. Zero means the
    /// receiver can observe the sender's events instantaneously, forcing the
    /// two nodes onto the same shard.
    pub lookahead: SimDuration,
}

/// A partition of nodes into sequentially-executed groups plus the safe
/// execution horizon per synchronisation window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    barrier: SimDuration,
    safe_horizon: SimDuration,
    group_of: Vec<usize>,
    groups: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Builds the conservative plan for `nodes` nodes coupled by `channels`,
    /// synchronised at a global barrier every `barrier` of simulated time.
    ///
    /// Channels with `lookahead < barrier` merge their endpoints into one
    /// group (transitively). Groups are numbered in order of their smallest
    /// member and list members in ascending order, so the plan is a pure
    /// function of its inputs.
    ///
    /// # Panics
    /// Panics if a channel endpoint is out of range.
    pub fn conservative(nodes: usize, channels: &[ShardChannel], barrier: SimDuration) -> Self {
        let mut parent: Vec<usize> = (0..nodes).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for channel in channels {
            assert!(
                channel.from < nodes && channel.to < nodes,
                "channel {}->{} out of range for {} nodes",
                channel.from,
                channel.to,
                nodes
            );
            if channel.lookahead < barrier {
                let a = find(&mut parent, channel.from);
                let b = find(&mut parent, channel.to);
                // Union by smaller root keeps the representative the
                // component's least member, independent of channel order.
                if a != b {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    parent[hi] = lo;
                }
            }
        }
        let mut group_of = vec![usize::MAX; nodes];
        let mut group_index_of_root = vec![usize::MAX; nodes];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (node, slot) in group_of.iter_mut().enumerate() {
            let root = find(&mut parent, node);
            if group_index_of_root[root] == usize::MAX {
                group_index_of_root[root] = groups.len();
                groups.push(Vec::new());
            }
            let group = group_index_of_root[root];
            *slot = group;
            groups[group].push(node);
        }
        let mut safe_horizon = barrier;
        for channel in channels {
            if group_of[channel.from] != group_of[channel.to] {
                safe_horizon = safe_horizon.min(channel.lookahead);
            }
        }
        ShardPlan {
            barrier,
            safe_horizon,
            group_of,
            groups,
        }
    }

    /// The synchronisation-window length the plan was built for.
    pub fn barrier(&self) -> SimDuration {
        self.barrier
    }

    /// How far past a window's start any group may execute before the next
    /// barrier. By construction `min(barrier, min cross-group lookahead)`.
    pub fn safe_horizon(&self) -> SimDuration {
        self.safe_horizon
    }

    /// The groups, each a sorted list of node indices. Groups are ordered by
    /// their smallest member; together they partition `0..nodes`.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The group `node` belongs to.
    pub fn group_of(&self, node: usize) -> usize {
        self.group_of[node]
    }

    /// True iff an event at `at` may execute inside the window starting at
    /// `window_start` without risking a causality violation.
    pub fn is_safe(&self, window_start: SimTime, at: SimTime) -> bool {
        at <= window_start + self.safe_horizon
    }

    /// Deals the groups round-robin onto at most `shards` worker lanes
    /// (never more lanes than groups). Deterministic: lane `w` gets groups
    /// `w, w + lanes, w + 2·lanes, …`.
    pub fn lanes(&self, shards: usize) -> Vec<Vec<usize>> {
        if self.groups.is_empty() {
            return Vec::new();
        }
        let count = shards.clamp(1, self.groups.len());
        let mut lanes = vec![Vec::new(); count];
        for group in 0..self.groups.len() {
            lanes[group % count].push(group);
        }
        lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BARRIER: SimDuration = SimDuration::from_micros(500);

    fn ch(from: usize, to: usize, lookahead: SimDuration) -> ShardChannel {
        ShardChannel {
            from,
            to,
            lookahead,
        }
    }

    #[test]
    fn unconnected_nodes_each_get_their_own_group() {
        let plan = ShardPlan::conservative(4, &[], BARRIER);
        assert_eq!(plan.groups(), &[vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(plan.safe_horizon(), BARRIER);
        assert_eq!(plan.barrier(), BARRIER);
        for node in 0..4 {
            assert_eq!(plan.group_of(node), node);
        }
    }

    #[test]
    fn zero_lookahead_channels_merge_their_endpoints() {
        let plan = ShardPlan::conservative(4, &[ch(0, 2, SimDuration::ZERO)], BARRIER);
        assert_eq!(plan.groups(), &[vec![0, 2], vec![1], vec![3]]);
        assert_eq!(plan.group_of(0), plan.group_of(2));
        assert_ne!(plan.group_of(0), plan.group_of(1));
    }

    #[test]
    fn merging_is_transitive_regardless_of_channel_order() {
        let forward = [
            ch(0, 1, SimDuration::ZERO),
            ch(1, 2, SimDuration::from_micros(1)),
        ];
        let reverse = [
            ch(1, 2, SimDuration::from_micros(1)),
            ch(0, 1, SimDuration::ZERO),
        ];
        let a = ShardPlan::conservative(3, &forward, BARRIER);
        let b = ShardPlan::conservative(3, &reverse, BARRIER);
        assert_eq!(a, b);
        assert_eq!(a.groups(), &[vec![0, 1, 2]]);
    }

    #[test]
    fn channels_with_barrier_or_more_lookahead_do_not_merge() {
        let plan = ShardPlan::conservative(2, &[ch(0, 1, BARRIER)], BARRIER);
        assert_eq!(plan.groups().len(), 2);
        // The cross-group channel's lookahead bounds the horizon (here it
        // equals the barrier, so the bound is not binding).
        assert_eq!(plan.safe_horizon(), BARRIER);
    }

    #[test]
    fn cross_group_lookahead_tightens_the_safe_horizon() {
        // Build a plan with a *shorter* barrier so the 200 µs channel stays
        // cross-group, then check the general horizon formula.
        let barrier = SimDuration::from_micros(100);
        let plan = ShardPlan::conservative(2, &[ch(0, 1, SimDuration::from_micros(200))], barrier);
        assert_eq!(plan.groups().len(), 2);
        assert_eq!(plan.safe_horizon(), barrier);
        let start = SimTime::from_micros(700);
        assert!(plan.is_safe(start, start + barrier));
        assert!(!plan.is_safe(start, start + barrier + SimDuration::from_nanos(1)));
    }

    #[test]
    fn lanes_deal_groups_round_robin_without_exceeding_group_count() {
        let plan = ShardPlan::conservative(5, &[], BARRIER);
        assert_eq!(plan.lanes(2), vec![vec![0, 2, 4], vec![1, 3]]);
        assert_eq!(plan.lanes(8).len(), 5, "never more lanes than groups");
        assert_eq!(plan.lanes(1), vec![vec![0, 1, 2, 3, 4]]);
        assert_eq!(plan.lanes(0).len(), 1, "zero shards clamps to one lane");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_channel_endpoints_panic() {
        ShardPlan::conservative(2, &[ch(0, 2, SimDuration::ZERO)], BARRIER);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random topologies: up to 24 nodes, channels with lookaheads straddling
    /// the barrier. The vendored proptest has no mapping combinators, so the
    /// strategy samples raw tuples and `build_topology` shapes them (channel
    /// endpoints land in range via modulo).
    fn arb_topology() -> impl Strategy<Value = (usize, Vec<(usize, usize, u64)>, u64)> {
        (
            2usize..24,
            proptest::collection::vec((0usize..24, 0usize..24, 0u64..2_000), 0..40),
            1u64..2_000,
        )
    }

    fn build_topology(
        topology: (usize, Vec<(usize, usize, u64)>, u64),
    ) -> (usize, Vec<ShardChannel>, SimDuration) {
        let (nodes, raw, barrier_nanos) = topology;
        let channels = raw
            .into_iter()
            .map(|(from, to, nanos)| ShardChannel {
                from: from % nodes,
                to: to % nodes,
                lookahead: SimDuration::from_nanos(nanos),
            })
            .collect();
        (nodes, channels, SimDuration::from_nanos(barrier_nanos))
    }

    /// Reference partition: BFS connected components over the undirected
    /// sub-barrier channel graph, components ordered by smallest member.
    fn bfs_components(
        nodes: usize,
        channels: &[ShardChannel],
        barrier: SimDuration,
    ) -> Vec<Vec<usize>> {
        let mut adjacency = vec![Vec::new(); nodes];
        for c in channels {
            if c.lookahead < barrier {
                adjacency[c.from].push(c.to);
                adjacency[c.to].push(c.from);
            }
        }
        let mut seen = vec![false; nodes];
        let mut components = Vec::new();
        for start in 0..nodes {
            if seen[start] {
                continue;
            }
            let mut component = Vec::new();
            let mut frontier = vec![start];
            seen[start] = true;
            while let Some(node) = frontier.pop() {
                component.push(node);
                for &next in &adjacency[node] {
                    if !seen[next] {
                        seen[next] = true;
                        frontier.push(next);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    proptest! {
        /// The plan's groups are exactly the connected components of the
        /// sub-barrier channel graph, in canonical order.
        #[test]
        fn groups_match_the_bfs_reference(topology in arb_topology()) {
            let (nodes, channels, barrier) = build_topology(topology);
            let plan = ShardPlan::conservative(nodes, &channels, barrier);
            prop_assert_eq!(plan.groups(), bfs_components(nodes, &channels, barrier).as_slice());
        }

        /// Groups partition the nodes and `group_of` agrees with membership.
        #[test]
        fn groups_partition_the_nodes(topology in arb_topology()) {
            let (nodes, channels, barrier) = build_topology(topology);
            let plan = ShardPlan::conservative(nodes, &channels, barrier);
            let mut seen = vec![0u32; nodes];
            for (index, group) in plan.groups().iter().enumerate() {
                for &node in group {
                    seen[node] += 1;
                    prop_assert_eq!(plan.group_of(node), index);
                }
            }
            prop_assert!(seen.iter().all(|&count| count == 1));
        }

        /// No channel that could deliver mid-window ever crosses groups, and
        /// the safe horizon never exceeds the barrier or any cross-group
        /// channel's lookahead.
        #[test]
        fn lookahead_safety(topology in arb_topology()) {
            let (nodes, channels, barrier) = build_topology(topology);
            let plan = ShardPlan::conservative(nodes, &channels, barrier);
            prop_assert!(plan.safe_horizon() <= barrier);
            for c in &channels {
                if c.lookahead < barrier {
                    prop_assert_eq!(
                        plan.group_of(c.from), plan.group_of(c.to),
                        "sub-barrier channel {}->{} crosses groups", c.from, c.to
                    );
                } else {
                    prop_assert!(plan.safe_horizon() <= c.lookahead.max(barrier));
                }
                if plan.group_of(c.from) != plan.group_of(c.to) {
                    prop_assert!(plan.safe_horizon() <= c.lookahead);
                }
            }
            // An event at the horizon is safe; one past it is not.
            let start = SimTime::from_micros(3);
            prop_assert!(plan.is_safe(start, start + plan.safe_horizon()));
            prop_assert!(!plan.is_safe(
                start,
                start + plan.safe_horizon() + SimDuration::from_nanos(1)
            ));
        }

        /// Lane assignment is a partition of the groups, lane count never
        /// exceeds min(shards, groups), and the deal is stable round-robin.
        #[test]
        fn lanes_partition_the_groups(topology in arb_topology(), shards in 1usize..9) {
            let (nodes, channels, barrier) = build_topology(topology);
            let plan = ShardPlan::conservative(nodes, &channels, barrier);
            let lanes = plan.lanes(shards);
            prop_assert_eq!(lanes.len(), shards.min(plan.groups().len()));
            let mut seen = vec![false; plan.groups().len()];
            for (lane_index, lane) in lanes.iter().enumerate() {
                for &group in lane {
                    prop_assert!(!std::mem::replace(&mut seen[group], true));
                    prop_assert_eq!(group % lanes.len(), lane_index);
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        /// The plan is a pure function of its inputs.
        #[test]
        fn planning_is_deterministic(topology in arb_topology()) {
            let (nodes, channels, barrier) = build_topology(topology);
            let a = ShardPlan::conservative(nodes, &channels, barrier);
            let b = ShardPlan::conservative(nodes, &channels, barrier);
            prop_assert_eq!(a, b);
        }
    }
}
