//! The PCIe link between the SmartNIC and the host CPU.
//!
//! Every time consecutive hops of a service chain sit on different devices,
//! the packet is DMA'd across PCIe. The poster's measurement attributes "tens
//! of microseconds" of added latency to the two extra crossings the naive
//! migration introduces; this model therefore charges each crossing a fixed
//! latency (DMA setup, doorbell, ring processing, batching amortisation) plus
//! a serialisation time on the link's usable bandwidth, and keeps per-
//! direction counters so experiments can report exactly how many crossings
//! each migration strategy caused.

use pam_types::{ByteSize, Gbps, SimDuration, SimTime};
use serde::value::{Map, Value};
use serde::{Deserialize, Error, Serialize};

use crate::server::RateServer;
use crate::sharing::SharedTransfer;
use crate::sharing::{
    ActivityId, DegradationFn, FairShareLink, FairShareStats, LinkModel, MIN_CAPACITY_FACTOR,
};

/// Direction of a PCIe crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDirection {
    /// From the SmartNIC to the host CPU.
    NicToCpu,
    /// From the host CPU to the SmartNIC.
    CpuToNic,
}

impl LinkDirection {
    /// Both directions.
    pub const ALL: [LinkDirection; 2] = [LinkDirection::NicToCpu, LinkDirection::CpuToNic];
}

/// Configuration of the PCIe link model. The same rate-server + fixed
/// latency shape also models other point-to-point transports (the fleet
/// layer instantiates one as its inter-server state-handoff link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieLinkConfig {
    /// Fixed one-way crossing latency (DMA + descriptor ring + batching).
    pub crossing_latency: SimDuration,
    /// Usable bandwidth per direction.
    pub bandwidth: Gbps,
    /// Throughput model: FIFO-fixed (the baseline default) or contention-
    /// aware fair sharing (see [`crate::sharing`]).
    pub link_model: LinkModel,
}

impl Default for PcieLinkConfig {
    fn default() -> Self {
        // PCIe gen3 x8 (the Agilio CX form factor) has ~63 Gbit/s usable per
        // direction; the 22 us default crossing latency is calibrated so that
        // the two extra crossings of the naive migration add the "tens of
        // microseconds" the poster reports.
        PcieLinkConfig {
            crossing_latency: SimDuration::from_micros(22),
            bandwidth: Gbps::new(63.0),
            link_model: LinkModel::FifoFixed,
        }
    }
}

impl PcieLinkConfig {
    /// A config with a specific crossing latency and the default bandwidth.
    /// Used by the PCIe-latency ablation sweep.
    pub fn with_crossing_latency(latency: SimDuration) -> Self {
        PcieLinkConfig {
            crossing_latency: latency,
            ..Default::default()
        }
    }

    /// A LAN-grade inter-server link (25 GbE, ~40 µs one-way): what the
    /// fleet layer ships cross-server state handoffs over.
    pub fn inter_server() -> Self {
        PcieLinkConfig {
            crossing_latency: SimDuration::from_micros(40),
            bandwidth: Gbps::new(25.0),
            link_model: LinkModel::FifoFixed,
        }
    }

    /// Selects the throughput model, keeping the other knobs.
    pub fn with_link_model(mut self, link_model: LinkModel) -> Self {
        self.link_model = link_model;
        self
    }
}

// `link_model` is hand-serialised so configs written before the knob existed
// (and the committed baselines) deserialise as FIFO-fixed instead of failing
// on a missing field (the vendored serde derive has no `#[serde(default)]`).
impl Serialize for PcieLinkConfig {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert(
            "crossing_latency".to_owned(),
            self.crossing_latency.to_value(),
        );
        map.insert("bandwidth".to_owned(), self.bandwidth.to_value());
        map.insert("link_model".to_owned(), self.link_model.to_value());
        Value::Object(map)
    }
}

impl Deserialize for PcieLinkConfig {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = match value {
            Value::Object(map) => map,
            _ => return Err(Error::custom("PcieLinkConfig must be an object")),
        };
        let crossing_latency = SimDuration::from_value(
            map.get("crossing_latency")
                .ok_or_else(|| Error::custom("missing field `crossing_latency`"))?,
        )?;
        let bandwidth = Gbps::from_value(
            map.get("bandwidth")
                .ok_or_else(|| Error::custom("missing field `bandwidth`"))?,
        )?;
        let link_model = match map.get("link_model") {
            Some(value) => LinkModel::from_value(value)?,
            None => LinkModel::FifoFixed,
        };
        Ok(PcieLinkConfig {
            crossing_latency,
            bandwidth,
            link_model,
        })
    }
}

/// Per-direction statistics of the PCIe link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcieLinkStats {
    /// Crossings from the NIC to the CPU.
    pub nic_to_cpu: u64,
    /// Crossings from the CPU to the NIC.
    pub cpu_to_nic: u64,
    /// Total bytes moved in either direction.
    pub bytes: u64,
    /// DMA bursts (doorbells) issued for per-packet crossings: a coalesced
    /// burst of N packets counts N crossings but a single burst, so the
    /// crossings-to-bursts ratio is the link's effective batching factor.
    pub dma_bursts: u64,
}

impl PcieLinkStats {
    /// Total crossings in both directions.
    pub fn total_crossings(&self) -> u64 {
        self.nic_to_cpu + self.cpu_to_nic
    }
}

/// Per-direction link state: the rate server bulk transfers queue on, the
/// FIFO delivery watermark of per-packet crossings, the fair-share engine
/// (used when [`PcieLinkConfig::link_model`] is fair-sharing), and the
/// crossing count. Grouping these per direction means every link operation
/// resolves its direction exactly once instead of re-matching for each field
/// it touches.
#[derive(Debug, Clone)]
struct DirectionState {
    server: RateServer,
    /// Running last-delivery watermark: DMA descriptor rings complete in
    /// order, so a later (smaller) packet must not overtake an earlier
    /// (larger) one on the same direction. Updated in O(1) per burst — the
    /// clamp never re-scans earlier deliveries.
    last_delivery: SimTime,
    /// Contention engine for the fair-sharing model; idle (and unused)
    /// under [`LinkModel::FifoFixed`].
    shared: FairShareLink,
    crossings: u64,
}

impl DirectionState {
    fn new(config: &PcieLinkConfig) -> Self {
        let degradation = match config.link_model {
            LinkModel::FairShare(degradation) => degradation,
            LinkModel::FifoFixed => DegradationFn::Fair,
        };
        DirectionState {
            server: RateServer::default(),
            last_delivery: SimTime::ZERO,
            shared: FairShareLink::new(config.bandwidth, degradation),
            crossings: 0,
        }
    }
}

/// Handle to a transfer admitted via [`PcieLink::begin_transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferToken {
    direction: LinkDirection,
    /// `None` under FIFO-fixed: the arrival committed at begin time is final.
    activity: Option<ActivityId>,
}

/// Result of [`PcieLink::poll_transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferStatus {
    /// The transfer's payload has arrived on the far side.
    Complete,
    /// Contention pushed the arrival out; reschedule at the contained
    /// (strictly later) instant and poll again there.
    InFlight(SimTime),
}

/// The PCIe link: an independent rate server per direction plus a fixed
/// per-crossing latency.
#[derive(Debug, Clone)]
pub struct PcieLink {
    config: PcieLinkConfig,
    nic_to_cpu: DirectionState,
    cpu_to_nic: DirectionState,
    bytes: u64,
    dma_bursts: u64,
    /// Fault injection: no new admission serialises before this instant
    /// ([`SimTime::ZERO`] = link up). Committed FIFO arrivals are not
    /// retroactively delayed; fair-share activities stall via the engines'
    /// own outage state.
    down_until: SimTime,
    /// Fault injection: volatile-capacity factor applied to the bandwidth of
    /// new serialisations (clamped to a positive floor; `1.0` = nominal).
    capacity_factor: f64,
}

impl PcieLink {
    /// Creates a link from its configuration.
    pub fn new(config: PcieLinkConfig) -> Self {
        PcieLink {
            nic_to_cpu: DirectionState::new(&config),
            cpu_to_nic: DirectionState::new(&config),
            config,
            bytes: 0,
            dma_bursts: 0,
            down_until: SimTime::ZERO,
            capacity_factor: 1.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PcieLinkConfig {
        &self.config
    }

    /// The mutable per-direction state (the single direction resolution of
    /// every link operation).
    fn direction_mut(&mut self, direction: LinkDirection) -> &mut DirectionState {
        match direction {
            LinkDirection::NicToCpu => &mut self.nic_to_cpu,
            LinkDirection::CpuToNic => &mut self.cpu_to_nic,
        }
    }

    /// The bandwidth new serialisations see: nominal scaled by the volatile
    /// capacity factor (exactly nominal while the factor is `1.0`).
    fn effective_bandwidth(&self) -> Gbps {
        if self.capacity_factor == 1.0 {
            self.config.bandwidth
        } else {
            Gbps::new(self.config.bandwidth.as_gbps() * self.capacity_factor)
        }
    }

    /// Takes the link down for `down_for` starting at `now`: no new admission
    /// serialises before the outage ends (overlapping flaps extend, never
    /// shorten, the outage), and in-flight fair-share activities stall and
    /// re-plan past the outage on their next poll. Committed FIFO arrivals
    /// are not retroactively delayed — FIFO-fixed commits at admission by
    /// design; use the fair-share [`LinkModel`] for retroactive stalls.
    ///
    /// Pair with [`PcieLink::recover_transport`] when the flap ends so the
    /// direction FIFOs do not carry a phantom backlog out of the outage.
    pub fn flap(&mut self, now: SimTime, down_for: SimDuration) {
        let until = now + down_for;
        self.down_until = self.down_until.max(until);
        let down_until = self.down_until;
        for direction in LinkDirection::ALL {
            self.direction_mut(direction)
                .shared
                .set_outage(now, down_until);
        }
    }

    /// Brings the link back from a flap at `now`: empties the per-direction
    /// rate servers (the descriptor rings restart empty) and rewinds any FIFO
    /// delivery watermark that points past `now`, so a recovered link adds no
    /// phantom serialization delay inherited from before the flap. In-flight
    /// fair-share activities are **kept** — they stalled through the outage
    /// and resume from their surviving remainders. Statistics are untouched.
    pub fn recover_transport(&mut self, now: SimTime) {
        self.down_until = self.down_until.min(now);
        for direction in LinkDirection::ALL {
            let state = self.direction_mut(direction);
            state.server = RateServer::default();
            state.last_delivery = state.last_delivery.min(now);
        }
    }

    /// Scales the bandwidth new serialisations see by `factor` from `now`
    /// on (clamped to a small positive floor — a full outage is
    /// [`PcieLink::flap`], not factor zero). In-flight fair-share activities
    /// re-plan: bits already drained keep their old rate, the remainder
    /// drains at the new one. Pass `1.0` to restore nominal capacity.
    pub fn set_capacity_factor(&mut self, now: SimTime, factor: f64) {
        self.capacity_factor = factor.max(MIN_CAPACITY_FACTOR);
        for direction in LinkDirection::ALL {
            self.direction_mut(direction)
                .shared
                .set_capacity_factor(now, factor);
        }
    }

    /// The current volatile-capacity factor (`1.0` = nominal).
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_factor
    }

    /// The instant the current outage ends ([`SimTime::ZERO`] if the link has
    /// never flapped or has recovered).
    pub fn down_until(&self) -> SimTime {
        self.down_until
    }

    /// Transfers `size` bytes in `direction` starting (at the earliest) at
    /// `now`; returns the instant the data is available on the far side.
    ///
    /// Under [`LinkModel::FifoFixed`] bulk transfers queue behind each other
    /// on the direction's rate server. Under fair sharing the transfer joins
    /// the direction's activity set instead: its arrival is committed using
    /// the contention known at `now` (later arrivals slow *this* transfer's
    /// peers but do not retroactively delay its committed instant — use
    /// [`PcieLink::begin_transfer`] for re-planned arrivals).
    pub fn transfer(&mut self, now: SimTime, size: ByteSize, direction: LinkDirection) -> SimTime {
        let serialisation = SimDuration::transmission(size, self.effective_bandwidth());
        let crossing_latency = self.config.crossing_latency;
        let fair_share = self.config.link_model.is_fair_share();
        // During an outage new admissions wait for the link to come back (the
        // fair-share engines carry their own outage state).
        let start = now.max(self.down_until);
        self.bytes += size.as_bytes();
        let state = self.direction_mut(direction);
        state.crossings += 1;
        if fair_share {
            let (_, eta) = state.shared.begin(now, size);
            eta + crossing_latency
        } else {
            let (_, finish) = state.server.serve(start, serialisation);
            finish + crossing_latency
        }
    }

    /// Admits `size` bytes in `direction` at `now` as a *re-plannable*
    /// transfer, returning a token and a provisional arrival instant.
    ///
    /// Schedule a completion event at the returned instant and call
    /// [`PcieLink::poll_transfer`] when it fires: under FIFO-fixed the poll
    /// always confirms completion (the provisional instant is exact, so the
    /// event sequence is byte-identical to [`PcieLink::transfer`]); under
    /// fair sharing, activities that arrived in the meantime may have pushed
    /// the arrival out, in which case the poll hands back the later instant
    /// to reschedule at. ETAs only move *out* on new arrivals, so each
    /// reschedule corresponds to at least one arrival and the loop
    /// terminates.
    pub fn begin_transfer(
        &mut self,
        now: SimTime,
        size: ByteSize,
        direction: LinkDirection,
    ) -> (TransferToken, SimTime) {
        if !self.config.link_model.is_fair_share() {
            let arrival = self.transfer(now, size, direction);
            return (
                TransferToken {
                    direction,
                    activity: None,
                },
                arrival,
            );
        }
        let crossing_latency = self.config.crossing_latency;
        self.bytes += size.as_bytes();
        let state = self.direction_mut(direction);
        state.crossings += 1;
        let (activity, eta) = state.shared.begin(now, size);
        (
            TransferToken {
                direction,
                activity: Some(activity),
            },
            eta + crossing_latency,
        )
    }

    /// Reports whether the transfer behind `token` has delivered by `now`
    /// (its completion event just fired), or the later instant to reschedule
    /// its completion event at. See [`PcieLink::begin_transfer`].
    pub fn poll_transfer(&mut self, token: TransferToken, now: SimTime) -> TransferStatus {
        let activity = match token.activity {
            // FIFO-fixed transfers commit their arrival at begin time.
            None => return TransferStatus::Complete,
            Some(activity) => activity,
        };
        let crossing_latency = self.config.crossing_latency;
        let state = self.direction_mut(token.direction);
        // The crossing latency is a pure pipeline delay after serialisation:
        // a delivery at `now` means serialisation finished a crossing earlier.
        match state.shared.poll(now - crossing_latency, activity) {
            SharedTransfer::Complete => TransferStatus::Complete,
            SharedTransfer::InFlight(eta) => TransferStatus::InFlight(eta + crossing_latency),
        }
    }

    /// Number of fair-share activities currently in flight on `direction`
    /// (always zero under [`LinkModel::FifoFixed`]).
    pub fn in_flight(&self, direction: LinkDirection) -> usize {
        match direction {
            LinkDirection::NicToCpu => self.nic_to_cpu.shared.in_flight(),
            LinkDirection::CpuToNic => self.cpu_to_nic.shared.in_flight(),
        }
    }

    /// Counters of the fair-share engine on `direction` (all zero under
    /// [`LinkModel::FifoFixed`]).
    pub fn fair_share_stats(&self, direction: LinkDirection) -> FairShareStats {
        match direction {
            LinkDirection::NicToCpu => self.nic_to_cpu.shared.stats(),
            LinkDirection::CpuToNic => self.cpu_to_nic.shared.stats(),
        }
    }

    /// Models an uncongested per-packet crossing starting at `now`: the data
    /// is available on the far side after the fixed crossing latency plus its
    /// serialisation time, without queueing behind other transfers.
    ///
    /// Per-packet crossings use this path: at the traffic rates a 2×10 GbE
    /// SmartNIC can offer, a PCIe gen3 link is never bandwidth-bound, and the
    /// packet-by-packet simulation visits the link at non-monotonic times, so
    /// a shared FIFO would manufacture queueing that the real link does not
    /// have. Bulk transfers that genuinely contend (migration state) use
    /// [`PcieLink::transfer`] instead.
    ///
    /// Delivery is FIFO per direction: DMA descriptor rings complete in
    /// order, so when a small packet's serialisation would let it finish
    /// before an earlier larger one, its delivery is held to the earlier
    /// packet's instant (otherwise a migration-blackout burst draining
    /// back-to-back through a crossing would reorder packets within a flow).
    pub fn propagate(&mut self, now: SimTime, size: ByteSize, direction: LinkDirection) -> SimTime {
        self.propagate_burst(now, 1, size, direction)
    }

    /// Models a coalesced DMA burst: `packets` packets totalling `total`
    /// bytes cross together behind a *single* doorbell. The burst pays the
    /// fixed per-burst setup cost ([`PcieLinkConfig::crossing_latency`]: DMA
    /// setup, doorbell ring, descriptor processing) exactly once plus the
    /// per-byte serialisation of the whole payload, which is precisely the
    /// amortisation that makes batching win for small packets — N small
    /// packets cost one setup instead of N.
    ///
    /// Every packet of the burst is delivered at the same instant (the
    /// returned arrival time), in burst order, and the per-direction FIFO
    /// clamp of [`PcieLink::propagate`] applies to the burst as a unit, so
    /// bursts never overtake earlier crossings on the same direction.
    ///
    /// A single-packet burst is exactly [`PcieLink::propagate`].
    ///
    /// An empty burst (`packets == 0`) is a no-op: nothing crosses, so no
    /// doorbell rings, no setup latency is paid and the FIFO delivery
    /// watermark does not move; the call returns `now`.
    ///
    /// Under the fair-sharing [`LinkModel`] the burst's payload joins the
    /// direction's activity set, so an in-flight migration round genuinely
    /// slows the datapath down (and vice versa). Its arrival is committed
    /// with the contention known at `now`; the FIFO delivery clamp still
    /// applies so bursts never overtake earlier crossings.
    pub fn propagate_burst(
        &mut self,
        now: SimTime,
        packets: u64,
        total: ByteSize,
        direction: LinkDirection,
    ) -> SimTime {
        if packets == 0 {
            return now;
        }
        let serialisation = SimDuration::transmission(total, self.effective_bandwidth());
        let crossing_latency = self.config.crossing_latency;
        let fair_share = self.config.link_model.is_fair_share();
        // Bursts admitted during an outage cross once the link is back.
        let start = now.max(self.down_until);
        self.bytes += total.as_bytes();
        self.dma_bursts += 1;
        let state = self.direction_mut(direction);
        state.crossings += packets;
        let serialised = if fair_share {
            let (_, eta) = state.shared.begin(now, total);
            eta
        } else {
            start + serialisation
        };
        let arrival = (serialised + crossing_latency).max(state.last_delivery);
        state.last_delivery = arrival;
        arrival
    }

    /// The pure one-way latency a crossing adds on top of serialisation and
    /// queueing (used by the analytical latency model in `pam-core`).
    pub fn crossing_latency(&self) -> SimDuration {
        self.config.crossing_latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PcieLinkStats {
        PcieLinkStats {
            nic_to_cpu: self.nic_to_cpu.crossings,
            cpu_to_nic: self.cpu_to_nic.crossings,
            bytes: self.bytes,
            dma_bursts: self.dma_bursts,
        }
    }

    /// Clears the statistics counters only.
    ///
    /// Transport state — the rate servers, the per-direction FIFO
    /// `last_delivery` watermarks and any fair-share activities — is
    /// deliberately **preserved**: a warm-up phase that resets counters
    /// mid-run must keep queueing continuity. This means a run *resumed at
    /// an earlier `now`* after `reset_stats` still observes deliveries
    /// clamped to the stale future watermark; such resumed runs must call
    /// [`PcieLink::reset_transport`] as well.
    pub fn reset_stats(&mut self) {
        self.nic_to_cpu.crossings = 0;
        self.cpu_to_nic.crossings = 0;
        self.bytes = 0;
        self.dma_bursts = 0;
    }

    /// Returns the link's transport state to idle: empties the rate servers,
    /// rewinds the FIFO delivery watermarks to [`SimTime::ZERO`] and drops
    /// any in-flight fair-share activities. Statistics counters are left
    /// untouched (pair with [`PcieLink::reset_stats`] for a full reset).
    ///
    /// Resumed runs that restart the clock at an earlier instant use this so
    /// deliveries are not clamped to a watermark from the abandoned future.
    pub fn reset_transport(&mut self) {
        let nic_crossings = self.nic_to_cpu.crossings;
        let cpu_crossings = self.cpu_to_nic.crossings;
        self.nic_to_cpu = DirectionState::new(&self.config);
        self.cpu_to_nic = DirectionState::new(&self.config);
        self.nic_to_cpu.crossings = nic_crossings;
        self.cpu_to_nic.crossings = cpu_crossings;
        // Fault state is transport state: a fully reset link is up at
        // nominal capacity (the rebuilt fair-share engines already are).
        self.down_until = SimTime::ZERO;
        self.capacity_factor = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transfer_adds_latency_and_serialisation() {
        let config = PcieLinkConfig {
            crossing_latency: SimDuration::from_micros(20),
            bandwidth: Gbps::new(8.0),
            link_model: LinkModel::FifoFixed,
        };
        let mut link = PcieLink::new(config);
        // 1000 bytes at 8 Gbps = 1 us serialisation + 20 us latency.
        let arrival = link.transfer(
            SimTime::ZERO,
            ByteSize::bytes(1000),
            LinkDirection::NicToCpu,
        );
        assert_eq!(arrival, SimTime::from_micros(21));
    }

    #[test]
    fn directions_have_independent_queues() {
        let config = PcieLinkConfig {
            crossing_latency: SimDuration::from_micros(10),
            bandwidth: Gbps::new(0.008), // deliberately slow: 1000 B = 1 ms
            link_model: LinkModel::FifoFixed,
        };
        let mut link = PcieLink::new(config);
        let a = link.transfer(
            SimTime::ZERO,
            ByteSize::bytes(1000),
            LinkDirection::NicToCpu,
        );
        // Opposite direction does not queue behind the first transfer.
        let b = link.transfer(
            SimTime::ZERO,
            ByteSize::bytes(1000),
            LinkDirection::CpuToNic,
        );
        assert_eq!(a, b);
        // Same direction queues.
        let c = link.transfer(
            SimTime::ZERO,
            ByteSize::bytes(1000),
            LinkDirection::NicToCpu,
        );
        assert_eq!(c, a + SimDuration::from_millis(1));
    }

    #[test]
    fn stats_count_crossings_and_bytes() {
        let mut link = PcieLink::new(PcieLinkConfig::default());
        link.transfer(SimTime::ZERO, ByteSize::bytes(64), LinkDirection::NicToCpu);
        link.transfer(
            SimTime::ZERO,
            ByteSize::bytes(1500),
            LinkDirection::CpuToNic,
        );
        link.transfer(SimTime::ZERO, ByteSize::bytes(128), LinkDirection::CpuToNic);
        let stats = link.stats();
        assert_eq!(stats.nic_to_cpu, 1);
        assert_eq!(stats.cpu_to_nic, 2);
        assert_eq!(stats.total_crossings(), 3);
        assert_eq!(stats.bytes, 64 + 1500 + 128);
        link.reset_stats();
        assert_eq!(link.stats().total_crossings(), 0);
    }

    #[test]
    fn default_config_matches_documented_values() {
        let link = PcieLink::new(PcieLinkConfig::default());
        assert_eq!(link.crossing_latency(), SimDuration::from_micros(22));
        assert_eq!(link.config().bandwidth, Gbps::new(63.0));
        let swept = PcieLinkConfig::with_crossing_latency(SimDuration::from_micros(5));
        assert_eq!(swept.crossing_latency, SimDuration::from_micros(5));
        assert_eq!(swept.bandwidth, Gbps::new(63.0));
        // The inter-server flavour is slower and farther than PCIe.
        let lan = PcieLinkConfig::inter_server();
        assert!(lan.bandwidth < swept.bandwidth);
        assert!(lan.crossing_latency > SimDuration::from_micros(22));
    }

    #[test]
    fn link_config_round_trips_through_serde() {
        let config = PcieLinkConfig::inter_server();
        let json = pam_types_serde_round_trip(&config);
        assert_eq!(json, config);
    }

    /// Serialize → deserialize helper (the vendored serde has no generic
    /// `to_string` round-trip assert).
    fn pam_types_serde_round_trip(config: &PcieLinkConfig) -> PcieLinkConfig {
        let value = serde::Serialize::to_value(config);
        serde::Deserialize::from_value(&value).unwrap()
    }

    #[test]
    fn per_packet_delivery_is_fifo_per_direction() {
        let mut link = PcieLink::new(PcieLinkConfig::default());
        // A 1500 B packet enters, then a 64 B packet 10 ns later: without the
        // FIFO clamp the small packet's shorter serialisation would let it
        // overtake. It must instead deliver at the same instant (ring order).
        let big = link.propagate(
            SimTime::ZERO,
            ByteSize::bytes(1500),
            LinkDirection::NicToCpu,
        );
        let small = link.propagate(
            SimTime::from_nanos(10),
            ByteSize::bytes(64),
            LinkDirection::NicToCpu,
        );
        assert!(
            small >= big,
            "FIFO delivery: {small} must not precede {big}"
        );
        // The opposite direction is independent.
        let other = link.propagate(
            SimTime::from_nanos(10),
            ByteSize::bytes(64),
            LinkDirection::CpuToNic,
        );
        assert!(other < big);
    }

    #[test]
    fn single_packet_burst_equals_propagate() {
        let mut a = PcieLink::new(PcieLinkConfig::default());
        let mut b = PcieLink::new(PcieLinkConfig::default());
        for i in 0..10u64 {
            let now = SimTime::from_nanos(i * 137);
            let size = ByteSize::bytes(64 + i * 100);
            assert_eq!(
                a.propagate(now, size, LinkDirection::NicToCpu),
                b.propagate_burst(now, 1, size, LinkDirection::NicToCpu),
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn coalesced_burst_pays_one_setup_for_many_packets() {
        let config = PcieLinkConfig {
            crossing_latency: SimDuration::from_micros(20),
            bandwidth: Gbps::new(8.0),
            link_model: LinkModel::FifoFixed,
        };
        // 8 packets of 125 B each: 1000 B at 8 Gbps = 1 us serialisation.
        let mut burst = PcieLink::new(config);
        let together = burst.propagate_burst(
            SimTime::ZERO,
            8,
            ByteSize::bytes(1000),
            LinkDirection::CpuToNic,
        );
        assert_eq!(together, SimTime::from_micros(21), "one setup, 1 us bytes");
        let stats = burst.stats();
        assert_eq!(
            stats.cpu_to_nic, 8,
            "a burst still counts per-packet crossings"
        );
        assert_eq!(stats.dma_bursts, 1, "but only one doorbell");
        assert_eq!(stats.bytes, 1000);

        // The per-packet path rings 8 doorbells for the same payload.
        let mut single = PcieLink::new(config);
        for _ in 0..8 {
            single.propagate(SimTime::ZERO, ByteSize::bytes(125), LinkDirection::CpuToNic);
        }
        assert_eq!(single.stats().dma_bursts, 8);
        assert_eq!(single.stats().cpu_to_nic, 8);
    }

    #[test]
    fn bursts_respect_the_per_direction_fifo_clamp() {
        let mut link = PcieLink::new(PcieLinkConfig::default());
        let first = link.propagate_burst(
            SimTime::ZERO,
            4,
            ByteSize::bytes(6000),
            LinkDirection::NicToCpu,
        );
        // A later, smaller burst on the same direction must not overtake.
        let second = link.propagate_burst(
            SimTime::from_nanos(5),
            2,
            ByteSize::bytes(128),
            LinkDirection::NicToCpu,
        );
        assert!(second >= first, "burst FIFO: {second} before {first}");
    }

    #[test]
    fn empty_burst_is_a_no_op() {
        // Regression: an empty burst used to ring a doorbell, pay the full
        // setup latency and advance the FIFO watermark for nothing.
        for model in [LinkModel::FifoFixed, LinkModel::fair_share()] {
            let mut link = PcieLink::new(PcieLinkConfig::default().with_link_model(model));
            let now = SimTime::from_micros(7);
            let arrival = link.propagate_burst(now, 0, ByteSize::ZERO, LinkDirection::NicToCpu);
            assert_eq!(arrival, now, "an empty burst delivers nothing, instantly");
            assert_eq!(link.stats(), PcieLinkStats::default());
            assert_eq!(link.in_flight(LinkDirection::NicToCpu), 0);
            // The watermark did not move: a real packet right after the empty
            // burst is not clamped to the phantom delivery.
            let real = link.propagate(now, ByteSize::bytes(64), LinkDirection::NicToCpu);
            let mut fresh = PcieLink::new(PcieLinkConfig::default().with_link_model(model));
            assert_eq!(
                real,
                fresh.propagate(now, ByteSize::bytes(64), LinkDirection::NicToCpu),
                "watermark moved by an empty burst ({model:?})"
            );
        }
    }

    #[test]
    fn reset_stats_preserves_the_fifo_watermark_for_warmups() {
        // Documented behaviour: reset_stats clears counters only, so the
        // delivery watermark survives a mid-run warm-up reset.
        let mut link = PcieLink::new(PcieLinkConfig::default());
        let first = link.propagate(
            SimTime::from_millis(10),
            ByteSize::bytes(1500),
            LinkDirection::NicToCpu,
        );
        link.reset_stats();
        assert_eq!(link.stats(), PcieLinkStats::default());
        let resumed = link.propagate(SimTime::ZERO, ByteSize::bytes(64), LinkDirection::NicToCpu);
        assert!(
            resumed >= first,
            "after reset_stats alone the stale watermark still clamps: {resumed} < {first}"
        );
    }

    #[test]
    fn reset_transport_unclamps_a_run_resumed_at_an_earlier_now() {
        for model in [LinkModel::FifoFixed, LinkModel::fair_share()] {
            let config = PcieLinkConfig::default().with_link_model(model);
            let mut link = PcieLink::new(config);
            // Drive the watermark, the rate server and (under fair sharing)
            // the activity set far into the future.
            link.propagate(
                SimTime::from_millis(10),
                ByteSize::bytes(1500),
                LinkDirection::NicToCpu,
            );
            link.transfer(
                SimTime::from_millis(10),
                ByteSize::mib(1),
                LinkDirection::NicToCpu,
            );
            let stats_before = link.stats();
            link.reset_transport();
            assert_eq!(link.stats(), stats_before, "transport reset keeps stats");
            assert_eq!(link.in_flight(LinkDirection::NicToCpu), 0);
            // A resumed run restarting at t=0 behaves like a fresh link.
            let mut fresh = PcieLink::new(config);
            assert_eq!(
                link.propagate(SimTime::ZERO, ByteSize::bytes(64), LinkDirection::NicToCpu),
                fresh.propagate(SimTime::ZERO, ByteSize::bytes(64), LinkDirection::NicToCpu),
                "resumed run clamped to a stale future watermark ({model:?})"
            );
            assert_eq!(
                link.transfer(
                    SimTime::ZERO,
                    ByteSize::bytes(4096),
                    LinkDirection::NicToCpu
                ),
                fresh.transfer(
                    SimTime::ZERO,
                    ByteSize::bytes(4096),
                    LinkDirection::NicToCpu
                ),
            );
        }
    }

    #[test]
    fn fair_share_burst_contends_with_an_in_flight_transfer() {
        // Under FIFO-fixed a datapath burst is oblivious to a migration
        // transfer in flight on the same direction; under fair sharing the
        // two split the bandwidth and the burst lands later.
        let fifo_cfg = PcieLinkConfig::default();
        let fair_cfg = fifo_cfg.with_link_model(LinkModel::fair_share());
        let mut fifo = PcieLink::new(fifo_cfg);
        let mut fair = PcieLink::new(fair_cfg);
        for link in [&mut fifo, &mut fair] {
            link.transfer(SimTime::ZERO, ByteSize::mib(8), LinkDirection::NicToCpu);
        }
        let in_flight = SimTime::from_micros(100);
        let burst_fifo = fifo.propagate_burst(
            in_flight,
            8,
            ByteSize::bytes(12_000),
            LinkDirection::NicToCpu,
        );
        let burst_fair = fair.propagate_burst(
            in_flight,
            8,
            ByteSize::bytes(12_000),
            LinkDirection::NicToCpu,
        );
        assert!(
            burst_fair > burst_fifo,
            "the burst must see the migration transfer: {burst_fair} vs {burst_fifo}"
        );
    }

    #[test]
    fn re_planned_transfer_slows_down_when_a_burst_arrives() {
        let mut link =
            PcieLink::new(PcieLinkConfig::default().with_link_model(LinkModel::fair_share()));
        let (token, provisional) =
            link.begin_transfer(SimTime::ZERO, ByteSize::mib(1), LinkDirection::NicToCpu);
        // A datapath burst joins mid-transfer: the provisional ETA is stale.
        link.propagate_burst(
            SimTime::from_micros(20),
            16,
            ByteSize::bytes(24_000),
            LinkDirection::NicToCpu,
        );
        let rescheduled = match link.poll_transfer(token, provisional) {
            TransferStatus::InFlight(eta) => eta,
            TransferStatus::Complete => panic!("transfer cannot be done: a burst stole bandwidth"),
        };
        assert!(rescheduled > provisional);
        assert_eq!(
            link.poll_transfer(token, rescheduled),
            TransferStatus::Complete,
            "no further arrivals, so the re-planned ETA is exact"
        );
    }

    #[test]
    fn fifo_begin_transfer_commits_exactly_like_transfer() {
        let mut a = PcieLink::new(PcieLinkConfig::default());
        let mut b = PcieLink::new(PcieLinkConfig::default());
        for i in 0..5u64 {
            let now = SimTime::from_micros(i * 3);
            let size = ByteSize::bytes(10_000 + i * 777);
            let expected = a.transfer(now, size, LinkDirection::CpuToNic);
            let (token, arrival) = b.begin_transfer(now, size, LinkDirection::CpuToNic);
            assert_eq!(arrival, expected);
            assert_eq!(b.poll_transfer(token, arrival), TransferStatus::Complete);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn link_model_serde_defaults_to_fifo_for_old_configs() {
        // Configs serialised before the knob existed have no `link_model`
        // key; they must deserialise to the FIFO-fixed baseline.
        let mut map = Map::new();
        map.insert(
            "crossing_latency".to_owned(),
            SimDuration::from_micros(22).to_value(),
        );
        map.insert("bandwidth".to_owned(), Gbps::new(63.0).to_value());
        let config = PcieLinkConfig::from_value(&Value::Object(map)).unwrap();
        assert_eq!(config, PcieLinkConfig::default());
        assert_eq!(config.link_model, LinkModel::FifoFixed);

        // And the new field round-trips in both variants.
        for model in [
            LinkModel::fair_share(),
            LinkModel::FairShare(DegradationFn::LinearPenalty { penalty: 0.07 }),
        ] {
            let config = PcieLinkConfig::default().with_link_model(model);
            assert_eq!(pam_types_serde_round_trip(&config), config);
        }
    }

    proptest::proptest! {
        /// Satellite differential: with at most one activity in flight at a
        /// time, the fair-share link is byte-identical to FIFO-fixed across
        /// transfers, packets and bursts.
        #[test]
        fn uncontended_fair_share_is_byte_identical_to_fifo(
            ops in proptest::collection::vec((0u8..3, 64u64..100_000, 1u64..32), 1..30),
        ) {
            let fifo_cfg = PcieLinkConfig::default();
            let fair_cfg = fifo_cfg.with_link_model(LinkModel::fair_share());
            let mut fifo = PcieLink::new(fifo_cfg);
            let mut fair = PcieLink::new(fair_cfg);
            // Space the operations out so nothing ever overlaps: 100 KB at
            // 63 Gbps serialises in ~12.7 us, far below the 1 ms gap.
            let mut now = SimTime::ZERO;
            for (i, &(kind, bytes, packets)) in ops.iter().enumerate() {
                let dir = if i % 2 == 0 { LinkDirection::NicToCpu } else { LinkDirection::CpuToNic };
                let size = ByteSize::bytes(bytes);
                let arrival = match kind {
                    0 => {
                        let (a, b) = (
                            fifo.transfer(now, size, dir),
                            fair.transfer(now, size, dir),
                        );
                        prop_assert_eq!(a, b, "transfer diverged at op {}", i);
                        a
                    }
                    1 => {
                        let (a, b) = (
                            fifo.propagate(now, size, dir),
                            fair.propagate(now, size, dir),
                        );
                        prop_assert_eq!(a, b, "propagate diverged at op {}", i);
                        a
                    }
                    _ => {
                        let (a, b) = (
                            fifo.propagate_burst(now, packets, size, dir),
                            fair.propagate_burst(now, packets, size, dir),
                        );
                        prop_assert_eq!(a, b, "burst diverged at op {}", i);
                        a
                    }
                };
                now = arrival + SimDuration::from_millis(1);
            }
            prop_assert_eq!(fifo.stats(), fair.stats());
        }
    }

    #[test]
    fn flap_delays_new_admissions_until_the_outage_ends() {
        for model in [LinkModel::FifoFixed, LinkModel::fair_share()] {
            let config = PcieLinkConfig {
                crossing_latency: SimDuration::from_micros(20),
                bandwidth: Gbps::new(8.0),
                link_model: model,
            };
            let mut link = PcieLink::new(config);
            link.flap(SimTime::ZERO, SimDuration::from_micros(50));
            assert_eq!(link.down_until(), SimTime::from_micros(50));
            // 1000 B at 8 Gbps = 1 us serialisation, starting at outage end.
            let arrival = link.transfer(
                SimTime::from_micros(10),
                ByteSize::bytes(1000),
                LinkDirection::NicToCpu,
            );
            assert_eq!(
                arrival,
                SimTime::from_micros(71),
                "admission during a flap must wait for recovery ({model:?})"
            );
            // Overlapping flaps extend, never shorten, the outage.
            link.flap(SimTime::from_micros(20), SimDuration::from_micros(10));
            assert_eq!(link.down_until(), SimTime::from_micros(50));
        }
    }

    #[test]
    fn flap_stalls_an_in_flight_fair_share_transfer() {
        let mut link =
            PcieLink::new(PcieLinkConfig::default().with_link_model(LinkModel::fair_share()));
        let (token, provisional) =
            link.begin_transfer(SimTime::ZERO, ByteSize::mib(1), LinkDirection::NicToCpu);
        // The link goes dark mid-transfer for 1 ms: the committed ETA is
        // stale by at least the outage remainder.
        let mid = SimTime::from_micros(20);
        link.flap(mid, SimDuration::from_millis(1));
        let rescheduled = match link.poll_transfer(token, provisional) {
            TransferStatus::InFlight(eta) => eta,
            TransferStatus::Complete => panic!("the flap must stall the transfer"),
        };
        assert!(rescheduled >= mid + SimDuration::from_millis(1));
        link.recover_transport(link.down_until());
        assert_eq!(
            link.poll_transfer(token, rescheduled),
            TransferStatus::Complete,
            "the stalled transfer resumes from its remainder after recovery"
        );
    }

    #[test]
    fn recovered_link_does_not_inherit_the_pre_flap_fifo_watermark() {
        // Satellite regression: a link coming back from a flap must not clamp
        // post-recovery deliveries to a FIFO watermark or rate-server backlog
        // accumulated before (or during) the flap — no phantom serialization
        // delay after recovery.
        for model in [LinkModel::FifoFixed, LinkModel::fair_share()] {
            let config = PcieLinkConfig::default().with_link_model(model);
            let mut link = PcieLink::new(config);
            // Drive the watermark (and, under FIFO, the rate server) deep
            // into the future, then flap. Under fair sharing a bulk transfer
            // would *survive* recovery by design (see
            // flap_stalls_an_in_flight_fair_share_transfer) and legitimately
            // contend, so only the FIFO variant queues one.
            if model == LinkModel::FifoFixed {
                link.transfer(SimTime::ZERO, ByteSize::mib(8), LinkDirection::NicToCpu);
            }
            link.propagate(
                SimTime::from_micros(5),
                ByteSize::bytes(9000),
                LinkDirection::NicToCpu,
            );
            link.flap(SimTime::from_micros(10), SimDuration::from_millis(5));
            let back = link.down_until();
            link.recover_transport(back);
            let stats_before = link.stats();
            // After recovery the link behaves like a fresh link at `back`.
            let mut fresh = PcieLink::new(config);
            assert_eq!(
                link.propagate(back, ByteSize::bytes(64), LinkDirection::NicToCpu),
                fresh.propagate(back, ByteSize::bytes(64), LinkDirection::NicToCpu),
                "recovered link carried a phantom FIFO watermark ({model:?})"
            );
            assert_eq!(
                link.transfer(back, ByteSize::bytes(4096), LinkDirection::NicToCpu),
                fresh.transfer(back, ByteSize::bytes(4096), LinkDirection::NicToCpu),
                "recovered link carried a phantom rate-server backlog ({model:?})"
            );
            assert_eq!(
                link.stats().total_crossings(),
                stats_before.total_crossings() + 2,
                "recovery must not touch statistics"
            );
        }
    }

    #[test]
    fn capacity_swing_stretches_new_serialisations_and_restores() {
        let config = PcieLinkConfig {
            crossing_latency: SimDuration::from_micros(20),
            bandwidth: Gbps::new(8.0),
            link_model: LinkModel::FifoFixed,
        };
        let mut link = PcieLink::new(config);
        // Nominal: 1000 B at 8 Gbps = 1 us.
        assert_eq!(
            link.transfer(
                SimTime::ZERO,
                ByteSize::bytes(1000),
                LinkDirection::NicToCpu
            ),
            SimTime::from_micros(21)
        );
        // Halved capacity: the same payload takes 2 us (queued behind the
        // first transfer's 1 us).
        link.set_capacity_factor(SimTime::from_micros(1), 0.5);
        assert!((link.capacity_factor() - 0.5).abs() < 1e-12);
        assert_eq!(
            link.transfer(
                SimTime::from_micros(1),
                ByteSize::bytes(1000),
                LinkDirection::NicToCpu
            ),
            SimTime::from_micros(23)
        );
        // Restored: back to nominal for new admissions.
        link.set_capacity_factor(SimTime::from_micros(3), 1.0);
        assert_eq!(
            link.transfer(
                SimTime::from_micros(3),
                ByteSize::bytes(1000),
                LinkDirection::NicToCpu
            ),
            SimTime::from_micros(24)
        );
        // A non-positive factor clamps instead of dividing by zero.
        link.set_capacity_factor(SimTime::from_micros(4), -3.0);
        assert!(link.capacity_factor() > 0.0);
    }

    #[test]
    fn reset_transport_clears_fault_state() {
        let mut link = PcieLink::new(PcieLinkConfig::default());
        link.flap(SimTime::ZERO, SimDuration::from_millis(1));
        link.set_capacity_factor(SimTime::ZERO, 0.25);
        link.reset_transport();
        assert_eq!(link.down_until(), SimTime::ZERO);
        assert!((link.capacity_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn big_transfers_are_bandwidth_bound() {
        // Migration state transfers use the same link: 10 MiB at 63 Gbps
        // should take on the order of 1.3 ms (plus the fixed latency).
        let mut link = PcieLink::new(PcieLinkConfig::default());
        let arrival = link.transfer(SimTime::ZERO, ByteSize::mib(10), LinkDirection::NicToCpu);
        let total = arrival.duration_since(SimTime::ZERO);
        assert!(total > SimDuration::from_millis(1));
        assert!(total < SimDuration::from_millis(2));
    }
}
