//! The PCIe link between the SmartNIC and the host CPU.
//!
//! Every time consecutive hops of a service chain sit on different devices,
//! the packet is DMA'd across PCIe. The poster's measurement attributes "tens
//! of microseconds" of added latency to the two extra crossings the naive
//! migration introduces; this model therefore charges each crossing a fixed
//! latency (DMA setup, doorbell, ring processing, batching amortisation) plus
//! a serialisation time on the link's usable bandwidth, and keeps per-
//! direction counters so experiments can report exactly how many crossings
//! each migration strategy caused.

use pam_types::{ByteSize, Gbps, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::server::RateServer;

/// Direction of a PCIe crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDirection {
    /// From the SmartNIC to the host CPU.
    NicToCpu,
    /// From the host CPU to the SmartNIC.
    CpuToNic,
}

impl LinkDirection {
    /// Both directions.
    pub const ALL: [LinkDirection; 2] = [LinkDirection::NicToCpu, LinkDirection::CpuToNic];
}

/// Configuration of the PCIe link model. The same rate-server + fixed
/// latency shape also models other point-to-point transports (the fleet
/// layer instantiates one as its inter-server state-handoff link).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieLinkConfig {
    /// Fixed one-way crossing latency (DMA + descriptor ring + batching).
    pub crossing_latency: SimDuration,
    /// Usable bandwidth per direction.
    pub bandwidth: Gbps,
}

impl Default for PcieLinkConfig {
    fn default() -> Self {
        // PCIe gen3 x8 (the Agilio CX form factor) has ~63 Gbit/s usable per
        // direction; the 22 us default crossing latency is calibrated so that
        // the two extra crossings of the naive migration add the "tens of
        // microseconds" the poster reports.
        PcieLinkConfig {
            crossing_latency: SimDuration::from_micros(22),
            bandwidth: Gbps::new(63.0),
        }
    }
}

impl PcieLinkConfig {
    /// A config with a specific crossing latency and the default bandwidth.
    /// Used by the PCIe-latency ablation sweep.
    pub fn with_crossing_latency(latency: SimDuration) -> Self {
        PcieLinkConfig {
            crossing_latency: latency,
            ..Default::default()
        }
    }

    /// A LAN-grade inter-server link (25 GbE, ~40 µs one-way): what the
    /// fleet layer ships cross-server state handoffs over.
    pub fn inter_server() -> Self {
        PcieLinkConfig {
            crossing_latency: SimDuration::from_micros(40),
            bandwidth: Gbps::new(25.0),
        }
    }
}

/// Per-direction statistics of the PCIe link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcieLinkStats {
    /// Crossings from the NIC to the CPU.
    pub nic_to_cpu: u64,
    /// Crossings from the CPU to the NIC.
    pub cpu_to_nic: u64,
    /// Total bytes moved in either direction.
    pub bytes: u64,
    /// DMA bursts (doorbells) issued for per-packet crossings: a coalesced
    /// burst of N packets counts N crossings but a single burst, so the
    /// crossings-to-bursts ratio is the link's effective batching factor.
    pub dma_bursts: u64,
}

impl PcieLinkStats {
    /// Total crossings in both directions.
    pub fn total_crossings(&self) -> u64 {
        self.nic_to_cpu + self.cpu_to_nic
    }
}

/// Per-direction link state: the rate server bulk transfers queue on, the
/// FIFO delivery watermark of per-packet crossings, and the crossing count.
/// Grouping these per direction means every link operation resolves its
/// direction exactly once instead of re-matching for each field it touches.
#[derive(Debug, Clone, Default)]
struct DirectionState {
    server: RateServer,
    /// Running last-delivery watermark: DMA descriptor rings complete in
    /// order, so a later (smaller) packet must not overtake an earlier
    /// (larger) one on the same direction. Updated in O(1) per burst — the
    /// clamp never re-scans earlier deliveries.
    last_delivery: SimTime,
    crossings: u64,
}

/// The PCIe link: an independent rate server per direction plus a fixed
/// per-crossing latency.
#[derive(Debug, Clone)]
pub struct PcieLink {
    config: PcieLinkConfig,
    nic_to_cpu: DirectionState,
    cpu_to_nic: DirectionState,
    bytes: u64,
    dma_bursts: u64,
}

impl PcieLink {
    /// Creates a link from its configuration.
    pub fn new(config: PcieLinkConfig) -> Self {
        PcieLink {
            config,
            nic_to_cpu: DirectionState::default(),
            cpu_to_nic: DirectionState::default(),
            bytes: 0,
            dma_bursts: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PcieLinkConfig {
        &self.config
    }

    /// The mutable per-direction state (the single direction resolution of
    /// every link operation).
    fn direction_mut(&mut self, direction: LinkDirection) -> &mut DirectionState {
        match direction {
            LinkDirection::NicToCpu => &mut self.nic_to_cpu,
            LinkDirection::CpuToNic => &mut self.cpu_to_nic,
        }
    }

    /// Transfers `size` bytes in `direction` starting (at the earliest) at
    /// `now`; returns the instant the data is available on the far side.
    pub fn transfer(&mut self, now: SimTime, size: ByteSize, direction: LinkDirection) -> SimTime {
        let serialisation = SimDuration::transmission(size, self.config.bandwidth);
        let crossing_latency = self.config.crossing_latency;
        let state = self.direction_mut(direction);
        let (_, finish) = state.server.serve(now, serialisation);
        state.crossings += 1;
        self.bytes += size.as_bytes();
        finish + crossing_latency
    }

    /// Models an uncongested per-packet crossing starting at `now`: the data
    /// is available on the far side after the fixed crossing latency plus its
    /// serialisation time, without queueing behind other transfers.
    ///
    /// Per-packet crossings use this path: at the traffic rates a 2×10 GbE
    /// SmartNIC can offer, a PCIe gen3 link is never bandwidth-bound, and the
    /// packet-by-packet simulation visits the link at non-monotonic times, so
    /// a shared FIFO would manufacture queueing that the real link does not
    /// have. Bulk transfers that genuinely contend (migration state) use
    /// [`PcieLink::transfer`] instead.
    ///
    /// Delivery is FIFO per direction: DMA descriptor rings complete in
    /// order, so when a small packet's serialisation would let it finish
    /// before an earlier larger one, its delivery is held to the earlier
    /// packet's instant (otherwise a migration-blackout burst draining
    /// back-to-back through a crossing would reorder packets within a flow).
    pub fn propagate(&mut self, now: SimTime, size: ByteSize, direction: LinkDirection) -> SimTime {
        self.propagate_burst(now, 1, size, direction)
    }

    /// Models a coalesced DMA burst: `packets` packets totalling `total`
    /// bytes cross together behind a *single* doorbell. The burst pays the
    /// fixed per-burst setup cost ([`PcieLinkConfig::crossing_latency`]: DMA
    /// setup, doorbell ring, descriptor processing) exactly once plus the
    /// per-byte serialisation of the whole payload, which is precisely the
    /// amortisation that makes batching win for small packets — N small
    /// packets cost one setup instead of N.
    ///
    /// Every packet of the burst is delivered at the same instant (the
    /// returned arrival time), in burst order, and the per-direction FIFO
    /// clamp of [`PcieLink::propagate`] applies to the burst as a unit, so
    /// bursts never overtake earlier crossings on the same direction.
    ///
    /// A single-packet burst is exactly [`PcieLink::propagate`].
    pub fn propagate_burst(
        &mut self,
        now: SimTime,
        packets: u64,
        total: ByteSize,
        direction: LinkDirection,
    ) -> SimTime {
        let serialisation = SimDuration::transmission(total, self.config.bandwidth);
        let crossing_latency = self.config.crossing_latency;
        self.bytes += total.as_bytes();
        self.dma_bursts += 1;
        let state = self.direction_mut(direction);
        state.crossings += packets;
        let arrival = (now + serialisation + crossing_latency).max(state.last_delivery);
        state.last_delivery = arrival;
        arrival
    }

    /// The pure one-way latency a crossing adds on top of serialisation and
    /// queueing (used by the analytical latency model in `pam-core`).
    pub fn crossing_latency(&self) -> SimDuration {
        self.config.crossing_latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PcieLinkStats {
        PcieLinkStats {
            nic_to_cpu: self.nic_to_cpu.crossings,
            cpu_to_nic: self.cpu_to_nic.crossings,
            bytes: self.bytes,
            dma_bursts: self.dma_bursts,
        }
    }

    /// Clears the statistics counters (queue state — the rate servers and
    /// the FIFO delivery watermarks — is preserved).
    pub fn reset_stats(&mut self) {
        self.nic_to_cpu.crossings = 0;
        self.cpu_to_nic.crossings = 0;
        self.bytes = 0;
        self.dma_bursts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_adds_latency_and_serialisation() {
        let config = PcieLinkConfig {
            crossing_latency: SimDuration::from_micros(20),
            bandwidth: Gbps::new(8.0),
        };
        let mut link = PcieLink::new(config);
        // 1000 bytes at 8 Gbps = 1 us serialisation + 20 us latency.
        let arrival = link.transfer(
            SimTime::ZERO,
            ByteSize::bytes(1000),
            LinkDirection::NicToCpu,
        );
        assert_eq!(arrival, SimTime::from_micros(21));
    }

    #[test]
    fn directions_have_independent_queues() {
        let config = PcieLinkConfig {
            crossing_latency: SimDuration::from_micros(10),
            bandwidth: Gbps::new(0.008), // deliberately slow: 1000 B = 1 ms
        };
        let mut link = PcieLink::new(config);
        let a = link.transfer(
            SimTime::ZERO,
            ByteSize::bytes(1000),
            LinkDirection::NicToCpu,
        );
        // Opposite direction does not queue behind the first transfer.
        let b = link.transfer(
            SimTime::ZERO,
            ByteSize::bytes(1000),
            LinkDirection::CpuToNic,
        );
        assert_eq!(a, b);
        // Same direction queues.
        let c = link.transfer(
            SimTime::ZERO,
            ByteSize::bytes(1000),
            LinkDirection::NicToCpu,
        );
        assert_eq!(c, a + SimDuration::from_millis(1));
    }

    #[test]
    fn stats_count_crossings_and_bytes() {
        let mut link = PcieLink::new(PcieLinkConfig::default());
        link.transfer(SimTime::ZERO, ByteSize::bytes(64), LinkDirection::NicToCpu);
        link.transfer(
            SimTime::ZERO,
            ByteSize::bytes(1500),
            LinkDirection::CpuToNic,
        );
        link.transfer(SimTime::ZERO, ByteSize::bytes(128), LinkDirection::CpuToNic);
        let stats = link.stats();
        assert_eq!(stats.nic_to_cpu, 1);
        assert_eq!(stats.cpu_to_nic, 2);
        assert_eq!(stats.total_crossings(), 3);
        assert_eq!(stats.bytes, 64 + 1500 + 128);
        link.reset_stats();
        assert_eq!(link.stats().total_crossings(), 0);
    }

    #[test]
    fn default_config_matches_documented_values() {
        let link = PcieLink::new(PcieLinkConfig::default());
        assert_eq!(link.crossing_latency(), SimDuration::from_micros(22));
        assert_eq!(link.config().bandwidth, Gbps::new(63.0));
        let swept = PcieLinkConfig::with_crossing_latency(SimDuration::from_micros(5));
        assert_eq!(swept.crossing_latency, SimDuration::from_micros(5));
        assert_eq!(swept.bandwidth, Gbps::new(63.0));
        // The inter-server flavour is slower and farther than PCIe.
        let lan = PcieLinkConfig::inter_server();
        assert!(lan.bandwidth < swept.bandwidth);
        assert!(lan.crossing_latency > SimDuration::from_micros(22));
    }

    #[test]
    fn link_config_round_trips_through_serde() {
        let config = PcieLinkConfig::inter_server();
        let json = pam_types_serde_round_trip(&config);
        assert_eq!(json, config);
    }

    /// Serialize → deserialize helper (the vendored serde has no generic
    /// `to_string` round-trip assert).
    fn pam_types_serde_round_trip(config: &PcieLinkConfig) -> PcieLinkConfig {
        let value = serde::Serialize::to_value(config);
        serde::Deserialize::from_value(&value).unwrap()
    }

    #[test]
    fn per_packet_delivery_is_fifo_per_direction() {
        let mut link = PcieLink::new(PcieLinkConfig::default());
        // A 1500 B packet enters, then a 64 B packet 10 ns later: without the
        // FIFO clamp the small packet's shorter serialisation would let it
        // overtake. It must instead deliver at the same instant (ring order).
        let big = link.propagate(
            SimTime::ZERO,
            ByteSize::bytes(1500),
            LinkDirection::NicToCpu,
        );
        let small = link.propagate(
            SimTime::from_nanos(10),
            ByteSize::bytes(64),
            LinkDirection::NicToCpu,
        );
        assert!(
            small >= big,
            "FIFO delivery: {small} must not precede {big}"
        );
        // The opposite direction is independent.
        let other = link.propagate(
            SimTime::from_nanos(10),
            ByteSize::bytes(64),
            LinkDirection::CpuToNic,
        );
        assert!(other < big);
    }

    #[test]
    fn single_packet_burst_equals_propagate() {
        let mut a = PcieLink::new(PcieLinkConfig::default());
        let mut b = PcieLink::new(PcieLinkConfig::default());
        for i in 0..10u64 {
            let now = SimTime::from_nanos(i * 137);
            let size = ByteSize::bytes(64 + i * 100);
            assert_eq!(
                a.propagate(now, size, LinkDirection::NicToCpu),
                b.propagate_burst(now, 1, size, LinkDirection::NicToCpu),
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn coalesced_burst_pays_one_setup_for_many_packets() {
        let config = PcieLinkConfig {
            crossing_latency: SimDuration::from_micros(20),
            bandwidth: Gbps::new(8.0),
        };
        // 8 packets of 125 B each: 1000 B at 8 Gbps = 1 us serialisation.
        let mut burst = PcieLink::new(config);
        let together = burst.propagate_burst(
            SimTime::ZERO,
            8,
            ByteSize::bytes(1000),
            LinkDirection::CpuToNic,
        );
        assert_eq!(together, SimTime::from_micros(21), "one setup, 1 us bytes");
        let stats = burst.stats();
        assert_eq!(
            stats.cpu_to_nic, 8,
            "a burst still counts per-packet crossings"
        );
        assert_eq!(stats.dma_bursts, 1, "but only one doorbell");
        assert_eq!(stats.bytes, 1000);

        // The per-packet path rings 8 doorbells for the same payload.
        let mut single = PcieLink::new(config);
        for _ in 0..8 {
            single.propagate(SimTime::ZERO, ByteSize::bytes(125), LinkDirection::CpuToNic);
        }
        assert_eq!(single.stats().dma_bursts, 8);
        assert_eq!(single.stats().cpu_to_nic, 8);
    }

    #[test]
    fn bursts_respect_the_per_direction_fifo_clamp() {
        let mut link = PcieLink::new(PcieLinkConfig::default());
        let first = link.propagate_burst(
            SimTime::ZERO,
            4,
            ByteSize::bytes(6000),
            LinkDirection::NicToCpu,
        );
        // A later, smaller burst on the same direction must not overtake.
        let second = link.propagate_burst(
            SimTime::from_nanos(5),
            2,
            ByteSize::bytes(128),
            LinkDirection::NicToCpu,
        );
        assert!(second >= first, "burst FIFO: {second} before {first}");
    }

    #[test]
    fn big_transfers_are_bandwidth_bound() {
        // Migration state transfers use the same link: 10 MiB at 63 Gbps
        // should take on the order of 1.3 ms (plus the fixed latency).
        let mut link = PcieLink::new(PcieLinkConfig::default());
        let arrival = link.transfer(SimTime::ZERO, ByteSize::mib(10), LinkDirection::NicToCpu);
        let total = arrival.duration_since(SimTime::ZERO);
        assert!(total > SimDuration::from_millis(1));
        assert!(total < SimDuration::from_millis(2));
    }
}
