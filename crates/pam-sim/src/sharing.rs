//! Fair-sharing link throughput model.
//!
//! The FIFO-fixed [`crate::PcieLink`] charges every transfer a fixed setup +
//! per-byte cost regardless of how many transfers are concurrently in flight,
//! so a pre-copy dirty round never actually slows the foreground datapath
//! down. This module models the contention the paper's testbed really has:
//! every *activity* on a link direction (a DMA burst, a migration round, a
//! scale-out handoff) drains concurrently, splitting the link bandwidth via a
//! pluggable [`DegradationFn`] — the fair `throughput / n` split by default,
//! in the style of dslab's `throughput_sharing` model.
//!
//! # Determinism
//!
//! The engine keeps all state in bit-space `f64` remainders plus an integer
//! nanosecond clock, and advances in *segments*: under any degradation
//! function every in-flight activity drains at the same per-activity rate, so
//! when the minimum-remainder activity completes, **all** activities have
//! lost exactly that minimum remainder. Draining therefore subtracts exact
//! bit counts — no accumulated floating-point time — and segment durations
//! are rounded with the very same expression as
//! [`SimDuration::transmission`], which makes a single uncontended activity
//! byte-identical to the FIFO-fixed model.
//!
//! Completion instants are *re-planned* rather than predicted: callers get a
//! provisional ETA from [`FairShareLink::begin`], schedule an event there,
//! and [`FairShareLink::poll`] at the event either confirms completion or
//! hands back a later ETA to reschedule at. New arrivals only push ETAs out
//! and completions only pull them in, so every reschedule corresponds to at
//! least one new arrival and the re-planning loop terminates.

use pam_types::{ByteSize, Gbps, SimDuration, SimTime};
use serde::value::Value;
use serde::{Deserialize, Error, Serialize};

/// How the aggregate capacity of a shared link degrades with the number of
/// concurrent activities.
///
/// `total_factor(n)` scales the *aggregate* bandwidth available when `n`
/// activities share the link; each activity then receives an equal
/// `bandwidth * total_factor(n) / n` slice. `total_factor(1)` is always
/// `1.0`, so a lone activity sees the full nominal link rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradationFn {
    /// Ideal fair sharing: the aggregate stays at the nominal bandwidth, so
    /// `n` activities each get `bandwidth / n` (dslab's default model).
    Fair,
    /// Fair sharing with a per-extra-activity aggregate penalty: `n`
    /// activities share `bandwidth / (1 + penalty * (n - 1))`, modelling
    /// per-transfer DMA engine overhead (doorbells, descriptor fetches).
    LinearPenalty {
        /// Fractional aggregate capacity lost per concurrent activity beyond
        /// the first; `0.05` means 5% per extra transfer.
        penalty: f64,
    },
}

impl DegradationFn {
    /// The aggregate-capacity factor for `n` concurrent activities.
    pub fn total_factor(self, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        match self {
            DegradationFn::Fair => 1.0,
            DegradationFn::LinearPenalty { penalty } => {
                1.0 / (1.0 + penalty.max(0.0) * (n as f64 - 1.0))
            }
        }
    }
}

/// Which throughput model a link uses.
///
/// [`LinkModel::FifoFixed`] is the seed behaviour and the default — every
/// committed baseline (`BENCH_baseline.json`) is pinned to it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LinkModel {
    /// The original model: fixed setup + per-byte cost, FIFO delivery, no
    /// interaction between concurrent transfers.
    #[default]
    FifoFixed,
    /// Contention-aware fair sharing: concurrent activities split the link
    /// bandwidth via the embedded [`DegradationFn`].
    FairShare(DegradationFn),
}

impl LinkModel {
    /// The fair-share model with the ideal `throughput / n` split.
    pub const fn fair_share() -> Self {
        LinkModel::FairShare(DegradationFn::Fair)
    }

    /// True when this is a fair-sharing model.
    pub fn is_fair_share(self) -> bool {
        matches!(self, LinkModel::FairShare(_))
    }

    /// A short stable name for reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            LinkModel::FifoFixed => "fifo_fixed",
            LinkModel::FairShare(_) => "fair_share",
        }
    }
}

impl Serialize for LinkModel {
    fn to_value(&self) -> Value {
        match self {
            LinkModel::FifoFixed => Value::String("fifo_fixed".to_owned()),
            LinkModel::FairShare(DegradationFn::Fair) => Value::String("fair_share".to_owned()),
            LinkModel::FairShare(DegradationFn::LinearPenalty { penalty }) => {
                let mut inner = serde::value::Map::new();
                inner.insert("penalty".to_owned(), penalty.to_value());
                let mut map = serde::value::Map::new();
                map.insert("fair_share".to_owned(), Value::Object(inner));
                Value::Object(map)
            }
        }
    }
}

impl Deserialize for LinkModel {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(tag) => match tag.as_str() {
                "fifo_fixed" => Ok(LinkModel::FifoFixed),
                "fair_share" => Ok(LinkModel::fair_share()),
                other => Err(Error::custom(format!("unknown link model `{other}`"))),
            },
            Value::Object(map) => {
                let inner = map
                    .get("fair_share")
                    .ok_or_else(|| Error::custom("expected a `fair_share` link-model object"))?;
                match inner {
                    Value::Object(fields) => {
                        let penalty = match fields.get("penalty") {
                            Some(v) => f64::from_value(v)?,
                            None => return Ok(LinkModel::fair_share()),
                        };
                        Ok(LinkModel::FairShare(DegradationFn::LinearPenalty {
                            penalty,
                        }))
                    }
                    _ => Err(Error::custom("`fair_share` link model must be an object")),
                }
            }
            _ => Err(Error::custom("link model must be a string or object")),
        }
    }
}

/// Handle to an in-flight activity on a [`FairShareLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActivityId(u64);

/// Result of [`FairShareLink::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedTransfer {
    /// The activity has fully drained; its bytes are delivered.
    Complete,
    /// Still draining; the caller should reschedule its completion event at
    /// the contained (strictly later) ETA and poll again there.
    InFlight(SimTime),
}

#[derive(Debug, Clone)]
struct Activity {
    id: u64,
    /// Bits left to serialise. Exact at segment boundaries: every completed
    /// segment subtracts the completing activity's remainder from all peers.
    remaining: f64,
    /// Bits admitted at begin time, for delivered-byte accounting.
    injected: f64,
}

/// Counters of a [`FairShareLink`] direction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FairShareStats {
    /// Activities admitted via [`FairShareLink::begin`].
    pub started: u64,
    /// Activities fully drained.
    pub completed: u64,
    /// Total bits delivered by completed activities.
    pub delivered_bits: f64,
}

/// A single link direction whose concurrent activities share bandwidth.
///
/// The engine is deterministic and allocation-light: activities live in a
/// small `Vec` ordered by admission, and all draining arithmetic happens in
/// bit-space (see the module docs). Callers drive it with event times from
/// the simulation clock; `advance` clamps backwards time, so replaying the
/// same event sequence reproduces the same state bit-for-bit.
#[derive(Debug, Clone)]
pub struct FairShareLink {
    bandwidth: Gbps,
    degradation: DegradationFn,
    clock: SimTime,
    next_id: u64,
    activities: Vec<Activity>,
    stats: FairShareStats,
    /// No draining happens before this instant (a link flap / outage):
    /// in-flight activities stall and their re-planned ETAs move past the
    /// outage end. [`SimTime::ZERO`] means no outage.
    outage_until: SimTime,
    /// Multiplier on the nominal bandwidth (a capacity swing); clamped to a
    /// small positive floor so the segment walk always terminates — a full
    /// outage is expressed via [`FairShareLink::set_outage`] instead.
    capacity_factor: f64,
}

/// The floor [`FairShareLink::set_capacity_factor`] clamps to: low enough to
/// model a crippled link, high enough that ETAs stay finite.
pub const MIN_CAPACITY_FACTOR: f64 = 1e-6;

/// Rounds a bit count at a rate into integer nanoseconds with *exactly* the
/// expression [`SimDuration::transmission`] uses, so a lone fair-share
/// activity serialises in the same integer duration as the FIFO model.
fn serialisation_ns(bits: f64, gbps: f64) -> u64 {
    if gbps <= 0.0 {
        return 0;
    }
    let secs = bits / (gbps * 1e9);
    (secs.max(0.0) * 1e9).round() as u64
}

impl FairShareLink {
    /// Creates an idle shared link direction.
    pub fn new(bandwidth: Gbps, degradation: DegradationFn) -> Self {
        FairShareLink {
            bandwidth,
            degradation,
            clock: SimTime::ZERO,
            next_id: 0,
            activities: Vec::new(),
            stats: FairShareStats::default(),
            outage_until: SimTime::ZERO,
            capacity_factor: 1.0,
        }
    }

    /// Declares an outage: no bits drain between `now` and `until`.
    /// In-flight activities are kept (not dropped) — their next
    /// [`FairShareLink::poll`] re-plans a completion past the outage end, so
    /// a flap retroactively stretches every transfer it interrupts.
    /// Overlapping outages extend each other (the later end wins).
    pub fn set_outage(&mut self, now: SimTime, until: SimTime) {
        self.advance(now);
        self.outage_until = self.outage_until.max(until.max(now));
    }

    /// Scales the link's usable bandwidth by `factor` from `now` on (an
    /// AQM/WiFi-style capacity swing). Bits already drained are untouched;
    /// the remainder of every in-flight activity drains at the new rate and
    /// re-plans on its next [`FairShareLink::poll`]. `factor` is clamped to
    /// a small positive floor — use [`FairShareLink::set_outage`] for a full
    /// outage. `1.0` restores the nominal rate.
    pub fn set_capacity_factor(&mut self, now: SimTime, factor: f64) {
        self.advance(now);
        self.capacity_factor = factor.max(MIN_CAPACITY_FACTOR);
    }

    /// The capacity multiplier currently in force.
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_factor
    }

    /// Number of activities currently in flight.
    pub fn in_flight(&self) -> usize {
        self.activities.len()
    }

    /// The engine's counters.
    pub fn stats(&self) -> FairShareStats {
        self.stats
    }

    /// The per-activity drain rate (bits per nanosecond) with `n` activities,
    /// including any capacity swing in force.
    fn per_activity_rate(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.bandwidth.as_gbps() * self.capacity_factor * self.degradation.total_factor(n)
            / n as f64
    }

    /// Index of the activity that completes next: smallest remainder, ties
    /// broken by admission id so the order is deterministic.
    fn next_to_finish(activities: &[Activity]) -> usize {
        let mut best = 0;
        for (i, a) in activities.iter().enumerate().skip(1) {
            let b = &activities[best];
            if a.remaining < b.remaining || (a.remaining == b.remaining && a.id < b.id) {
                best = i;
            }
        }
        best
    }

    /// Drains all activities up to `now`. Backwards time is a no-op; time
    /// spent inside an outage drains nothing.
    pub fn advance(&mut self, now: SimTime) {
        while self.clock < now {
            if self.clock < self.outage_until {
                // The link is dark: skip to the outage end (or `now`)
                // without draining a bit.
                self.clock = self.outage_until.min(now);
                continue;
            }
            if self.activities.is_empty() {
                self.clock = now;
                return;
            }
            let rate = self.per_activity_rate(self.activities.len());
            if rate <= 0.0 {
                // A zero-rate link is "infinitely fast" (pure latency),
                // matching SimDuration::transmission: everything completes
                // immediately.
                self.complete_all();
                continue;
            }
            let min_idx = Self::next_to_finish(&self.activities);
            let min_rem = self.activities[min_idx].remaining;
            let finish = self.clock + SimDuration::from_nanos(serialisation_ns(min_rem, rate));
            if finish <= now {
                // Full segment: everyone drains at the same rate, so when the
                // minimum completes, all peers have lost exactly its
                // remainder — an exact bit-space subtraction.
                self.drain_bits(min_rem);
                self.clock = finish;
            } else {
                // Partial segment up to `now`: 1 Gbps is exactly 1 bit/ns.
                let elapsed = now.duration_since(self.clock).as_nanos() as f64;
                self.drain_bits(elapsed * rate);
                self.clock = now;
            }
        }
    }

    fn drain_bits(&mut self, bits: f64) {
        let mut i = 0;
        while i < self.activities.len() {
            self.activities[i].remaining -= bits;
            if self.activities[i].remaining <= 0.0 {
                let done = self.activities.remove(i);
                self.stats.completed += 1;
                self.stats.delivered_bits += done.injected;
            } else {
                i += 1;
            }
        }
    }

    fn complete_all(&mut self) {
        for a in self.activities.drain(..) {
            self.stats.completed += 1;
            self.stats.delivered_bits += a.injected;
        }
    }

    /// Admits `size` bytes as a new activity at `now` and returns its handle
    /// plus a *provisional* ETA: exact if no further activity arrives, and
    /// otherwise a lower bound to re-plan from via [`FairShareLink::poll`].
    pub fn begin(&mut self, now: SimTime, size: ByteSize) -> (ActivityId, SimTime) {
        self.advance(now);
        let id = self.next_id;
        self.next_id += 1;
        self.stats.started += 1;
        let bits = size.as_bits() as f64;
        if bits <= 0.0 || self.bandwidth.as_gbps() <= 0.0 {
            // Zero bytes, or a zero-rate (pure-latency) link: done instantly.
            self.stats.completed += 1;
            self.stats.delivered_bits += bits.max(0.0);
            return (ActivityId(id), now);
        }
        self.activities.push(Activity {
            id,
            remaining: bits,
            injected: bits,
        });
        let eta = self.projected_eta(id).unwrap_or(now);
        (ActivityId(id), eta)
    }

    /// Advances to `now` and reports whether `id` has completed; if not, the
    /// returned ETA is strictly later than `now` and the caller should
    /// reschedule there.
    pub fn poll(&mut self, now: SimTime, id: ActivityId) -> SharedTransfer {
        self.advance(now);
        if !self.activities.iter().any(|a| a.id == id.0) {
            return SharedTransfer::Complete;
        }
        match self.projected_eta(id.0) {
            Some(eta) if eta > now => SharedTransfer::InFlight(eta),
            _ => {
                // Rounding drift can project an ETA at (never before) `now`;
                // force the completion so the re-planning loop terminates.
                if let Some(pos) = self.activities.iter().position(|a| a.id == id.0) {
                    let done = self.activities.remove(pos);
                    self.stats.completed += 1;
                    self.stats.delivered_bits += done.injected;
                }
                SharedTransfer::Complete
            }
        }
    }

    /// The completion instant of `id` assuming no further arrivals — the same
    /// segment walk as [`FairShareLink::advance`], run hypothetically, so the
    /// projection and the real drain agree bit-for-bit.
    fn projected_eta(&self, id: u64) -> Option<SimTime> {
        if !self.activities.iter().any(|a| a.id == id) {
            return None;
        }
        let mut acts = self.activities.clone();
        // During an outage nothing drains until the outage end.
        let mut clock = self.clock.max(self.outage_until);
        loop {
            let rate = self.per_activity_rate(acts.len());
            if rate <= 0.0 {
                return Some(clock);
            }
            let min_idx = Self::next_to_finish(&acts);
            let min_rem = acts[min_idx].remaining;
            let finish = clock + SimDuration::from_nanos(serialisation_ns(min_rem, rate));
            let mut finished_target = false;
            acts.retain_mut(|a| {
                a.remaining -= min_rem;
                if a.remaining <= 0.0 {
                    if a.id == id {
                        finished_target = true;
                    }
                    false
                } else {
                    true
                }
            });
            clock = finish;
            if finished_target {
                return Some(clock);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn link(gbps: f64) -> FairShareLink {
        FairShareLink::new(Gbps::new(gbps), DegradationFn::Fair)
    }

    #[test]
    fn lone_activity_matches_fifo_transmission_exactly() {
        let mut l = link(63.0);
        let size = ByteSize::bytes(1_500);
        let now = SimTime::from_micros(10);
        let (_, eta) = l.begin(now, size);
        let fifo = now + SimDuration::transmission(size, Gbps::new(63.0));
        assert_eq!(eta, fifo);
        assert_eq!(l.poll(eta, ActivityId(0)), SharedTransfer::Complete);
    }

    #[test]
    fn two_equal_activities_each_take_twice_as_long() {
        let mut l = link(10.0);
        let size = ByteSize::bytes(1_250); // 10_000 bits = 1 us solo at 10 Gbps
        let (a, eta_a) = l.begin(SimTime::ZERO, size);
        assert_eq!(eta_a, SimTime::from_micros(1));
        let (b, eta_b) = l.begin(SimTime::ZERO, size);
        // Shared: each drains at 5 Gbps, both finish at 2 us.
        assert_eq!(eta_b, SimTime::from_micros(2));
        // The first activity's committed ETA is stale; re-planning finds the
        // pushed-out completion.
        match l.poll(eta_a, a) {
            SharedTransfer::InFlight(eta) => assert_eq!(eta, SimTime::from_micros(2)),
            SharedTransfer::Complete => panic!("activity finished early under contention"),
        }
        assert_eq!(l.poll(SimTime::from_micros(2), a), SharedTransfer::Complete);
        assert_eq!(l.poll(SimTime::from_micros(2), b), SharedTransfer::Complete);
    }

    #[test]
    fn late_arrival_slows_only_the_remainder() {
        let mut l = link(10.0);
        // A: 20_000 bits, solo 2 us. B arrives at 1 us with 5_000 bits.
        let (a, _) = l.begin(SimTime::ZERO, ByteSize::bytes(2_500));
        let (b, eta_b) = l.begin(SimTime::from_micros(1), ByteSize::bytes(625));
        // From 1 us both drain at 5 Gbps. B (5_000 bits) finishes at 2 us.
        assert_eq!(eta_b, SimTime::from_micros(2));
        // A has 10_000 bits left at 1 us: 5_000 drain shared by 2 us, the
        // last 5_000 solo at 10 Gbps -> 2.5 us.
        match l.poll(SimTime::from_micros(1), a) {
            SharedTransfer::InFlight(eta) => assert_eq!(eta, SimTime::from_nanos(2_500)),
            SharedTransfer::Complete => panic!("A cannot be done at 1 us"),
        }
        assert_eq!(
            l.poll(SimTime::from_nanos(2_500), a),
            SharedTransfer::Complete
        );
        assert_eq!(
            l.poll(SimTime::from_nanos(2_500), b),
            SharedTransfer::Complete
        );
    }

    #[test]
    fn linear_penalty_degrades_aggregate_capacity() {
        let d = DegradationFn::LinearPenalty { penalty: 0.25 };
        assert_eq!(d.total_factor(1), 1.0);
        assert!((d.total_factor(2) - 0.8).abs() < 1e-12);
        let mut l = FairShareLink::new(Gbps::new(10.0), d);
        let size = ByteSize::bytes(1_250); // 1 us solo
        l.begin(SimTime::ZERO, size);
        let (_, eta) = l.begin(SimTime::ZERO, size);
        // Aggregate 8 Gbps, each 4 Gbps: 10_000 bits take 2.5 us.
        assert_eq!(eta, SimTime::from_nanos(2_500));
    }

    #[test]
    fn zero_size_and_zero_rate_complete_instantly() {
        let mut l = link(10.0);
        let now = SimTime::from_micros(3);
        let (id, eta) = l.begin(now, ByteSize::ZERO);
        assert_eq!(eta, now);
        assert_eq!(l.poll(now, id), SharedTransfer::Complete);

        let mut pure_latency = link(0.0);
        let (id, eta) = pure_latency.begin(now, ByteSize::mib(1));
        assert_eq!(eta, now);
        assert_eq!(pure_latency.poll(now, id), SharedTransfer::Complete);
    }

    #[test]
    fn backwards_advance_is_a_no_op() {
        let mut l = link(10.0);
        let (id, eta) = l.begin(SimTime::from_micros(5), ByteSize::bytes(1_250));
        l.advance(SimTime::ZERO);
        assert_eq!(l.in_flight(), 1);
        assert_eq!(l.poll(eta, id), SharedTransfer::Complete);
    }

    #[test]
    fn outage_stalls_and_replans_an_in_flight_activity() {
        let mut l = link(10.0);
        // 10_000 bits: solo ETA 1 us.
        let (id, eta) = l.begin(SimTime::ZERO, ByteSize::bytes(1_250));
        assert_eq!(eta, SimTime::from_micros(1));
        // The link goes dark from 0.5 us to 3 us: half the bits drained, the
        // other half resumes at 3 us and takes another 0.5 us.
        l.set_outage(SimTime::from_nanos(500), SimTime::from_micros(3));
        match l.poll(eta, id) {
            SharedTransfer::InFlight(replanned) => {
                assert_eq!(replanned, SimTime::from_nanos(3_500));
                assert_eq!(l.poll(replanned, id), SharedTransfer::Complete);
            }
            SharedTransfer::Complete => panic!("the outage must stall the transfer"),
        }
    }

    #[test]
    fn begin_during_an_outage_completes_after_it_ends() {
        let mut l = link(10.0);
        l.set_outage(SimTime::ZERO, SimTime::from_micros(5));
        let (id, eta) = l.begin(SimTime::from_micros(1), ByteSize::bytes(1_250));
        // Nothing drains before 5 us; the 1 us of serialisation follows.
        assert_eq!(eta, SimTime::from_micros(6));
        assert_eq!(l.poll(eta, id), SharedTransfer::Complete);
    }

    #[test]
    fn capacity_swing_slows_only_the_remainder_and_restores() {
        let mut l = link(10.0);
        // 20_000 bits: solo 2 us at 10 Gbps.
        let (id, eta) = l.begin(SimTime::ZERO, ByteSize::bytes(2_500));
        assert_eq!(eta, SimTime::from_micros(2));
        // At 1 us half the bits are gone; the swing halves the rate, so the
        // remaining 10_000 bits take 2 us -> completion at 3 us.
        l.set_capacity_factor(SimTime::from_micros(1), 0.5);
        assert!((l.capacity_factor() - 0.5).abs() < 1e-12);
        let replanned = match l.poll(eta, id) {
            SharedTransfer::InFlight(t) => t,
            SharedTransfer::Complete => panic!("the swing must stretch the transfer"),
        };
        assert_eq!(replanned, SimTime::from_micros(3));
        // Restoring at 2 us: 5_000 bits drained in [1us, 2us] at 5 Gbps,
        // the last 5_000 at full rate -> completion at 2.5 us.
        l.set_capacity_factor(SimTime::from_micros(2), 1.0);
        match l.poll(SimTime::from_nanos(2_500), id) {
            SharedTransfer::Complete => {}
            SharedTransfer::InFlight(t) => panic!("restored link must finish by 2.5 us, got {t}"),
        }
        // A non-positive factor clamps to the positive floor instead of
        // stalling forever (full outages use set_outage).
        l.set_capacity_factor(SimTime::from_micros(3), 0.0);
        assert!(l.capacity_factor() > 0.0);
    }

    #[test]
    fn link_model_serde_round_trips() {
        for model in [
            LinkModel::FifoFixed,
            LinkModel::fair_share(),
            LinkModel::FairShare(DegradationFn::LinearPenalty { penalty: 0.1 }),
        ] {
            let value = model.to_value();
            let back = LinkModel::from_value(&value).unwrap();
            assert_eq!(back, model);
        }
        assert!(LinkModel::from_value(&Value::String("warp_drive".to_owned())).is_err());
        assert_eq!(LinkModel::default(), LinkModel::FifoFixed);
        assert!(LinkModel::fair_share().is_fair_share());
        assert_eq!(LinkModel::fair_share().name(), "fair_share");
        assert_eq!(LinkModel::FifoFixed.name(), "fifo_fixed");
    }

    proptest! {
        /// A lone activity is byte-identical to the FIFO-fixed serialisation
        /// time for arbitrary sizes, rates and start instants.
        #[test]
        fn solo_activity_is_byte_identical_to_fifo(
            bytes in 0u64..=100_000_000,
            gbps in 0.001f64..200.0,
            start_ns in 0u64..=1_000_000_000_000,
        ) {
            let mut l = FairShareLink::new(Gbps::new(gbps), DegradationFn::Fair);
            let now = SimTime::from_nanos(start_ns);
            let size = ByteSize::bytes(bytes);
            let (id, eta) = l.begin(now, size);
            prop_assert_eq!(eta, now + SimDuration::transmission(size, Gbps::new(gbps)));
            prop_assert_eq!(l.poll(eta, id), SharedTransfer::Complete);
        }

        /// Total delivered bytes are conserved under random concurrent
        /// interleavings: every admitted activity completes, accounting for
        /// exactly the bits that were injected, and the last completion can
        /// never beat the aggregate line rate.
        #[test]
        fn random_interleavings_conserve_delivered_bytes(
            arrivals in proptest::collection::vec(
                (0u64..5_000_000, 1u64..10_000_000),
                1..40,
            ),
        ) {
            let mut l = link(25.0);
            let mut pending = Vec::new();
            let mut arrivals = arrivals;
            arrivals.sort_unstable();
            let mut total_bits = 0u64;
            let mut last_arrival = SimTime::ZERO;
            for &(at_ns, bytes) in &arrivals {
                let now = SimTime::from_nanos(at_ns);
                let (id, eta) = l.begin(now, ByteSize::bytes(bytes));
                total_bits += bytes * 8;
                pending.push((id, eta));
                last_arrival = now;
            }
            // Re-plan every activity to completion.
            let mut makespan = SimTime::ZERO;
            for (id, mut eta) in pending {
                let mut hops = 0;
                loop {
                    match l.poll(eta, id) {
                        SharedTransfer::Complete => break,
                        SharedTransfer::InFlight(next) => {
                            prop_assert!(next > eta, "re-planned ETA must move forward");
                            eta = next;
                        }
                    }
                    hops += 1;
                    prop_assert!(hops <= arrivals.len() + 1, "re-planning must terminate");
                }
                makespan = makespan.max(eta);
            }
            let stats = l.stats();
            prop_assert_eq!(l.in_flight(), 0);
            prop_assert_eq!(stats.started, arrivals.len() as u64);
            prop_assert_eq!(stats.completed, arrivals.len() as u64);
            prop_assert!(
                (stats.delivered_bits - total_bits as f64).abs() <= total_bits as f64 * 1e-9 + 1.0,
                "delivered {} bits of {} injected", stats.delivered_bits, total_bits,
            );
            // Aggregate capacity bound: bits / 25 Gbps of serialisation must
            // fit between the first arrival and the last completion (with a
            // rounding slack of 1 ns per activity).
            let floor = SimDuration::transmission(
                ByteSize::bytes(total_bits / 8),
                Gbps::new(25.0),
            );
            let span = makespan.duration_since(SimTime::ZERO)
                + SimDuration::from_nanos(arrivals.len() as u64);
            prop_assert!(
                span >= floor,
                "finished {span} after start, faster than the {floor} line-rate floor",
            );
            let _ = last_arrival;
        }
    }
}
