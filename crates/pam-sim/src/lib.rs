//! Deterministic discrete-event simulation core for the PAM workspace.
//!
//! The paper's testbed — a Netronome Agilio CX SmartNIC, Xeon CPUs and the
//! PCIe link between them — is reproduced here as a discrete-event
//! simulation. This crate provides the reusable building blocks; the
//! packet-level service-chain runtime in `pam-runtime` composes them:
//!
//! * [`EventQueue`] and the [`EventHandler`]/[`run_until`] driver — a
//!   time-ordered, insertion-stable event loop. Determinism matters: two runs
//!   with the same seed produce byte-identical results, which the
//!   reproducibility tests rely on.
//! * [`SimRng`] — a seeded random-number generator with the sampling helpers
//!   the traffic generator and workloads need.
//! * [`DropTailQueue`] — a bounded FIFO with drop accounting, used for every
//!   ingress/device queue.
//! * [`RateServer`] — a work-conserving FIFO server whose service times are
//!   derived from throughput capacities; this is what turns the paper's
//!   "resource utilisation grows linearly with throughput" assumption into
//!   packet timings.
//! * [`ComputeDevice`] — a SmartNIC NPU or host CPU modelled as a shared
//!   [`RateServer`] plus utilisation accounting (the quantity Eq. 2 and Eq. 3
//!   of the poster constrain).
//! * [`PcieLink`] — the latency/bandwidth model of the PCIe path between the
//!   two devices, with per-direction crossing counters.
//! * [`FairShareLink`] and [`LinkModel`] — an opt-in contention-aware
//!   throughput model where concurrent transfers on a link direction split
//!   the bandwidth via a pluggable [`DegradationFn`] (fair `throughput / n`
//!   by default); the FIFO-fixed model remains the baseline default.
//! * [`ReorderBuffer`] — a bounded link-reorder model (window `0` = FIFO)
//!   whose deliverable set is *enumerable*, so the protocol model checker in
//!   `pam-protocol` can branch on every legal delivery interleaving.
//! * [`FaultPlan`] — a seeded, serde-configured schedule of fault-injection
//!   events (server crashes/recoveries, link flaps, capacity swings) that the
//!   fleet layer delivers through its event queue, so chaos runs replay
//!   byte-identically at any shard/job count.
//! * [`ShardPlan`] — conservative-lookahead shard planning for parallel
//!   simulation: partitions nodes into groups no sub-barrier channel
//!   crosses, so a windowed runner can execute groups on worker threads and
//!   stay event-for-event identical to the sequential run (`pam-fleet`'s
//!   `run_sharded` is the consumer).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub mod device;
pub mod events;
pub mod fault;
pub mod link;
pub mod queue;
pub mod reorder;
pub mod rng;
pub mod server;
pub mod shard;
pub mod sharing;

pub use device::{ComputeDevice, DeviceConfig, DeviceStats, ProcessOutcome};
pub use events::{run_until, EventHandler, EventQueue, ScheduledEvent};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultPlanConfig};
pub use link::{
    LinkDirection, PcieLink, PcieLinkConfig, PcieLinkStats, TransferStatus, TransferToken,
};
pub use queue::{DropTailQueue, QueueStats};
pub use reorder::ReorderBuffer;
pub use rng::SimRng;
pub use server::{RateServer, ServerStats};
pub use shard::{ShardChannel, ShardPlan};
pub use sharing::{
    ActivityId, DegradationFn, FairShareLink, FairShareStats, LinkModel, SharedTransfer,
};
