//! A work-conserving FIFO rate server.
//!
//! [`RateServer`] is the timing primitive behind both compute devices and the
//! PCIe link: callers convert a packet (or DMA transfer) into a service time
//! and the server answers *when* that work starts and finishes, assuming FIFO
//! order and no idling while work is pending.

use pam_types::{SimDuration, SimTime};

/// Statistics accumulated by a [`RateServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Number of jobs served.
    pub served: u64,
    /// Total busy time accumulated by served jobs.
    pub busy: SimDuration,
    /// Total time jobs spent waiting before service started.
    pub waited: SimDuration,
    /// Largest backlog (time until the server becomes free) ever observed at
    /// job arrival.
    pub max_backlog: SimDuration,
}

impl ServerStats {
    /// Mean waiting time per served job.
    pub fn mean_wait(&self) -> SimDuration {
        if self.served == 0 {
            SimDuration::ZERO
        } else {
            self.waited / self.served
        }
    }
}

/// A work-conserving FIFO server.
///
/// The server has no internal queue of job payloads: it only tracks the time
/// at which it will next be free. Callers that need to bound queueing use
/// [`RateServer::backlog`] for admission control before calling
/// [`RateServer::serve`].
#[derive(Debug, Clone, Default)]
pub struct RateServer {
    next_free: SimTime,
    stats: ServerStats,
}

impl RateServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// The instant the server becomes free given everything served so far.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// How long a job arriving at `now` would wait before starting service.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.next_free.duration_since(now)
    }

    /// True if a job arriving at `now` would start immediately.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.next_free <= now
    }

    /// Serves a job arriving at `now` that needs `service` time.
    /// Returns the `(start, finish)` instants and updates the backlog.
    pub fn serve(&mut self, now: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        let wait = self.backlog(now);
        let start = now.max(self.next_free);
        let finish = start + service;
        self.next_free = finish;
        self.stats.served += 1;
        self.stats.busy += service;
        self.stats.waited += wait;
        self.stats.max_backlog = self.stats.max_backlog.max(wait);
        (start, finish)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// The fraction of `[window_start, now]` the server spent busy.
    ///
    /// This is the measured counterpart of the paper's analytical utilisation
    /// `θ_cur / θ_cap`; the two agree in the tests of `pam-runtime`.
    pub fn utilisation(&self, window_start: SimTime, now: SimTime) -> f64 {
        let elapsed = now.duration_since(window_start);
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.stats.busy.as_nanos() as f64 / elapsed.as_nanos() as f64).min(1.0)
    }

    /// Forgets accumulated statistics (the backlog is kept, since work in
    /// flight does not disappear when a measurement window rolls over).
    pub fn reset_stats(&mut self) {
        self.stats = ServerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = RateServer::new();
        let now = SimTime::from_micros(10);
        assert!(s.is_idle(now));
        let (start, finish) = s.serve(now, SimDuration::from_micros(3));
        assert_eq!(start, now);
        assert_eq!(finish, SimTime::from_micros(13));
        assert_eq!(s.next_free(), finish);
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s = RateServer::new();
        let t0 = SimTime::from_micros(0);
        let (_, f1) = s.serve(t0, SimDuration::from_micros(5));
        // Second job arrives while the first is in service.
        let (start2, f2) = s.serve(SimTime::from_micros(2), SimDuration::from_micros(5));
        assert_eq!(start2, f1);
        assert_eq!(f2, SimTime::from_micros(10));
        assert_eq!(
            s.backlog(SimTime::from_micros(2)),
            SimDuration::from_micros(8)
        );
        assert!(!s.is_idle(SimTime::from_micros(9)));
        assert!(s.is_idle(SimTime::from_micros(10)));
    }

    #[test]
    fn stats_accumulate_waits_and_busy_time() {
        let mut s = RateServer::new();
        s.serve(SimTime::ZERO, SimDuration::from_micros(10));
        s.serve(SimTime::ZERO, SimDuration::from_micros(10));
        s.serve(SimTime::from_micros(50), SimDuration::from_micros(2));
        let stats = s.stats();
        assert_eq!(stats.served, 3);
        assert_eq!(stats.busy, SimDuration::from_micros(22));
        assert_eq!(stats.waited, SimDuration::from_micros(10));
        assert_eq!(stats.max_backlog, SimDuration::from_micros(10));
        assert_eq!(stats.mean_wait(), SimDuration::from_nanos(3333));
    }

    #[test]
    fn mean_wait_of_idle_server_is_zero() {
        assert_eq!(ServerStats::default().mean_wait(), SimDuration::ZERO);
    }

    #[test]
    fn utilisation_tracks_busy_fraction() {
        let mut s = RateServer::new();
        s.serve(SimTime::ZERO, SimDuration::from_micros(30));
        let util = s.utilisation(SimTime::ZERO, SimTime::from_micros(100));
        assert!((util - 0.3).abs() < 1e-9);
        // Utilisation is clamped to 1 even if busy time exceeds the window
        // (possible when the backlog extends beyond `now`).
        s.serve(SimTime::ZERO, SimDuration::from_micros(200));
        assert_eq!(s.utilisation(SimTime::ZERO, SimTime::from_micros(100)), 1.0);
        assert_eq!(s.utilisation(SimTime::ZERO, SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_stats_keeps_backlog() {
        let mut s = RateServer::new();
        s.serve(SimTime::ZERO, SimDuration::from_micros(100));
        s.reset_stats();
        assert_eq!(s.stats().served, 0);
        assert_eq!(s.next_free(), SimTime::from_micros(100));
    }
}
