//! Bounded link-reorder modeling.
//!
//! The workspace's PCIe model delivers strictly in FIFO order per direction
//! (the per-direction watermark clamp in [`crate::link`]), but inter-server
//! links — the path the fleet's cross-server handoffs travel, and the path
//! future overlapping migrations will travel — may reorder messages within a
//! bounded window. [`ReorderBuffer`] models exactly that environment: it
//! holds sent-but-undelivered messages in send order and, at any moment,
//! allows any of the **first `window + 1` pending** messages to be delivered
//! next. With `window == 0` it degenerates to an exact FIFO.
//!
//! The protocol model checker (`pam-protocol`) uses this as its link model:
//! because `deliverable()` *enumerates* the legal next deliveries instead of
//! picking one, the checker can branch on every allowed interleaving and
//! exhaustively explore the reorder behaviour the real link is permitted to
//! exhibit.

use std::collections::VecDeque;

/// A send-ordered buffer of in-flight messages with bounded-reorder
/// delivery (see the module docs). Deterministic and allocation-light; the
/// model checker clones and compares these wholesale, hence the full
/// comparison/hash derive set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReorderBuffer<T> {
    window: usize,
    pending: VecDeque<T>,
}

impl<T> ReorderBuffer<T> {
    /// An empty buffer whose deliveries may overtake at most `window`
    /// earlier messages (`0` = exact FIFO).
    pub fn new(window: usize) -> Self {
        ReorderBuffer {
            window,
            pending: VecDeque::new(),
        }
    }

    /// The configured reorder window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Enqueues a message in send order.
    pub fn send(&mut self, message: T) {
        self.pending.push_back(message);
    }

    /// How many of the oldest pending messages are legal to deliver next
    /// (`min(window + 1, len)`): index `k < deliverable()` may be passed to
    /// [`ReorderBuffer::deliver`].
    pub fn deliverable(&self) -> usize {
        self.pending.len().min(self.window + 1)
    }

    /// The `k`-th oldest pending message, if it is within the deliverable
    /// prefix.
    pub fn peek(&self, k: usize) -> Option<&T> {
        if k < self.deliverable() {
            self.pending.get(k)
        } else {
            None
        }
    }

    /// Delivers (removes and returns) the `k`-th oldest pending message.
    /// Returns `None` when `k` is outside the deliverable prefix — the
    /// reorder bound is enforced, not merely documented.
    pub fn deliver(&mut self, k: usize) -> Option<T> {
        if k < self.deliverable() {
            self.pending.remove(k)
        } else {
            None
        }
    }

    /// Messages still in flight.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_zero_is_exact_fifo() {
        let mut link = ReorderBuffer::new(0);
        for m in 1..=3 {
            link.send(m);
        }
        assert_eq!(link.deliverable(), 1);
        assert_eq!(link.deliver(1), None); // overtaking is rejected
        assert_eq!(link.deliver(0), Some(1));
        assert_eq!(link.deliver(0), Some(2));
        assert_eq!(link.deliver(0), Some(3));
        assert!(link.is_empty());
    }

    #[test]
    fn window_allows_bounded_overtaking_only() {
        let mut link = ReorderBuffer::new(1);
        for m in 1..=4 {
            link.send(m);
        }
        assert_eq!(link.deliverable(), 2);
        assert_eq!(link.peek(1), Some(&2));
        assert_eq!(link.peek(2), None);
        assert_eq!(link.deliver(2), None); // message 3 may not jump two ahead
        assert_eq!(link.deliver(1), Some(2)); // message 2 overtakes message 1
        assert_eq!(link.deliver(1), Some(3)); // now 3 may overtake 1
        assert_eq!(link.deliver(0), Some(1));
        assert_eq!(link.deliver(0), Some(4));
        assert!(link.is_empty());
    }

    #[test]
    fn deliverable_never_exceeds_pending() {
        let mut link: ReorderBuffer<u8> = ReorderBuffer::new(5);
        assert_eq!(link.deliverable(), 0);
        assert_eq!(link.window(), 5);
        link.send(7);
        assert_eq!(link.deliverable(), 1);
        assert_eq!(link.len(), 1);
        assert_eq!(link.deliver(0), Some(7));
        assert_eq!(link.deliverable(), 0);
    }
}
