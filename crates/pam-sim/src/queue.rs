//! Bounded drop-tail FIFO queues.
//!
//! Every staging point in the simulated data path — the NIC ingress ring,
//! the per-device run queues, the PCIe in-flight queue — is a bounded FIFO
//! with drop-tail semantics. Drops are what turn overload into measurable
//! throughput loss in the Figure 2(b) reproduction, so the queue keeps
//! careful accounting.

use std::collections::VecDeque;

/// Statistics accumulated by a [`DropTailQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items accepted into the queue.
    pub enqueued: u64,
    /// Items rejected because the queue was full.
    pub dropped: u64,
    /// Items removed from the queue.
    pub dequeued: u64,
    /// Highest occupancy ever observed.
    pub high_watermark: usize,
}

impl QueueStats {
    /// Fraction of offered items that were dropped (`0` when nothing was offered).
    pub fn drop_ratio(&self) -> f64 {
        let offered = self.enqueued + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }
}

/// A bounded FIFO queue with drop-tail admission.
#[derive(Debug, Clone)]
pub struct DropTailQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    stats: QueueStats,
}

impl<T> DropTailQueue<T> {
    /// Creates a queue that holds at most `capacity` items. A capacity of
    /// zero is treated as unbounded (used for control-plane queues that must
    /// never drop).
    pub fn new(capacity: usize) -> Self {
        DropTailQueue {
            items: VecDeque::new(),
            capacity,
            stats: QueueStats::default(),
        }
    }

    /// The configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Attempts to enqueue an item. Returns `Err(item)` when the queue is
    /// full so the caller can account for the drop in its own terms.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.capacity != 0 && self.items.len() >= self.capacity {
            self.stats.dropped += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.stats.enqueued += 1;
        self.stats.high_watermark = self.stats.high_watermark.max(self.items.len());
        Ok(())
    }

    /// Removes the item at the head of the queue.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.stats.dequeued += 1;
        }
        item
    }

    /// A reference to the head item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when the next push would be rejected.
    pub fn is_full(&self) -> bool {
        self.capacity != 0 && self.items.len() >= self.capacity
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Drains every queued item (used when a vNF instance is torn down during
    /// migration; the caller decides whether drained packets count as lost).
    pub fn drain_all(&mut self) -> Vec<T> {
        self.items.drain(..).collect()
    }

    /// Iterates over queued items from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = DropTailQueue::new(10);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drops_when_full_and_counts() {
        let mut q = DropTailQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3));
        let stats = q.stats();
        assert_eq!(stats.enqueued, 2);
        assert_eq!(stats.dropped, 1);
        assert!((stats.drop_ratio() - 1.0 / 3.0).abs() < 1e-12);
        // Popping frees space again.
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(4).is_ok());
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let mut q = DropTailQueue::new(0);
        for i in 0..10_000 {
            assert!(q.push(i).is_ok());
        }
        assert!(!q.is_full());
        assert_eq!(q.len(), 10_000);
        assert_eq!(q.stats().dropped, 0);
    }

    #[test]
    fn high_watermark_tracks_peak_occupancy() {
        let mut q = DropTailQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        for _ in 0..4 {
            q.pop();
        }
        q.push(99).unwrap();
        assert_eq!(q.stats().high_watermark, 6);
        assert_eq!(q.stats().dequeued, 4);
    }

    #[test]
    fn peek_drain_and_iter() {
        let mut q = DropTailQueue::new(4);
        q.push("a").unwrap();
        q.push("b").unwrap();
        assert_eq!(q.peek(), Some(&"a"));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec!["a", "b"]);
        let drained = q.drain_all();
        assert_eq!(drained, vec!["a", "b"]);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn drop_ratio_with_no_traffic_is_zero() {
        let q: DropTailQueue<u8> = DropTailQueue::new(1);
        assert_eq!(q.stats().drop_ratio(), 0.0);
        assert_eq!(q.capacity(), 1);
    }
}
