//! The time-ordered event queue and the event-loop driver.
//!
//! Determinism requirements:
//!
//! * events fire in non-decreasing time order;
//! * events scheduled for the *same* instant fire in the order they were
//!   scheduled (insertion-stable), so identical runs replay identically;
//! * the queue never reorders due to hash or allocation effects.
//!
//! # Implementation: a hierarchical calendar queue
//!
//! The queue is keyed on `(time, seq)` — a strict total order, so *any*
//! correct priority queue pops the exact same sequence. Until PR 5 the
//! backing store was a `BinaryHeap<ScheduledEvent<E>>`; profiling showed its
//! sift costs (log-depth pointer-chasing per push/pop) dominating simulator
//! overhead at fleet scale. The heap survives as the `#[cfg(test)]`
//! reference implementation that the differential suites pin the calendar
//! queue against.
//!
//! The replacement is a two-level calendar (bucket) queue:
//!
//! * **Near level** — a window of `BUCKETS` buckets, each covering `width`
//!   nanoseconds starting at `base`. Scheduling into the window is an O(1)
//!   push; buckets are sorted lazily, only when the draining cursor reaches
//!   them, so each event is compared O(log bucket-occupancy) times total
//!   instead of O(log n).
//! * **Far level** — events beyond the window land in an unsorted overflow
//!   list. When the window drains, the queue *rebases*: the window jumps to
//!   the earliest overflow event and overflow events that now fall inside it
//!   are redistributed (each event moves at most once per rebase).
//!
//! The bucket `width` self-tunes at rebase time: crowded buckets shrink it,
//! windows that drained nearly empty grow it, within
//! `MIN_WIDTH..=MAX_WIDTH`. In the steady state of the packet
//! simulation every operation is allocation-free: buckets and the overflow
//! list keep their capacity across the window cycle.

use std::cmp::Ordering;

use pam_types::SimTime;

/// An event stored in the queue together with its firing time and a
/// monotonically increasing sequence number used to break ties.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Tie-breaking sequence number (scheduling order).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Number of buckets in the calendar window. Deliberately small: the bucket
/// array is touched semi-randomly on every schedule, so it must stay
/// cache-resident (128 buckets ≈ 5 KiB of headers; 2048 measured ~5% slower
/// end-to-end from cache misses alone).
const BUCKETS: usize = 128;
/// Initial bucket width in nanoseconds (window = `BUCKETS * width` ≈ 65 µs
/// at the default — the scale of one batch's service pipeline; events past
/// the window, like control ticks, ride the overflow level).
const DEFAULT_WIDTH: u64 = 512;
/// Self-tuning floor for the bucket width.
const MIN_WIDTH: u64 = 64;
/// Self-tuning ceiling for the bucket width (~16 us buckets, a ~2 ms window).
const MAX_WIDTH: u64 = 1 << 14;
/// A sorted bucket longer than this asks for a finer width at the next
/// rebase. Kept below [`MIN_BUCKET_CAPACITY`] so the width shrinks *before*
/// steady-state occupancy outgrows the reserved bucket capacity.
const CROWDED_BUCKET: usize = 24;
/// A window cycle that popped fewer events than this asks for a coarser width.
const SPARSE_WINDOW: u64 = (BUCKETS as u64) / 16;
/// Capacity reserved per bucket up front (at construction, so first-touch of
/// a cold bucket is not an allocation). Steady-state occupancy jitter stays
/// inside this headroom — the zero-allocation test in `pam-runtime` pins it.
const MIN_BUCKET_CAPACITY: usize = 32;

/// One calendar bucket. `items` is unsorted until the draining cursor
/// reaches the bucket; from then on `items[head..]` is kept in *ascending*
/// `(time, seq)` order and pops advance `head`, so draining is O(1) per
/// event and a fresh schedule into the draining bucket — almost always the
/// largest key so far — is an O(1) push at the end.
///
/// Invariants: `!sorted` implies `head == 0`; entries below `head` are dead
/// (their payload was taken by a pop).
#[derive(Debug)]
struct Bucket<E> {
    items: Vec<Item<E>>,
    head: usize,
    sorted: bool,
}

impl<E> Default for Bucket<E> {
    fn default() -> Self {
        Bucket {
            items: Vec::with_capacity(MIN_BUCKET_CAPACITY),
            head: 0,
            sorted: false,
        }
    }
}

impl<E> Bucket<E> {
    /// Number of live (not yet popped) events in the bucket.
    fn live(&self) -> usize {
        self.items.len() - self.head
    }
}

#[derive(Debug)]
struct Item<E> {
    time: u64,
    seq: u64,
    /// `None` only below a draining bucket's `head` (taken by a pop).
    event: Option<E>,
}

/// A time-ordered, insertion-stable event queue (see the module docs for the
/// calendar-queue design).
#[derive(Debug)]
pub struct EventQueue<E> {
    buckets: Vec<Bucket<E>>,
    /// Start time (nanos) of bucket 0. Only moves forward, at rebase.
    base: u64,
    /// Nanoseconds covered by one bucket (self-tuning).
    width: u64,
    /// Bucket of the most recently popped event: the draining bucket. All
    /// schedule times are clamped to `now`, so no insert ever lands below it.
    cursor: usize,
    /// Index of the first non-empty bucket (`BUCKETS` when the window is
    /// empty). Advances as buckets drain; an insert below it pulls it back.
    first_busy: usize,
    /// Events at or beyond `base + BUCKETS * width`, unsorted.
    overflow: Vec<Item<E>>,
    /// Cached earliest time in `overflow` (`u64::MAX` when empty): O(1) to
    /// maintain on insert, recomputed during the rebase that drains it, so
    /// sparse drains never rescan the overflow list per pop.
    overflow_min: u64,
    /// Events currently stored in `buckets`.
    near_len: usize,
    /// Total events pending (`near_len + overflow.len()`).
    len: usize,
    /// Cached firing time of the earliest pending event.
    next_time: Option<u64>,
    /// Largest sorted-bucket occupancy since the last rebase (width tuning).
    max_sorted_len: usize,
    /// Events popped since the last rebase (width tuning).
    window_pops: u64,

    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..BUCKETS).map(|_| Bucket::default()).collect(),
            base: 0,
            width: DEFAULT_WIDTH,
            cursor: 0,
            first_busy: BUCKETS,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            near_len: 0,
            len: 0,
            next_time: None,
            max_sorted_len: 0,
            window_pops: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// The current simulation time: the firing time of the most recently
    /// popped event (or zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is a logic error in the caller; the event is
    /// clamped to the current time so the simulation still makes progress
    /// (and the condition is observable through [`EventQueue::now`]).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.insert(Item {
            time: time.as_nanos(),
            seq,
            event: Some(event),
        });
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: pam_types::SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        if self.near_len == 0 {
            // The window is drained but far events remain: jump it forward.
            self.rebase();
        }
        // Entering the first busy bucket is safe: the event popped from it is
        // the queue minimum, so `now` rises into this bucket's range and no
        // later schedule can land below it.
        self.cursor = self.first_busy;
        let bucket = &mut self.buckets[self.cursor];
        if !bucket.sorted {
            bucket.items.sort_unstable_by_key(|i| (i.time, i.seq));
            bucket.sorted = true;
            self.max_sorted_len = self.max_sorted_len.max(bucket.items.len());
        }
        let slot = &mut bucket.items[bucket.head];
        let time = slot.time;
        let Some(event) = slot.event.take() else {
            unreachable!("live slot holds an event");
        };
        bucket.head += 1;
        if bucket.live() == 0 {
            bucket.items.clear();
            bucket.head = 0;
            bucket.sorted = false;
            while self.first_busy < BUCKETS && self.buckets[self.first_busy].live() == 0 {
                self.first_busy += 1;
            }
        }
        self.near_len -= 1;
        self.len -= 1;
        self.window_pops += 1;
        self.recompute_next();
        let time = SimTime::from_nanos(time);
        self.now = time;
        Some((time, event))
    }

    /// The firing time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next_time.map(SimTime::from_nanos)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Places one item into the near window or the overflow list.
    ///
    /// Invariant: `item.time >= self.base`. The wrapper clamps schedule times
    /// to `now`, `now` only advances to popped firing times (all `>= base`),
    /// and `base` only moves forward during a rebase, immediately before an
    /// event at the new base pops — so the invariant holds on every call.
    fn insert(&mut self, item: Item<E>) {
        debug_assert!(item.time >= self.base, "schedule below the window base");
        let offset = item.time - self.base;
        let window = self.width.saturating_mul(BUCKETS as u64);
        let time = item.time;
        if offset >= window {
            self.overflow_min = self.overflow_min.min(item.time);
            self.overflow.push(item);
        } else {
            let index = (offset / self.width) as usize;
            let bucket = &mut self.buckets[index];
            if index == self.cursor && bucket.sorted {
                // The draining bucket keeps its live tail in ascending
                // (time, seq) order. A fresh schedule carries the largest
                // seq so far, so the common case is an O(1) push at the end.
                let key = (item.time, item.seq);
                match bucket.items.last() {
                    Some(last) if (last.time, last.seq) > key => {
                        let at = bucket.head
                            + bucket.items[bucket.head..]
                                .partition_point(|x| (x.time, x.seq) < key);
                        bucket.items.insert(at, item);
                    }
                    _ => bucket.items.push(item),
                }
            } else {
                bucket.items.push(item);
                bucket.sorted = false;
            }
            self.first_busy = self.first_busy.min(index);
            self.near_len += 1;
        }
        self.len += 1;
        self.next_time = Some(match self.next_time {
            Some(cached) => cached.min(time),
            None => time,
        });
    }

    /// Refreshes the cached next firing time after a pop. Read-only with
    /// respect to the cursor: the next busy bucket may still receive earlier
    /// inserts before the next pop, so it must not be entered here.
    fn recompute_next(&mut self) {
        if self.len == 0 {
            self.next_time = None;
        } else if self.near_len > 0 {
            let bucket = &self.buckets[self.first_busy];
            self.next_time = if bucket.sorted {
                bucket.items.get(bucket.head).map(|i| i.time)
            } else {
                // At most one unsorted scan per bucket per window cycle: the
                // next pop enters and sorts this bucket.
                bucket.items.iter().map(|i| i.time).min()
            };
        } else {
            // The window is drained; the next pop will rebase. Until then the
            // earliest overflow event is the queue minimum.
            debug_assert!(!self.overflow.is_empty());
            self.next_time = Some(self.overflow_min);
        }
    }

    /// Jumps the (drained) window forward to the earliest overflow event and
    /// redistributes every overflow event that now falls inside it. Also the
    /// point where the bucket width self-tunes.
    fn rebase(&mut self) {
        debug_assert_eq!(self.near_len, 0);
        debug_assert!(!self.overflow.is_empty());

        if self.max_sorted_len > CROWDED_BUCKET {
            self.width = (self.width / 2).max(MIN_WIDTH);
        } else if self.window_pops < SPARSE_WINDOW {
            self.width = (self.width * 2).min(MAX_WIDTH);
        }
        self.max_sorted_len = 0;
        self.window_pops = 0;

        self.base = self.overflow_min;
        self.cursor = 0;
        self.first_busy = BUCKETS;
        let window = self.width.saturating_mul(BUCKETS as u64);
        let mut remaining_min = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            if self.overflow[i].time - self.base < window {
                let item = self.overflow.swap_remove(i);
                let index = ((item.time - self.base) / self.width) as usize;
                let bucket = &mut self.buckets[index];
                bucket.items.push(item);
                bucket.sorted = false;
                self.first_busy = self.first_busy.min(index);
                self.near_len += 1;
            } else {
                remaining_min = remaining_min.min(self.overflow[i].time);
                i += 1;
            }
        }
        self.overflow_min = remaining_min;
    }
}

/// A type that reacts to events popped from an [`EventQueue`].
pub trait EventHandler {
    /// The event payload type.
    type Event;

    /// Handles one event. New events may be scheduled on `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Runs the event loop until the queue is exhausted or the next event would
/// fire after `until`. Returns the number of events processed.
///
/// Events scheduled exactly at `until` are still processed, so a run over
/// `[0, until]` is closed on both ends.
pub fn run_until<H: EventHandler>(
    handler: &mut H,
    queue: &mut EventQueue<H::Event>,
    until: SimTime,
) -> u64 {
    let mut processed = 0;
    while let Some(next) = queue.peek_time() {
        if next > until {
            break;
        }
        let Some((now, event)) = queue.pop() else {
            unreachable!("peeked event must pop");
        };
        handler.handle(now, event, queue);
        processed += 1;
    }
    processed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::SimDuration;

    /// The pre-PR-5 `BinaryHeap` queue, kept verbatim as the reference
    /// implementation the calendar queue is differentially pinned against.
    mod reference {
        use super::super::ScheduledEvent;
        use pam_types::SimTime;
        use std::collections::BinaryHeap;

        #[derive(Debug)]
        pub struct ReferenceEventQueue<E> {
            heap: BinaryHeap<ScheduledEvent<E>>,
            next_seq: u64,
            now: SimTime,
        }

        impl<E> ReferenceEventQueue<E> {
            pub fn new() -> Self {
                ReferenceEventQueue {
                    heap: BinaryHeap::new(),
                    next_seq: 0,
                    now: SimTime::ZERO,
                }
            }

            pub fn schedule(&mut self, time: SimTime, event: E) {
                let time = time.max(self.now);
                let seq = self.next_seq;
                self.next_seq += 1;
                self.heap.push(ScheduledEvent { time, seq, event });
            }

            pub fn pop(&mut self) -> Option<(SimTime, E)> {
                let scheduled = self.heap.pop()?;
                self.now = scheduled.time;
                Some((scheduled.time, scheduled.event))
            }

            pub fn peek_time(&self) -> Option<SimTime> {
                self.heap.peek().map(|s| s.time)
            }

            pub fn len(&self) -> usize {
                self.heap.len()
            }
        }
    }

    use reference::ReferenceEventQueue;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_nanos(30));
    }

    #[test]
    fn same_time_events_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expected: Vec<_> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn scheduling_in_the_past_is_clamped() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "late");
        q.pop();
        q.schedule(SimTime::from_nanos(10), "early");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "early");
        assert_eq!(t, SimTime::from_nanos(100));
    }

    #[test]
    fn schedule_in_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(50), 1u32);
        q.pop();
        q.schedule_in(SimDuration::from_nanos(25), 2u32);
        assert_eq!(q.pop().unwrap().0, SimTime::from_nanos(75));
    }

    #[test]
    fn counters_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    /// Far-apart events exercise the overflow list and repeated rebasing.
    #[test]
    fn far_future_events_cross_the_window_boundary() {
        let mut q = EventQueue::new();
        // Spread events far beyond any single calendar window, scheduled in
        // a scrambled order, plus equal-time ties at each instant.
        let mut expected = Vec::new();
        for i in [7u64, 0, 12, 3, 9, 1, 14, 5, 11, 2, 13, 4, 10, 6, 8] {
            let t = SimTime::from_millis(i * 50);
            q.schedule(t, (i, 0u32));
            q.schedule(t, (i, 1u32));
        }
        for i in 0..15u64 {
            expected.push((SimTime::from_millis(i * 50), i));
        }
        let mut popped = Vec::new();
        while let Some((t, (i, _tie))) = q.pop() {
            popped.push((t, i));
        }
        assert_eq!(popped.len(), 30);
        // Each instant appears twice (its two ties), in time order.
        for (k, chunk) in popped.chunks(2).enumerate() {
            assert_eq!(chunk[0], expected[k]);
            assert_eq!(chunk[1], expected[k]);
        }
    }

    /// A toy handler: each event below a limit schedules two children,
    /// exercising re-entrant scheduling from inside `handle`.
    struct Doubler {
        fired: Vec<(SimTime, u32)>,
        limit: u32,
    }

    impl EventHandler for Doubler {
        type Event = u32;
        fn handle(&mut self, now: SimTime, event: u32, queue: &mut EventQueue<u32>) {
            self.fired.push((now, event));
            if event < self.limit {
                queue.schedule(now + SimDuration::from_nanos(10), event + 1);
                queue.schedule(now + SimDuration::from_nanos(20), event + 1);
            }
        }
    }

    #[test]
    fn run_until_processes_events_up_to_and_including_deadline() {
        let mut handler = Doubler {
            fired: Vec::new(),
            limit: 3,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1u32);
        let processed = run_until(&mut handler, &mut q, SimTime::from_nanos(20));
        // t=0: 1 fires; t=10: 2 fires (children at 20/30); t=20: the other 2
        // and the newly scheduled 3 both fire. Events beyond t=20 stay queued.
        assert_eq!(processed, 4);
        assert!(handler
            .fired
            .iter()
            .all(|(t, _)| *t <= SimTime::from_nanos(20)));
        assert!(!q.is_empty());
    }

    #[test]
    fn run_until_drains_everything_with_far_deadline() {
        let mut handler = Doubler {
            fired: Vec::new(),
            limit: 4,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1u32);
        let processed = run_until(&mut handler, &mut q, SimTime::MAX);
        // Binary tree of events of depth 4: 1 + 2 + 4 + 8 = 15.
        assert_eq!(processed, 15);
        assert!(q.is_empty());
    }

    use proptest::prelude::*;

    proptest! {
        /// Random interleavings: events pop in non-decreasing time order, and
        /// events sharing a firing time pop in scheduling order — i.e. the
        /// pop sequence is exactly a stable sort of the schedule sequence.
        #[test]
        fn equal_time_events_pop_in_scheduling_order(
            times in proptest::collection::vec(0u64..16, 1..250),
        ) {
            let mut q = EventQueue::new();
            for (seq, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), seq);
            }
            let popped: Vec<(SimTime, usize)> =
                std::iter::from_fn(|| q.pop()).collect();

            let mut expected: Vec<(SimTime, usize)> = times
                .iter()
                .enumerate()
                .map(|(seq, t)| (SimTime::from_nanos(*t), seq))
                .collect();
            // `sort_by_key` is stable: ties keep their scheduling order.
            expected.sort_by_key(|(t, _)| *t);
            prop_assert_eq!(&popped, &expected);

            for pair in popped.windows(2) {
                prop_assert!(pair[0].0 <= pair[1].0);
                if pair[0].0 == pair[1].0 {
                    prop_assert!(pair[0].1 < pair[1].1, "tie broke out of order");
                }
            }
        }

        /// Interleaving pops with schedules preserves the invariant: after
        /// draining, everything scheduled at one instant still pops in the
        /// order it was scheduled.
        #[test]
        fn interleaved_schedule_and_pop_keeps_ties_stable(
            times in proptest::collection::vec((0u64..8, 0u64..8), 1..120),
        ) {
            let mut q = EventQueue::new();
            let mut popped = Vec::new();
            for (seq, (t, pre_pop)) in times.iter().enumerate() {
                // Occasionally pop before scheduling, moving the clock.
                if *pre_pop == 0 {
                    if let Some(event) = q.pop() {
                        popped.push(event);
                    }
                }
                q.schedule(SimTime::from_nanos(*t), seq);
            }
            while let Some(event) = q.pop() {
                popped.push(event);
            }
            prop_assert_eq!(popped.len(), times.len());
            for pair in popped.windows(2) {
                if pair[0].0 == pair[1].0 {
                    prop_assert!(pair[0].1 < pair[1].1, "tie broke out of order");
                }
            }
        }

        /// The tentpole's differential suite: over random interleavings of
        /// schedules and pops — including equal-time bursts and far-future
        /// jumps that force overflow rebasing — the calendar queue and the
        /// reference heap produce identical pop sequences, identical
        /// `peek_time` answers and identical lengths at every step.
        #[test]
        fn calendar_queue_matches_the_reference_heap(
            ops in proptest::collection::vec(
                // (time selector, op selector): op 0 = pop, 1..  = schedule.
                (0u64..40, 0u8..5),
                1..400,
            ),
        ) {
            let mut calendar = EventQueue::new();
            let mut heap = ReferenceEventQueue::new();
            for (step, (t, op)) in ops.iter().enumerate() {
                if *op == 0 {
                    prop_assert_eq!(
                        calendar.pop(),
                        heap.pop(),
                        "pop diverged at step {}",
                        step
                    );
                } else {
                    // Mix dense equal-time bursts (small t) with far-future
                    // jumps (t scaled to cross window boundaries).
                    let nanos = if *op == 4 { t * 1_000_000 } else { *t };
                    let time = SimTime::from_nanos(nanos);
                    calendar.schedule(time, step);
                    heap.schedule(time, step);
                }
                prop_assert_eq!(calendar.peek_time(), heap.peek_time());
                prop_assert_eq!(calendar.len(), heap.len());
            }
            // Drain both to the end: the full remaining order must agree.
            loop {
                let (a, b) = (calendar.pop(), heap.pop());
                prop_assert_eq!(&a, &b, "drain diverged");
                if a.is_none() {
                    break;
                }
            }
        }

        /// u64::MAX-adjacent regression: schedules right at the edge of the
        /// clock (the `SimTime::MAX` "never" sentinel and its neighbourhood)
        /// mixed with ordinary times must still match the reference heap —
        /// the overflow rebase and the width window arithmetic must not wrap.
        #[test]
        fn near_u64_max_times_match_the_reference_heap(
            ops in proptest::collection::vec(
                // (time selector, op selector): op 0 = pop, 1-2 = schedule
                // near the top of the clock, 3-4 = schedule near zero.
                (0u64..40, 0u8..5),
                1..200,
            ),
        ) {
            let mut calendar = EventQueue::new();
            let mut heap = ReferenceEventQueue::new();
            for (step, (t, op)) in ops.iter().enumerate() {
                if *op == 0 {
                    prop_assert_eq!(calendar.pop(), heap.pop(), "pop diverged at step {}", step);
                } else {
                    let nanos = if *op <= 2 { u64::MAX - t } else { *t };
                    let time = SimTime::from_nanos(nanos);
                    calendar.schedule(time, step);
                    heap.schedule(time, step);
                }
                prop_assert_eq!(calendar.peek_time(), heap.peek_time());
                prop_assert_eq!(calendar.len(), heap.len());
            }
            loop {
                let (a, b) = (calendar.pop(), heap.pop());
                prop_assert_eq!(&a, &b, "drain diverged");
                if a.is_none() {
                    break;
                }
            }
        }

        /// Differential suite over *burst-heavy* workloads: many events at
        /// exactly the same instant (the doorbell-batch pattern), where
        /// insertion stability is the whole game.
        #[test]
        fn equal_time_bursts_match_the_reference_heap(
            bursts in proptest::collection::vec((0u64..6, 1usize..20), 1..40),
        ) {
            let mut calendar = EventQueue::new();
            let mut heap = ReferenceEventQueue::new();
            let mut payload = 0u64;
            for (t, burst) in &bursts {
                for _ in 0..*burst {
                    let time = SimTime::from_micros(*t);
                    calendar.schedule(time, payload);
                    heap.schedule(time, payload);
                    payload += 1;
                }
                // Interleave a partial drain after every burst.
                for _ in 0..(*burst / 2) {
                    prop_assert_eq!(calendar.pop(), heap.pop());
                }
            }
            loop {
                let (a, b) = (calendar.pop(), heap.pop());
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn far_future_schedule_in_saturates_instead_of_wrapping() {
        // Regression: `now + delay` used to wrap for a near-MAX delay, so an
        // "effectively never" event landed in the past, was clamped to `now`
        // and fired immediately. With saturating SimTime arithmetic it pins
        // to the SimTime::MAX sentinel instead.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1_000), "tick");
        assert_eq!(q.pop().map(|(_, e)| e), Some("tick"));
        assert_eq!(q.now(), SimTime::from_nanos(1_000));
        q.schedule_in(SimDuration::from_nanos(u64::MAX - 10), "never");
        assert_eq!(q.peek_time(), Some(SimTime::MAX));
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::MAX, "never"));
    }

    #[test]
    fn events_at_the_max_sentinel_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..32 {
            q.schedule(SimTime::MAX, i);
            q.schedule(SimTime::from_nanos(u64::MAX - 1), 100 + i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order.len(), 64);
        // All MAX-1 events precede all MAX events, each group in seq order.
        let expected: Vec<_> = (0..32)
            .map(|i| (SimTime::from_nanos(u64::MAX - 1), 100 + i))
            .chain((0..32).map(|i| (SimTime::MAX, i)))
            .collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn two_identical_schedules_replay_identically() {
        fn run() -> Vec<(SimTime, u32)> {
            let mut handler = Doubler {
                fired: Vec::new(),
                limit: 5,
            };
            let mut q = EventQueue::new();
            q.schedule(SimTime::ZERO, 1u32);
            run_until(&mut handler, &mut q, SimTime::MAX);
            handler.fired
        }
        assert_eq!(run(), run());
    }
}
