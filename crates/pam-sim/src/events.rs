//! The time-ordered event queue and the event-loop driver.
//!
//! Determinism requirements:
//!
//! * events fire in non-decreasing time order;
//! * events scheduled for the *same* instant fire in the order they were
//!   scheduled (insertion-stable), so identical runs replay identically;
//! * the queue never reorders due to hash or allocation effects.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pam_types::SimTime;

/// An event stored in the queue together with its firing time and a
/// monotonically increasing sequence number used to break ties.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Tie-breaking sequence number (scheduling order).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered, insertion-stable event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// The current simulation time: the firing time of the most recently
    /// popped event (or zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is a logic error in the caller; the event is
    /// clamped to the current time so the simulation still makes progress
    /// (and the condition is observable through [`EventQueue::now`]).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: pam_types::SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let scheduled = self.heap.pop()?;
        self.now = scheduled.time;
        Some((scheduled.time, scheduled.event))
    }

    /// The firing time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

/// A type that reacts to events popped from an [`EventQueue`].
pub trait EventHandler {
    /// The event payload type.
    type Event;

    /// Handles one event. New events may be scheduled on `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Runs the event loop until the queue is exhausted or the next event would
/// fire after `until`. Returns the number of events processed.
///
/// Events scheduled exactly at `until` are still processed, so a run over
/// `[0, until]` is closed on both ends.
pub fn run_until<H: EventHandler>(
    handler: &mut H,
    queue: &mut EventQueue<H::Event>,
    until: SimTime,
) -> u64 {
    let mut processed = 0;
    while let Some(next) = queue.peek_time() {
        if next > until {
            break;
        }
        let (now, event) = queue.pop().expect("peeked event must pop");
        handler.handle(now, event, queue);
        processed += 1;
    }
    processed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::SimDuration;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_nanos(30));
    }

    #[test]
    fn same_time_events_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expected: Vec<_> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn scheduling_in_the_past_is_clamped() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "late");
        q.pop();
        q.schedule(SimTime::from_nanos(10), "early");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "early");
        assert_eq!(t, SimTime::from_nanos(100));
    }

    #[test]
    fn schedule_in_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(50), 1u32);
        q.pop();
        q.schedule_in(SimDuration::from_nanos(25), 2u32);
        assert_eq!(q.pop().unwrap().0, SimTime::from_nanos(75));
    }

    #[test]
    fn counters_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    /// A toy handler: each event below a limit schedules two children,
    /// exercising re-entrant scheduling from inside `handle`.
    struct Doubler {
        fired: Vec<(SimTime, u32)>,
        limit: u32,
    }

    impl EventHandler for Doubler {
        type Event = u32;
        fn handle(&mut self, now: SimTime, event: u32, queue: &mut EventQueue<u32>) {
            self.fired.push((now, event));
            if event < self.limit {
                queue.schedule(now + SimDuration::from_nanos(10), event + 1);
                queue.schedule(now + SimDuration::from_nanos(20), event + 1);
            }
        }
    }

    #[test]
    fn run_until_processes_events_up_to_and_including_deadline() {
        let mut handler = Doubler {
            fired: Vec::new(),
            limit: 3,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1u32);
        let processed = run_until(&mut handler, &mut q, SimTime::from_nanos(20));
        // t=0: 1 fires; t=10: 2 fires (children at 20/30); t=20: the other 2
        // and the newly scheduled 3 both fire. Events beyond t=20 stay queued.
        assert_eq!(processed, 4);
        assert!(handler
            .fired
            .iter()
            .all(|(t, _)| *t <= SimTime::from_nanos(20)));
        assert!(!q.is_empty());
    }

    #[test]
    fn run_until_drains_everything_with_far_deadline() {
        let mut handler = Doubler {
            fired: Vec::new(),
            limit: 4,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1u32);
        let processed = run_until(&mut handler, &mut q, SimTime::MAX);
        // Binary tree of events of depth 4: 1 + 2 + 4 + 8 = 15.
        assert_eq!(processed, 15);
        assert!(q.is_empty());
    }

    use proptest::prelude::*;

    proptest! {
        /// Random interleavings: events pop in non-decreasing time order, and
        /// events sharing a firing time pop in scheduling order — i.e. the
        /// pop sequence is exactly a stable sort of the schedule sequence.
        #[test]
        fn equal_time_events_pop_in_scheduling_order(
            times in proptest::collection::vec(0u64..16, 1..250),
        ) {
            let mut q = EventQueue::new();
            for (seq, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), seq);
            }
            let popped: Vec<(SimTime, usize)> =
                std::iter::from_fn(|| q.pop()).collect();

            let mut expected: Vec<(SimTime, usize)> = times
                .iter()
                .enumerate()
                .map(|(seq, t)| (SimTime::from_nanos(*t), seq))
                .collect();
            // `sort_by_key` is stable: ties keep their scheduling order.
            expected.sort_by_key(|(t, _)| *t);
            prop_assert_eq!(&popped, &expected);

            for pair in popped.windows(2) {
                prop_assert!(pair[0].0 <= pair[1].0);
                if pair[0].0 == pair[1].0 {
                    prop_assert!(pair[0].1 < pair[1].1, "tie broke out of order");
                }
            }
        }

        /// Interleaving pops with schedules preserves the invariant: after
        /// draining, everything scheduled at one instant still pops in the
        /// order it was scheduled.
        #[test]
        fn interleaved_schedule_and_pop_keeps_ties_stable(
            times in proptest::collection::vec((0u64..8, 0u64..8), 1..120),
        ) {
            let mut q = EventQueue::new();
            let mut popped = Vec::new();
            for (seq, (t, pre_pop)) in times.iter().enumerate() {
                // Occasionally pop before scheduling, moving the clock.
                if *pre_pop == 0 {
                    if let Some(event) = q.pop() {
                        popped.push(event);
                    }
                }
                q.schedule(SimTime::from_nanos(*t), seq);
            }
            while let Some(event) = q.pop() {
                popped.push(event);
            }
            prop_assert_eq!(popped.len(), times.len());
            for pair in popped.windows(2) {
                if pair[0].0 == pair[1].0 {
                    prop_assert!(pair[0].1 < pair[1].1, "tie broke out of order");
                }
            }
        }
    }

    #[test]
    fn two_identical_schedules_replay_identically() {
        fn run() -> Vec<(SimTime, u32)> {
            let mut handler = Doubler {
                fired: Vec::new(),
                limit: 5,
            };
            let mut q = EventQueue::new();
            q.schedule(SimTime::ZERO, 1u32);
            run_until(&mut handler, &mut q, SimTime::MAX);
            handler.fired
        }
        assert_eq!(run(), run());
    }
}
