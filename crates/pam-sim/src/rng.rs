//! Seeded, reproducible randomness.
//!
//! Every stochastic choice in the workspace (traffic inter-arrival jitter,
//! flow 5-tuples, workload sampling) goes through [`SimRng`], which wraps a
//! ChaCha-based PRNG seeded explicitly. The experiment harness fixes seeds so
//! that paper-reproduction runs are bit-for-bit repeatable; tests derive
//! independent sub-streams with [`SimRng::fork`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random-number generator with the sampling helpers used across
/// the workspace.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for a named sub-stream. Forking keeps
    /// unrelated consumers (e.g. traffic vs. workload shuffling) from
    /// perturbing each other's sequences when one of them draws more values.
    pub fn fork(&self, stream: u64) -> SimRng {
        // SplitMix64-style mixing of (seed, stream) into a new seed.
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        SimRng::seed_from(z ^ (z >> 31))
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform `f64` in `[low, high)`.
    pub fn uniform_range(&mut self, low: f64, high: f64) -> f64 {
        if high <= low {
            return low;
        }
        low + self.uniform() * (high - low)
    }

    /// A uniform integer in `[0, n)`; `0` when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.inner.gen_range(0..n)
        }
    }

    /// A uniform integer in the inclusive range `[low, high]`.
    pub fn int_range(&mut self, low: u64, high: u64) -> u64 {
        if high <= low {
            return low;
        }
        self.inner.gen_range(low..=high)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// An exponentially distributed value with the given mean (used for
    /// Poisson arrival processes). Returns `0` for non-positive means.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF sampling; `1 - u` avoids ln(0).
        let u: f64 = self.uniform();
        -mean * (1.0 - u).ln()
    }

    /// A sample from a Zipf distribution over ranks `1..=n` with exponent
    /// `s`, via inverse-CDF over the precomputed weights of the caller.
    /// Kept here so flow-popularity sampling shares one implementation.
    pub fn zipf_rank(&mut self, cdf: &[f64]) -> usize {
        if cdf.is_empty() {
            return 0;
        }
        let u = self.uniform() * cdf[cdf.len() - 1];
        // CDF weights are finite by construction; treat a NaN probe as Less
        // so the search stays total instead of panicking.
        match cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => i,
            Err(i) => i.min(cdf.len() - 1),
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Access to the underlying [`rand::Rng`] for callers that need it.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        let seq_a: Vec<f64> = (0..32).map(|_| a.uniform()).collect();
        let seq_b: Vec<f64> = (0..32).map(|_| b.uniform()).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.seed(), 42);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let seq_a: Vec<u64> = (0..8).map(|_| a.int_range(0, u64::MAX - 1)).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.int_range(0, u64::MAX - 1)).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let root = SimRng::seed_from(7);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let mut f1_again = root.fork(1);
        assert_eq!(f1.uniform(), f1_again.uniform());
        let a: Vec<f64> = (0..8).map(|_| f1.uniform()).collect();
        let b: Vec<f64> = (0..8).map(|_| f2.uniform()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_range_and_index_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let v = rng.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
            let i = rng.index(10);
            assert!(i < 10);
            let n = rng.int_range(5, 9);
            assert!((5..=9).contains(&n));
        }
        assert_eq!(rng.index(0), 0);
        assert_eq!(rng.int_range(9, 3), 9);
        assert_eq!(rng.uniform_range(5.0, 2.0), 5.0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let mean = 4.0;
        let total: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.15,
            "sample mean {sample_mean}"
        );
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-1.0), 0.0);
    }

    #[test]
    fn chance_respects_probability() {
        let mut rng = SimRng::seed_from(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(13);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(items, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_rank_prefers_low_ranks() {
        // Build a Zipf CDF with exponent 1 over 100 ranks.
        let weights: Vec<f64> = (1..=100).map(|r| 1.0 / r as f64).collect();
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cdf.push(acc);
        }
        let mut rng = SimRng::seed_from(17);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[rng.zipf_rank(&cdf)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        assert_eq!(rng.zipf_rank(&[]), 0);
    }
}
