//! Deterministic fault injection: seeded schedules of crashes, link flaps
//! and capacity swings.
//!
//! A [`FaultPlan`] is a time-sorted schedule of [`FaultEvent`]s. It does
//! nothing by itself — the consumer (the fleet controller in `pam-fleet`)
//! schedules one queue event per plan entry on its own deterministic
//! [`crate::EventQueue`], so faults interleave with arrivals and control
//! ticks in a single replayable `(time, seq)` order and the run stays
//! byte-identical at any shard or job count.
//!
//! The fault shapes follow the volatility families named in the roadmap:
//! fail-stop server crashes with explicit recovery, mmWave-style link
//! blockage transients ([`FaultKind::LinkFlap`]) and AQM/WiFi-style capacity
//! swings ([`FaultKind::CapacitySwing`]). Plans are either written out
//! explicitly (the failure scenarios in `pam-experiments` do this, so the
//! schedule is part of the scenario definition) or generated from a seed via
//! [`FaultPlan::generate`].
//!
//! # Determinism
//!
//! Nothing here reads a clock or iterates a hash map: the plan is a sorted
//! `Vec`, the generator draws from the workspace's seeded [`SimRng`], and
//! serialisation is hand-written over scalar fields only.

use pam_types::{ServerId, SimDuration, SimTime};
use serde::value::{Map, Value};
use serde::{Deserialize, Error, Serialize};

use crate::rng::SimRng;

/// One kind of injected fault, aimed at one server of a fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop crash of the server's data plane: any staged migration
    /// target is discarded through the protocol's `TargetCrash` arc and the
    /// server stops accepting traffic until a matching
    /// [`FaultKind::ServerRecover`].
    ServerCrash {
        /// The server that crashes.
        server: ServerId,
    },
    /// The crashed server comes back. Consumers re-admit it behind a
    /// warm-up guard before it may receive spilled flows again.
    ServerRecover {
        /// The server that recovers.
        server: ServerId,
    },
    /// The server's PCIe/interconnect link goes dark for `down_for`
    /// (mmWave-style blockage transient): in-flight fair-share transfers
    /// stall and re-plan; the FIFO watermark is cleared at recovery so no
    /// phantom serialisation delay survives the outage.
    LinkFlap {
        /// The server whose link flaps.
        server: ServerId,
        /// How long the link stays dark.
        down_for: SimDuration,
    },
    /// The server's link capacity swings to `factor` × nominal for `period`
    /// (AQM/WiFi-style throughput dynamics), then restores. `factor` must be
    /// positive — a full outage is a [`FaultKind::LinkFlap`].
    CapacitySwing {
        /// The server whose link degrades.
        server: ServerId,
        /// Multiplier on the nominal bandwidth while the swing is active.
        factor: f64,
        /// How long the degraded capacity lasts.
        period: SimDuration,
    },
}

impl FaultKind {
    /// The server the fault is aimed at.
    pub fn server(&self) -> ServerId {
        match *self {
            FaultKind::ServerCrash { server }
            | FaultKind::ServerRecover { server }
            | FaultKind::LinkFlap { server, .. }
            | FaultKind::CapacitySwing { server, .. } => server,
        }
    }

    /// A short stable tag for serde and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::ServerCrash { .. } => "server_crash",
            FaultKind::ServerRecover { .. } => "server_recover",
            FaultKind::LinkFlap { .. } => "link_flap",
            FaultKind::CapacitySwing { .. } => "capacity_swing",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Tuning for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlanConfig {
    /// Crash/recover pairs to inject.
    pub crashes: usize,
    /// Link flaps to inject.
    pub flaps: usize,
    /// Capacity swings to inject.
    pub swings: usize,
    /// How long a crashed server stays down before its recovery event.
    pub downtime: SimDuration,
    /// How long a flap keeps the link dark.
    pub flap_down_for: SimDuration,
    /// Duration of each capacity swing.
    pub swing_period: SimDuration,
    /// Capacity multiplier drawn uniformly from `[swing_floor, 1.0)`.
    pub swing_floor: f64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            crashes: 1,
            flaps: 2,
            swings: 1,
            downtime: SimDuration::from_millis(4),
            flap_down_for: SimDuration::from_micros(600),
            swing_period: SimDuration::from_millis(2),
            swing_floor: 0.25,
        }
    }
}

/// A time-sorted, validated schedule of faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Builds a plan from arbitrary events; they are stably sorted by time,
    /// so equal-time faults keep their authoring order.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|event| event.at);
        FaultPlan { events }
    }

    /// The schedule, in ascending time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Checks the plan against a fleet of `servers` servers: every target
    /// index must exist, every duration must be positive, every swing factor
    /// must be positive (full outages are flaps), and every crash must come
    /// before its server's next recovery (crash/recover events per server
    /// must alternate, starting with a crash).
    pub fn validate(&self, servers: usize) -> Result<(), String> {
        let mut down = vec![false; servers];
        for event in &self.events {
            let index = event.kind.server().index();
            if index >= servers {
                return Err(format!(
                    "fault at {} targets server {index} of a {servers}-server fleet",
                    event.at
                ));
            }
            match event.kind {
                FaultKind::ServerCrash { .. } => {
                    if down[index] {
                        return Err(format!("server {index} crashes while already down"));
                    }
                    down[index] = true;
                }
                FaultKind::ServerRecover { .. } => {
                    if !down[index] {
                        return Err(format!("server {index} recovers without a crash"));
                    }
                    down[index] = false;
                }
                FaultKind::LinkFlap { down_for, .. } => {
                    if down_for.is_zero() {
                        return Err("link flap with zero down_for".to_owned());
                    }
                }
                FaultKind::CapacitySwing { factor, period, .. } => {
                    // NaN must be rejected too, hence not `factor <= 0.0`.
                    if factor.is_nan() || factor <= 0.0 {
                        return Err(format!(
                            "capacity swing factor {factor} must be positive (use a link flap)"
                        ));
                    }
                    if period.is_zero() {
                        return Err("capacity swing with zero period".to_owned());
                    }
                }
            }
        }
        Ok(())
    }

    /// Generates a seeded random plan over `servers` servers within
    /// `[0, horizon)`. The same `(seed, servers, horizon, config)` always
    /// yields the same plan; crash/recover pairs never overlap on one server
    /// and always validate.
    pub fn generate(
        seed: u64,
        servers: usize,
        horizon: SimDuration,
        config: &FaultPlanConfig,
    ) -> Self {
        let mut rng = SimRng::seed_from(seed).fork(0xFA17);
        let mut events = Vec::new();
        let horizon_ns = horizon.as_nanos();
        if servers == 0 || horizon_ns == 0 {
            return FaultPlan::new(events);
        }
        // Crash/recover pairs: pick disjoint per-server downtime windows by
        // never crashing a server that is still down.
        let mut down_until = vec![SimTime::ZERO; servers];
        for _ in 0..config.crashes {
            let server = rng.index(servers);
            let at = SimTime::from_nanos(rng.int_range(0, horizon_ns.saturating_sub(1)));
            if at < down_until[server] {
                continue; // still down at the drawn instant: skip this crash
            }
            let recover_at = at + config.downtime;
            down_until[server] = recover_at;
            events.push(FaultEvent {
                at,
                kind: FaultKind::ServerCrash {
                    server: ServerId::from(server),
                },
            });
            events.push(FaultEvent {
                at: recover_at,
                kind: FaultKind::ServerRecover {
                    server: ServerId::from(server),
                },
            });
        }
        for _ in 0..config.flaps {
            let server = ServerId::from(rng.index(servers));
            let at = SimTime::from_nanos(rng.int_range(0, horizon_ns.saturating_sub(1)));
            events.push(FaultEvent {
                at,
                kind: FaultKind::LinkFlap {
                    server,
                    down_for: config.flap_down_for,
                },
            });
        }
        for _ in 0..config.swings {
            let server = ServerId::from(rng.index(servers));
            let at = SimTime::from_nanos(rng.int_range(0, horizon_ns.saturating_sub(1)));
            let factor = rng.uniform_range(config.swing_floor.max(0.01), 1.0);
            events.push(FaultEvent {
                at,
                kind: FaultKind::CapacitySwing {
                    server,
                    factor,
                    period: config.swing_period,
                },
            });
        }
        FaultPlan::new(events)
    }
}

// Hand-serialised (the vendored serde derive has no enum/default support):
// each event is a flat object tagged by `kind`, with only the fields that
// kind uses. Unknown keys are ignored so plans stay forward-extensible.
impl Serialize for FaultEvent {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("at".to_owned(), self.at.to_value());
        map.insert("kind".to_owned(), Value::String(self.kind.tag().to_owned()));
        map.insert("server".to_owned(), self.kind.server().to_value());
        match self.kind {
            FaultKind::ServerCrash { .. } | FaultKind::ServerRecover { .. } => {}
            FaultKind::LinkFlap { down_for, .. } => {
                map.insert("down_for".to_owned(), down_for.to_value());
            }
            FaultKind::CapacitySwing { factor, period, .. } => {
                map.insert("factor".to_owned(), factor.to_value());
                map.insert("period".to_owned(), period.to_value());
            }
        }
        Value::Object(map)
    }
}

impl Deserialize for FaultEvent {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = match value {
            Value::Object(map) => map,
            _ => return Err(Error::custom("fault event must be an object")),
        };
        let at = SimTime::from_value(
            map.get("at")
                .ok_or_else(|| Error::custom("fault event missing `at`"))?,
        )?;
        let server = ServerId::from_value(
            map.get("server")
                .ok_or_else(|| Error::custom("fault event missing `server`"))?,
        )?;
        let kind = match map.get("kind") {
            Some(Value::String(tag)) => tag.as_str(),
            _ => return Err(Error::custom("fault event missing string `kind`")),
        };
        let kind = match kind {
            "server_crash" => FaultKind::ServerCrash { server },
            "server_recover" => FaultKind::ServerRecover { server },
            "link_flap" => FaultKind::LinkFlap {
                server,
                down_for: SimDuration::from_value(
                    map.get("down_for")
                        .ok_or_else(|| Error::custom("link_flap missing `down_for`"))?,
                )?,
            },
            "capacity_swing" => FaultKind::CapacitySwing {
                server,
                factor: f64::from_value(
                    map.get("factor")
                        .ok_or_else(|| Error::custom("capacity_swing missing `factor`"))?,
                )?,
                period: SimDuration::from_value(
                    map.get("period")
                        .ok_or_else(|| Error::custom("capacity_swing missing `period`"))?,
                )?,
            },
            other => return Err(Error::custom(format!("unknown fault kind `{other}`"))),
        };
        Ok(FaultEvent { at, kind })
    }
}

impl Serialize for FaultPlan {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert(
            "events".to_owned(),
            Value::Array(self.events.iter().map(Serialize::to_value).collect()),
        );
        Value::Object(map)
    }
}

impl Deserialize for FaultPlan {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = match value {
            Value::Object(map) => map,
            _ => return Err(Error::custom("fault plan must be an object")),
        };
        let events = match map.get("events") {
            Some(Value::Array(items)) => items
                .iter()
                .map(FaultEvent::from_value)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(Error::custom("`events` must be an array")),
            None => Vec::new(),
        };
        Ok(FaultPlan::new(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(at_us: u64, server: usize) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_micros(at_us),
            kind: FaultKind::ServerCrash {
                server: ServerId::from(server),
            },
        }
    }

    fn recover(at_us: u64, server: usize) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_micros(at_us),
            kind: FaultKind::ServerRecover {
                server: ServerId::from(server),
            },
        }
    }

    #[test]
    fn plans_sort_stably_by_time() {
        let plan = FaultPlan::new(vec![recover(300, 0), crash(100, 0)]);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.events()[0].at, SimTime::from_micros(100));
        assert_eq!(plan.events()[1].at, SimTime::from_micros(300));
        assert!(plan.validate(1).is_ok());
    }

    #[test]
    fn validate_rejects_bad_targets_and_orders() {
        assert!(FaultPlan::new(vec![crash(1, 5)]).validate(2).is_err());
        assert!(FaultPlan::new(vec![recover(1, 0)]).validate(2).is_err());
        assert!(FaultPlan::new(vec![crash(1, 0), crash(2, 0)])
            .validate(2)
            .is_err());
        assert!(FaultPlan::new(vec![FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::LinkFlap {
                server: ServerId::new(0),
                down_for: SimDuration::ZERO,
            },
        }])
        .validate(1)
        .is_err());
        assert!(FaultPlan::new(vec![FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::CapacitySwing {
                server: ServerId::new(0),
                factor: 0.0,
                period: SimDuration::from_micros(1),
            },
        }])
        .validate(1)
        .is_err());
        let good = FaultPlan::new(vec![crash(1, 0), recover(2, 0), crash(3, 0), recover(4, 0)]);
        assert!(good.validate(1).is_ok());
    }

    #[test]
    fn generated_plans_are_seed_deterministic_and_valid() {
        let config = FaultPlanConfig {
            crashes: 3,
            flaps: 4,
            swings: 3,
            ..FaultPlanConfig::default()
        };
        let a = FaultPlan::generate(42, 4, SimDuration::from_millis(30), &config);
        let b = FaultPlan::generate(42, 4, SimDuration::from_millis(30), &config);
        assert_eq!(a, b, "same seed must generate the same plan");
        assert!(a.validate(4).is_ok());
        assert!(!a.is_empty());
        let c = FaultPlan::generate(43, 4, SimDuration::from_millis(30), &config);
        assert_ne!(a, c, "different seeds should differ");
        // Degenerate inputs are fine.
        assert!(FaultPlan::generate(1, 0, SimDuration::from_millis(1), &config).is_empty());
        assert!(FaultPlan::generate(1, 4, SimDuration::ZERO, &config).is_empty());
    }

    #[test]
    fn plans_round_trip_through_serde() {
        let plan = FaultPlan::new(vec![
            crash(100, 1),
            recover(5_000, 1),
            FaultEvent {
                at: SimTime::from_micros(700),
                kind: FaultKind::LinkFlap {
                    server: ServerId::new(0),
                    down_for: SimDuration::from_micros(300),
                },
            },
            FaultEvent {
                at: SimTime::from_micros(900),
                kind: FaultKind::CapacitySwing {
                    server: ServerId::new(2),
                    factor: 0.4,
                    period: SimDuration::from_millis(2),
                },
            },
        ]);
        let value = plan.to_value();
        let back = FaultPlan::from_value(&value).unwrap();
        assert_eq!(back, plan);
        // An empty object is an empty plan (forward compatibility).
        assert!(FaultPlan::from_value(&Value::Object(Map::new()))
            .unwrap()
            .is_empty());
        assert!(FaultPlan::from_value(&Value::Bool(true)).is_err());
    }

    #[test]
    fn kind_accessors_cover_every_variant() {
        let kinds = [
            FaultKind::ServerCrash {
                server: ServerId::new(3),
            },
            FaultKind::ServerRecover {
                server: ServerId::new(3),
            },
            FaultKind::LinkFlap {
                server: ServerId::new(3),
                down_for: SimDuration::from_micros(1),
            },
            FaultKind::CapacitySwing {
                server: ServerId::new(3),
                factor: 0.5,
                period: SimDuration::from_micros(1),
            },
        ];
        let tags: Vec<_> = kinds.iter().map(FaultKind::tag).collect();
        assert_eq!(
            tags,
            [
                "server_crash",
                "server_recover",
                "link_flap",
                "capacity_swing"
            ]
        );
        for kind in kinds {
            assert_eq!(kind.server(), ServerId::new(3));
        }
    }
}
