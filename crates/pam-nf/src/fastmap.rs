//! A fixed-key open-addressing hash map for `u64` flow keys.
//!
//! The per-packet hot path of every stateful vNF is one [`FlowTable`] lookup
//! keyed by a [`FlowId`]'s raw `u64`. `std::collections::HashMap` pays
//! SipHash-1-3 on every one of those — a keyed, DoS-resistant hash that the
//! simulator does not need (flow keys are internal, not attacker-chosen, and
//! the hash never influences any observable output). This module vendors the
//! standard cure, in the style of `rustc-hash`/`FxHashMap`: a fixed-key
//! multiplicative hash plus linear-probe open addressing with backward-shift
//! deletion, so lookups are one multiply and (usually) one cache line, and
//! deletions leave no tombstones to rescan.
//!
//! Determinism note: nothing observable depends on this map's iteration
//! order — [`FlowTable`] keeps its own insertion-order list for exports —
//! but the map is deterministic anyway (fixed hash constant, no per-process
//! random state), which keeps debugging reproducible.
//!
//! [`FlowTable`]: crate::flow_table::FlowTable
//! [`FlowId`]: pam_types::FlowId

/// The 64-bit Fibonacci/FxHash multiplier (`2^64 / φ`, forced odd), the same
/// constant `rustc-hash` uses for its word mixer.
const FX_MULTIPLIER: u64 = 0x517c_c1b7_2722_0a95;

/// Minimum number of slots (must be a power of two).
const MIN_SLOTS: usize = 16;

/// Mixes a key into a slot index for a table of `2^shift_bits` slots, using
/// the *high* multiplier bits (the well-mixed ones in a multiplicative hash).
#[inline]
fn spread(key: u64) -> u64 {
    key.wrapping_mul(FX_MULTIPLIER)
}

/// A `u64 -> V` hash map: fixed-key FxHash, linear probing, backward-shift
/// deletion, power-of-two capacity. Grows at 7/8 load.
#[derive(Debug, Clone)]
pub struct FlowMap<V> {
    slots: Vec<Option<(u64, V)>>,
    len: usize,
    /// `slots.len() - 1`; slot count is always a power of two.
    mask: usize,
    /// `64 - log2(slots.len())`: the hash is shifted down by this.
    shift: u32,
}

impl<V> Default for FlowMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> FlowMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        FlowMap {
            slots: (0..MIN_SLOTS).map(|_| None).collect(),
            len: 0,
            mask: MIN_SLOTS - 1,
            shift: 64 - MIN_SLOTS.trailing_zeros(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (spread(key) >> self.shift) as usize
    }

    /// The slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mut index = self.home(key);
        loop {
            match &self.slots[index] {
                Some((k, _)) if *k == key => return Some(index),
                Some(_) => index = (index + 1) & self.mask,
                None => return None,
            }
        }
    }

    /// A shared reference to the value for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key)
            .and_then(|i| self.slots[i].as_ref())
            .map(|(_, v)| v)
    }

    /// A mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key)
            .and_then(|i| self.slots[i].as_mut())
            .map(|(_, v)| v)
    }

    /// True when `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts or replaces the value for `key`; returns the previous value.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if (self.len + 1) * 8 >= self.slots.len() * 7 {
            self.grow();
        }
        let mut index = self.home(key);
        loop {
            match &mut self.slots[index] {
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => index = (index + 1) & self.mask,
                None => {
                    self.slots[index] = Some((key, value));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// Removes `key`, returning its value. Uses backward-shift deletion:
    /// every displaced successor in the probe chain moves one hole closer to
    /// its home slot, so no tombstones accumulate.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find(key)?;
        let (_, value) = self.slots[hole].take()?;
        self.len -= 1;
        let mut probe = hole;
        loop {
            probe = (probe + 1) & self.mask;
            let Some((k, _)) = &self.slots[probe] else {
                break;
            };
            let home = self.home(*k);
            // Keep the entry where it is only if its home lies cyclically
            // within (hole, probe]; otherwise it belongs at or before the
            // hole and must shift back into it.
            let stays = if hole < probe {
                home > hole && home <= probe
            } else {
                home > hole || home <= probe
            };
            if !stays {
                self.slots.swap(hole, probe);
                hole = probe;
            }
        }
        Some(value)
    }

    /// Removes every entry, keeping the allocated capacity.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| None).collect());
        self.mask = new_cap - 1;
        self.shift = 64 - new_cap.trailing_zeros();
        for slot in old.into_iter().flatten() {
            let (key, value) = slot;
            let mut index = self.home(key);
            while self.slots[index].is_some() {
                index = (index + 1) & self.mask;
            }
            self.slots[index] = Some((key, value));
        }
    }
}

/// A `u64` set on top of [`FlowMap`].
#[derive(Debug, Clone, Default)]
pub struct FlowSet {
    map: FlowMap<()>,
}

impl FlowSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        FlowSet::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the set holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Adds `key`; returns true when it was newly inserted.
    pub fn insert(&mut self, key: u64) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Removes `key`; returns true when it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        self.map.remove(key).is_some()
    }

    /// True when `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains(key)
    }

    /// Removes every key, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut map: FlowMap<u32> = FlowMap::new();
        assert!(map.is_empty());
        assert_eq!(map.insert(7, 70), None);
        assert_eq!(map.insert(7, 71), Some(70));
        assert_eq!(map.get(7), Some(&71));
        *map.get_mut(7).unwrap() += 1;
        assert_eq!(map.get(7), Some(&72));
        assert!(map.contains(7));
        assert!(!map.contains(8));
        assert_eq!(map.remove(7), Some(72));
        assert_eq!(map.remove(7), None);
        assert!(map.is_empty());
    }

    #[test]
    fn grows_past_the_initial_capacity() {
        let mut map: FlowMap<u64> = FlowMap::new();
        for key in 0..10_000u64 {
            map.insert(key, key * 3);
        }
        assert_eq!(map.len(), 10_000);
        for key in 0..10_000u64 {
            assert_eq!(map.get(key), Some(&(key * 3)), "key {key}");
        }
    }

    #[test]
    fn colliding_keys_probe_and_delete_correctly() {
        // Keys differing only in bits the multiplicative hash maps to the
        // same small-table slot: force long probe chains, then delete from
        // the middle and verify the chain stays reachable (backward shift).
        let mut map: FlowMap<u64> = FlowMap::new();
        let colliders: Vec<u64> = (0..12).map(|i| i << 32).collect();
        for &k in &colliders {
            map.insert(k, k + 1);
        }
        // Remove every second key, then check the rest.
        for &k in colliders.iter().step_by(2) {
            assert_eq!(map.remove(k), Some(k + 1));
        }
        for (i, &k) in colliders.iter().enumerate() {
            if i % 2 == 0 {
                assert!(!map.contains(k));
            } else {
                assert_eq!(map.get(k), Some(&(k + 1)));
            }
        }
    }

    #[test]
    fn extreme_keys_are_ordinary_keys() {
        let mut map: FlowMap<&'static str> = FlowMap::new();
        map.insert(0, "zero");
        map.insert(u64::MAX, "max");
        map.insert(u64::MAX - 1, "max-1");
        assert_eq!(map.get(0), Some(&"zero"));
        assert_eq!(map.get(u64::MAX), Some(&"max"));
        assert_eq!(map.remove(u64::MAX - 1), Some("max-1"));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn clear_keeps_capacity_but_drops_entries() {
        let mut map: FlowMap<u32> = FlowMap::new();
        for key in 0..100 {
            map.insert(key, 1);
        }
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.get(5), None);
        map.insert(5, 2);
        assert_eq!(map.get(5), Some(&2));
    }

    #[test]
    fn set_semantics() {
        let mut set = FlowSet::new();
        assert!(set.insert(9));
        assert!(!set.insert(9));
        assert!(set.contains(9));
        assert_eq!(set.len(), 1);
        assert!(set.remove(9));
        assert!(!set.remove(9));
        assert!(set.is_empty());
        set.insert(1);
        set.clear();
        assert!(set.is_empty());
    }

    /// Differential check against `std::collections::HashMap` over a large
    /// pseudo-random op sequence (the map must behave identically for every
    /// get/insert/remove outcome).
    #[test]
    fn differential_against_std_hashmap() {
        let mut ours: FlowMap<u64> = FlowMap::new();
        let mut std_map: HashMap<u64, u64> = HashMap::new();
        let mut state = 0x243F_6A88_85A3_08D3u64; // deterministic LCG
        for step in 0..50_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) % 512; // small key space → heavy churn
            match state % 4 {
                0 => {
                    assert_eq!(ours.insert(key, step), std_map.insert(key, step));
                }
                1 => {
                    assert_eq!(ours.remove(key), std_map.remove(&key));
                }
                _ => {
                    assert_eq!(ours.get(key), std_map.get(&key));
                    assert_eq!(ours.contains(key), std_map.contains_key(&key));
                }
            }
            assert_eq!(ours.len(), std_map.len());
        }
    }
}
