//! A deep-packet-inspection vNF.
//!
//! Scans transport payloads for a set of byte-pattern signatures and drops
//! (or just flags) matching packets. The scanner is a straightforward
//! multi-pattern search; the point here is not string-matching throughput but
//! having a payload-touching vNF whose capacity profile is far lower than the
//! header-only vNFs, which the ablation experiments use to build chains with
//! different hot-spot positions.

use pam_types::Result;
use serde::{Deserialize, Serialize};

use crate::nf::{NetworkFunction, NfContext, NfKind, NfState, NfVerdict};
use crate::packet::Packet;

/// One DPI signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpiRule {
    /// Human-readable rule name.
    pub name: String,
    /// The byte pattern to search for in the transport payload.
    pub pattern: Vec<u8>,
    /// Whether matching packets are dropped (true) or just counted (false).
    pub drop_on_match: bool,
}

impl DpiRule {
    /// A dropping rule.
    pub fn drop(name: &str, pattern: &[u8]) -> Self {
        DpiRule {
            name: name.to_string(),
            pattern: pattern.to_vec(),
            drop_on_match: true,
        }
    }

    /// An alert-only rule.
    pub fn alert(name: &str, pattern: &[u8]) -> Self {
        DpiRule {
            name: name.to_string(),
            pattern: pattern.to_vec(),
            drop_on_match: false,
        }
    }
}

/// Serialised DPI state (rules and counters).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct DpiState {
    rules: Vec<DpiRule>,
    scanned: u64,
    matches: Vec<u64>,
    dropped: u64,
}

/// The DPI vNF.
#[derive(Debug)]
pub struct DpiEngine {
    rules: Vec<DpiRule>,
    scanned: u64,
    matches: Vec<u64>,
    dropped: u64,
}

impl DpiEngine {
    /// Creates a DPI engine with the given signatures.
    pub fn new(rules: Vec<DpiRule>) -> Self {
        let matches = vec![0; rules.len()];
        DpiEngine {
            rules,
            scanned: 0,
            matches,
            dropped: 0,
        }
    }

    /// The rule set used by the examples: a few classic probe signatures.
    pub fn evaluation_default() -> Self {
        DpiEngine::new(vec![
            DpiRule::drop("exploit-shellcode", b"\x90\x90\x90\x90\x90\x90\x90\x90"),
            DpiRule::drop("sql-injection", b"' OR '1'='1"),
            DpiRule::alert("plaintext-password", b"password="),
        ])
    }

    /// The configured rules.
    pub fn rules(&self) -> &[DpiRule] {
        &self.rules
    }

    /// Packets scanned.
    pub fn scanned(&self) -> u64 {
        self.scanned
    }

    /// Packets dropped by a matching drop rule.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Match count per rule, in rule order.
    pub fn match_counts(&self) -> &[u64] {
        &self.matches
    }

    fn payload_contains(payload: &[u8], pattern: &[u8]) -> bool {
        if pattern.is_empty() || pattern.len() > payload.len() {
            return false;
        }
        payload.windows(pattern.len()).any(|w| w == pattern)
    }
}

impl NetworkFunction for DpiEngine {
    fn kind(&self) -> NfKind {
        NfKind::Dpi
    }

    fn process(&mut self, packet: &mut Packet, _ctx: &NfContext) -> NfVerdict {
        self.scanned += 1;
        let payload = packet.transport_payload();
        if payload.is_empty() {
            return NfVerdict::Forward;
        }
        let mut verdict = NfVerdict::Forward;
        for (index, rule) in self.rules.iter().enumerate() {
            if Self::payload_contains(payload, &rule.pattern) {
                self.matches[index] += 1;
                if rule.drop_on_match {
                    verdict = NfVerdict::Drop;
                }
            }
        }
        if verdict == NfVerdict::Drop {
            self.dropped += 1;
        }
        verdict
    }

    fn export_state(&self) -> NfState {
        let state = DpiState {
            rules: self.rules.clone(),
            scanned: self.scanned,
            matches: self.matches.clone(),
            dropped: self.dropped,
        };
        NfState::encode(NfKind::Dpi, &state)
    }

    fn import_state(&mut self, state: NfState) -> Result<()> {
        let decoded: DpiState = state.decode(NfKind::Dpi)?;
        self.rules = decoded.rules;
        self.scanned = decoded.scanned;
        self.matches = decoded.matches;
        self.matches.resize(self.rules.len(), 0);
        self.dropped = decoded.dropped;
        Ok(())
    }

    fn reset(&mut self) {
        self.scanned = 0;
        self.matches = vec![0; self.rules.len()];
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::SimTime;
    use pam_wire::{EthernetFrame, Ipv4Packet, PacketBuilder, TransportKind, UdpDatagram};

    /// Builds a UDP packet whose payload contains `needle` somewhere inside filler.
    fn packet_with_payload(needle: &[u8]) -> Packet {
        let total = 64 + needle.len() + 200;
        let mut bytes = PacketBuilder::new()
            .transport(TransportKind::Udp)
            .total_len(total)
            .payload_byte(b'x')
            .build();
        // Splice the needle into the middle of the UDP payload and refresh the
        // UDP checksum so the packet stays wire-valid.
        let eth_payload_start = 14;
        let (src, dst);
        {
            let ip = Ipv4Packet::new_checked(&bytes[eth_payload_start..]).unwrap();
            src = ip.src_addr().octets();
            dst = ip.dst_addr().octets();
        }
        let udp_start = eth_payload_start + 20;
        let mut udp = UdpDatagram::new_unchecked(&mut bytes[udp_start..]);
        let payload = udp.payload_mut();
        let offset = 50;
        payload[offset..offset + needle.len()].copy_from_slice(needle);
        udp.fill_checksum(src, dst);
        // Sanity: the frame still parses.
        EthernetFrame::new_checked(&bytes[..]).unwrap();
        Packet::from_bytes(0, bytes, SimTime::ZERO)
    }

    #[test]
    fn clean_traffic_is_forwarded() {
        let mut dpi = DpiEngine::evaluation_default();
        let mut p = packet_with_payload(b"hello world");
        assert_eq!(
            dpi.process(&mut p, &NfContext::at(SimTime::ZERO)),
            NfVerdict::Forward
        );
        assert_eq!(dpi.scanned(), 1);
        assert_eq!(dpi.dropped(), 0);
    }

    #[test]
    fn drop_rule_drops_matching_packets() {
        let mut dpi = DpiEngine::evaluation_default();
        let mut p = packet_with_payload(b"' OR '1'='1");
        assert_eq!(
            dpi.process(&mut p, &NfContext::at(SimTime::ZERO)),
            NfVerdict::Drop
        );
        assert_eq!(dpi.dropped(), 1);
        assert_eq!(dpi.match_counts()[1], 1);
    }

    #[test]
    fn alert_rule_counts_but_forwards() {
        let mut dpi = DpiEngine::evaluation_default();
        let mut p = packet_with_payload(b"password=hunter2");
        assert_eq!(
            dpi.process(&mut p, &NfContext::at(SimTime::ZERO)),
            NfVerdict::Forward
        );
        assert_eq!(dpi.match_counts()[2], 1);
        assert_eq!(dpi.dropped(), 0);
    }

    #[test]
    fn multiple_rules_can_match_one_packet() {
        let mut dpi = DpiEngine::new(vec![
            DpiRule::alert("a", b"password="),
            DpiRule::drop("b", b"hunter2"),
        ]);
        let mut p = packet_with_payload(b"password=hunter2");
        assert_eq!(
            dpi.process(&mut p, &NfContext::at(SimTime::ZERO)),
            NfVerdict::Drop
        );
        assert_eq!(dpi.match_counts(), &[1, 1]);
    }

    #[test]
    fn pattern_matching_edge_cases() {
        assert!(!DpiEngine::payload_contains(b"abc", b""));
        assert!(!DpiEngine::payload_contains(b"ab", b"abc"));
        assert!(DpiEngine::payload_contains(b"abc", b"abc"));
        assert!(DpiEngine::payload_contains(b"xxabcxx", b"abc"));
        assert!(!DpiEngine::payload_contains(b"xxabXcxx", b"abc"));
    }

    #[test]
    fn empty_payload_packets_are_forwarded() {
        let mut dpi = DpiEngine::evaluation_default();
        let bytes = PacketBuilder::new()
            .transport(TransportKind::Udp)
            .total_len(42)
            .build();
        let mut p = Packet::from_bytes(0, bytes, SimTime::ZERO);
        assert_eq!(
            dpi.process(&mut p, &NfContext::at(SimTime::ZERO)),
            NfVerdict::Forward
        );
    }

    #[test]
    fn state_round_trip() {
        let mut dpi = DpiEngine::evaluation_default();
        dpi.process(
            &mut packet_with_payload(b"' OR '1'='1"),
            &NfContext::at(SimTime::ZERO),
        );
        let state = dpi.export_state();
        let mut restored = DpiEngine::new(vec![]);
        restored.import_state(state).unwrap();
        assert_eq!(restored.rules().len(), 3);
        assert_eq!(restored.scanned(), 1);
        assert_eq!(restored.dropped(), 1);
        assert_eq!(restored.flow_count(), 0);
        assert!(restored.import_state(NfState::empty(NfKind::Nat)).is_err());
    }

    #[test]
    fn reset_clears_counters_but_keeps_rules() {
        let mut dpi = DpiEngine::evaluation_default();
        dpi.process(
            &mut packet_with_payload(b"password=x"),
            &NfContext::at(SimTime::ZERO),
        );
        dpi.reset();
        assert_eq!(dpi.scanned(), 0);
        assert_eq!(dpi.match_counts(), &[0, 0, 0]);
        assert_eq!(dpi.rules().len(), 3);
        assert_eq!(dpi.kind(), NfKind::Dpi);
    }
}
