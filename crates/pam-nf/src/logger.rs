//! The sampling packet logger vNF.
//!
//! Records a bounded ring of log entries describing sampled packets. Two
//! properties matter for the reproduction:
//!
//! * the logger *samples* — by default it logs one packet in four
//!   (`sample_every = 4`), which is the interpretation that reconciles the
//!   poster's Table 1 (Logger has the lowest raw SmartNIC capacity) with its
//!   Figure 1(b) (the Monitor, not the Logger, is the hot spot); the sampling
//!   fraction corresponds to the `load_factor` of its capacity profile;
//! * its runtime state (the ring buffer) is small, so PAM's choice to migrate
//!   the Logger is also the cheapest state transfer in the chain.

use std::collections::VecDeque;

use pam_types::Result;
use serde::{Deserialize, Serialize};

use crate::nf::{NetworkFunction, NfContext, NfKind, NfState, NfVerdict};
use crate::packet::Packet;

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Nanosecond timestamp of the logged packet.
    pub timestamp_nanos: u64,
    /// Flow the packet belonged to.
    pub flow: u64,
    /// Packet size in bytes.
    pub size: u64,
    /// Human-readable description of the packet's 5-tuple.
    pub summary: String,
}

/// Serialised logger state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct LoggerState {
    entries: Vec<LogEntry>,
    observed: u64,
    logged: u64,
    sample_every: u64,
}

/// One pre-copy round's worth of logger state: the ring entries appended
/// since the last round (always the tail of the ring — appends happen at the
/// back, evictions only at the front) plus the counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct LoggerDelta {
    appended: Vec<LogEntry>,
    observed: u64,
    logged: u64,
    sample_every: u64,
}

/// The sampling logger vNF.
#[derive(Debug)]
pub struct Logger {
    /// The ring, oldest entry at the front. A `VecDeque` keeps steady-state
    /// eviction O(1); the old `Vec::remove(0)` memmoved the whole 4096-entry
    /// ring for every sampled packet once it filled.
    entries: VecDeque<LogEntry>,
    /// Ring entries appended since the last `clear_dirty` (saturates at the
    /// ring capacity: older appends have been evicted again).
    appended_since_clear: usize,
    capacity: usize,
    sample_every: u64,
    observed: u64,
    logged: u64,
}

impl Logger {
    /// Creates a logger with a ring of `capacity` entries that logs one
    /// packet out of every `sample_every` (values of 0 are treated as 1).
    pub fn new(capacity: usize, sample_every: u64) -> Self {
        Logger {
            entries: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            appended_since_clear: 0,
            capacity: capacity.max(1),
            sample_every: sample_every.max(1),
            observed: 0,
            logged: 0,
        }
    }

    /// The logger used by the evaluation scenarios: a 4096-entry ring that
    /// samples one packet in four (matching the Figure 1 scenario's
    /// `load_factor = 0.25`).
    pub fn evaluation_default() -> Self {
        Logger::new(4096, 4)
    }

    /// Number of packets observed (logged or not).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of packets actually logged.
    pub fn logged(&self) -> u64 {
        self.logged
    }

    /// The current ring contents, oldest first.
    pub fn entries(&self) -> &VecDeque<LogEntry> {
        &self.entries
    }

    /// The sampling period (1 = log everything).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }
}

impl NetworkFunction for Logger {
    fn kind(&self) -> NfKind {
        NfKind::Logger
    }

    fn process(&mut self, packet: &mut Packet, ctx: &NfContext) -> NfVerdict {
        self.observed += 1;
        if self.observed % self.sample_every != 0 {
            return NfVerdict::Forward;
        }
        let summary = match packet.five_tuple() {
            Some(tuple) => tuple.to_string(),
            None => format!("non-ip frame of {} bytes", packet.size().as_bytes()),
        };
        if self.entries.len() >= self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(LogEntry {
            timestamp_nanos: ctx.now.as_nanos(),
            flow: packet.flow_id().raw(),
            size: packet.size().as_bytes(),
            summary,
        });
        self.appended_since_clear = (self.appended_since_clear + 1).min(self.capacity);
        self.logged += 1;
        NfVerdict::Forward
    }

    fn export_state(&self) -> NfState {
        let state = LoggerState {
            entries: self.entries.iter().cloned().collect(),
            observed: self.observed,
            logged: self.logged,
            sample_every: self.sample_every,
        };
        NfState::encode(NfKind::Logger, &state)
    }

    fn import_state(&mut self, state: NfState) -> Result<()> {
        let decoded: LoggerState = state.decode(NfKind::Logger)?;
        self.entries = VecDeque::from(decoded.entries);
        if self.entries.len() > self.capacity {
            let excess = self.entries.len() - self.capacity;
            self.entries.drain(..excess);
        }
        self.observed = decoded.observed;
        self.logged = decoded.logged;
        self.sample_every = decoded.sample_every.max(1);
        self.appended_since_clear = 0;
        Ok(())
    }

    fn flow_count(&self) -> usize {
        self.entries.len()
    }

    fn clear_dirty(&mut self) {
        self.appended_since_clear = 0;
    }

    fn dirty_flow_count(&self) -> usize {
        self.appended_since_clear.min(self.entries.len())
    }

    fn export_dirty_state(&self) -> NfState {
        // Entries appended since the last clear are exactly the ring's tail.
        let tail = self.dirty_flow_count();
        let delta = LoggerDelta {
            appended: self
                .entries
                .iter()
                .skip(self.entries.len() - tail)
                .cloned()
                .collect(),
            observed: self.observed,
            logged: self.logged,
            sample_every: self.sample_every,
        };
        NfState::encode(NfKind::Logger, &delta)
    }

    fn import_dirty_state(&mut self, state: NfState) -> Result<()> {
        let delta: LoggerDelta = state.decode(NfKind::Logger)?;
        self.entries.extend(delta.appended);
        if self.entries.len() > self.capacity {
            let excess = self.entries.len() - self.capacity;
            self.entries.drain(..excess);
        }
        self.observed = delta.observed;
        self.logged = delta.logged;
        self.sample_every = delta.sample_every.max(1);
        Ok(())
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.appended_since_clear = 0;
        self.observed = 0;
        self.logged = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::SimTime;
    use pam_wire::{PacketBuilder, TransportKind};
    use std::net::Ipv4Addr;

    fn packet(n: u64) -> Packet {
        let bytes = PacketBuilder::new()
            .ips(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 9, 9, 9))
            .ports(5000 + n as u16, 443)
            .transport(TransportKind::Tcp)
            .total_len(100)
            .build();
        Packet::from_bytes(n, bytes, SimTime::from_micros(n))
    }

    #[test]
    fn samples_one_in_n() {
        let mut logger = Logger::new(1000, 4);
        for i in 0..100 {
            let verdict = logger.process(&mut packet(i), &NfContext::at(SimTime::from_micros(i)));
            assert_eq!(verdict, NfVerdict::Forward);
        }
        assert_eq!(logger.observed(), 100);
        assert_eq!(logger.logged(), 25);
        assert_eq!(logger.entries().len(), 25);
        assert_eq!(logger.sample_every(), 4);
    }

    #[test]
    fn sample_every_one_logs_everything() {
        let mut logger = Logger::new(1000, 1);
        for i in 0..10 {
            logger.process(&mut packet(i), &NfContext::at(SimTime::ZERO));
        }
        assert_eq!(logger.logged(), 10);
        // Zero is clamped to one.
        assert_eq!(Logger::new(10, 0).sample_every(), 1);
    }

    #[test]
    fn ring_buffer_keeps_newest_entries() {
        let mut logger = Logger::new(5, 1);
        for i in 0..20 {
            logger.process(&mut packet(i), &NfContext::at(SimTime::from_micros(i)));
        }
        assert_eq!(logger.entries().len(), 5);
        // Oldest remaining entry is from packet 15.
        assert_eq!(logger.entries()[0].timestamp_nanos, 15_000);
        assert_eq!(logger.entries()[4].timestamp_nanos, 19_000);
        assert_eq!(logger.logged(), 20);
    }

    #[test]
    fn log_entries_describe_the_packet() {
        let mut logger = Logger::new(10, 1);
        logger.process(&mut packet(3), &NfContext::at(SimTime::from_micros(7)));
        let entry = &logger.entries()[0];
        assert_eq!(entry.size, 100);
        assert!(entry.summary.contains("TCP"));
        assert!(entry.summary.contains("10.0.0.1"));
        assert_eq!(entry.timestamp_nanos, 7_000);
    }

    #[test]
    fn non_ip_packets_are_still_loggable() {
        let mut logger = Logger::new(10, 1);
        let mut junk = Packet::from_bytes(1, vec![0u8; 33], SimTime::ZERO);
        logger.process(&mut junk, &NfContext::at(SimTime::ZERO));
        assert!(logger.entries()[0].summary.contains("non-ip"));
    }

    #[test]
    fn state_round_trip_and_capacity_clamp() {
        let mut source = Logger::new(100, 2);
        for i in 0..50 {
            source.process(&mut packet(i), &NfContext::at(SimTime::from_micros(i)));
        }
        let state = source.export_state();

        // Import into a logger with a smaller ring: the oldest entries are dropped.
        let mut small = Logger::new(10, 1);
        small.import_state(state.clone()).unwrap();
        assert_eq!(small.entries().len(), 10);
        assert_eq!(small.observed(), 50);
        assert_eq!(small.logged(), 25);
        assert_eq!(small.sample_every(), 2);

        // Import into an equal-sized logger preserves everything.
        let mut same = Logger::new(100, 1);
        same.import_state(state).unwrap();
        assert_eq!(same.entries().len(), 25);
    }

    #[test]
    fn logger_state_is_much_smaller_than_monitor_state() {
        use crate::monitor::FlowMonitor;
        use crate::nf::NetworkFunction as _;

        let mut logger = Logger::evaluation_default();
        let mut monitor = FlowMonitor::evaluation_default();
        for i in 0..2000 {
            let mut p = packet(i);
            logger.process(&mut p, &NfContext::at(SimTime::ZERO));
            monitor.process(&mut p, &NfContext::at(SimTime::ZERO));
        }
        let logger_size = logger.export_state().estimated_size;
        let monitor_size = monitor.export_state().estimated_size;
        assert!(
            monitor_size.as_bytes() > logger_size.as_bytes(),
            "monitor state ({monitor_size}) should exceed logger state ({logger_size})"
        );
    }

    #[test]
    fn reset_and_wrong_kind_import() {
        let mut logger = Logger::new(10, 1);
        logger.process(&mut packet(1), &NfContext::at(SimTime::ZERO));
        logger.reset();
        assert_eq!(logger.observed(), 0);
        assert!(logger.entries().is_empty());
        assert!(logger
            .import_state(NfState::empty(NfKind::Monitor))
            .is_err());
        assert_eq!(logger.kind(), NfKind::Logger);
    }
}
