//! The flow monitor vNF.
//!
//! Keeps per-flow packet and byte counters plus a running heavy-hitter list —
//! the classic traffic-monitoring middlebox. It touches every packet, which
//! is exactly why it becomes the SmartNIC hot spot in the poster's Figure 1
//! scenario, and it carries the largest per-flow state of the Figure 1 chain,
//! which is what makes migrating it (the naive strategy) not only add PCIe
//! crossings but also pause traffic for longer than migrating the Logger.

use pam_types::Result;
use serde::{Deserialize, Serialize};

use crate::flow_table::FlowTable;
use crate::nf::{NetworkFunction, NfContext, NfKind, NfState, NfVerdict};
use crate::packet::Packet;

/// Per-flow statistics kept by the monitor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStatsEntry {
    /// Packets observed.
    pub packets: u64,
    /// Bytes observed.
    pub bytes: u64,
    /// Nanosecond timestamp of the first packet.
    pub first_seen_nanos: u64,
    /// Nanosecond timestamp of the most recent packet.
    pub last_seen_nanos: u64,
}

/// Serialised monitor state (flow table contents + totals).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct MonitorState {
    flows: Vec<(u64, serde_json::Value)>,
    total_packets: u64,
    total_bytes: u64,
}

/// One pre-copy round's worth of monitor state: flows removed and dirtied
/// since the last round, plus the (cheap, always-moving) totals.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct MonitorDelta {
    removed: Vec<u64>,
    flows: Vec<(u64, serde_json::Value)>,
    total_packets: u64,
    total_bytes: u64,
}

/// The flow-monitor vNF.
#[derive(Debug)]
pub struct FlowMonitor {
    flows: FlowTable<FlowStatsEntry>,
    total_packets: u64,
    total_bytes: u64,
    heavy_hitter_threshold_bytes: u64,
}

impl FlowMonitor {
    /// Creates a monitor bounded to `max_flows` tracked flows
    /// (zero = unbounded).
    pub fn new(max_flows: usize) -> Self {
        FlowMonitor {
            flows: FlowTable::new(max_flows),
            total_packets: 0,
            total_bytes: 0,
            heavy_hitter_threshold_bytes: 1 << 20, // 1 MiB
        }
    }

    /// The monitor used by the evaluation scenarios: bounded to the size of
    /// a SmartNIC flow cache.
    pub fn evaluation_default() -> Self {
        FlowMonitor::new(65_536)
    }

    /// Sets the byte threshold above which a flow counts as a heavy hitter.
    pub fn with_heavy_hitter_threshold(mut self, bytes: u64) -> Self {
        self.heavy_hitter_threshold_bytes = bytes;
        self
    }

    /// Total packets observed.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Total bytes observed.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Statistics for one flow, if tracked.
    pub fn flow_stats(&self, flow: pam_types::FlowId) -> Option<FlowStatsEntry> {
        self.flows.peek(flow).copied()
    }

    /// Flows whose byte count exceeds the heavy-hitter threshold, heaviest
    /// first.
    pub fn heavy_hitters(&self) -> Vec<(pam_types::FlowId, FlowStatsEntry)> {
        let mut hitters: Vec<_> = self
            .flows
            .iter()
            .filter(|(_, entry)| entry.bytes >= self.heavy_hitter_threshold_bytes)
            .map(|(flow, entry)| (flow, *entry))
            .collect();
        hitters.sort_by_key(|(_, entry)| std::cmp::Reverse(entry.bytes));
        hitters
    }
}

impl NetworkFunction for FlowMonitor {
    fn kind(&self) -> NfKind {
        NfKind::Monitor
    }

    fn process(&mut self, packet: &mut Packet, ctx: &NfContext) -> NfVerdict {
        let flow = packet.flow_id();
        let size = packet.size().as_bytes();
        let now = ctx.now;
        let entry = self.flows.entry_or_insert_with(flow, || FlowStatsEntry {
            first_seen_nanos: now.as_nanos(),
            ..FlowStatsEntry::default()
        });
        entry.packets += 1;
        entry.bytes += size;
        entry.last_seen_nanos = now.as_nanos();
        self.total_packets += 1;
        self.total_bytes += size;
        NfVerdict::Forward
    }

    /// Batch-amortised counting: consecutive same-flow packets collapse into
    /// one flow-table touch (one lookup, one counter update per run instead
    /// of per packet), and the batch's totals are accumulated locally and
    /// added once. Observationally identical to the per-packet default —
    /// every packet of a doorbell batch is accounted at the same `ctx.now`.
    fn process_batch_into(
        &mut self,
        packets: &mut [Packet],
        ctx: &NfContext,
        verdicts: &mut Vec<NfVerdict>,
    ) {
        let now = ctx.now.as_nanos();
        let mut batch_packets = 0u64;
        let mut batch_bytes = 0u64;
        let mut index = 0;
        while index < packets.len() {
            let flow = packets[index].flow_id();
            let mut run_packets = 0u64;
            let mut run_bytes = 0u64;
            while index < packets.len() && packets[index].flow_id() == flow {
                run_packets += 1;
                run_bytes += packets[index].size().as_bytes();
                verdicts.push(NfVerdict::Forward);
                index += 1;
            }
            let entry = self.flows.entry_or_insert_with(flow, || FlowStatsEntry {
                first_seen_nanos: now,
                ..FlowStatsEntry::default()
            });
            entry.packets += run_packets;
            entry.bytes += run_bytes;
            entry.last_seen_nanos = now;
            batch_packets += run_packets;
            batch_bytes += run_bytes;
        }
        self.total_packets += batch_packets;
        self.total_bytes += batch_bytes;
    }

    fn export_state(&self) -> NfState {
        let state = MonitorState {
            flows: self.flows.export(),
            total_packets: self.total_packets,
            total_bytes: self.total_bytes,
        };
        NfState::encode(NfKind::Monitor, &state)
    }

    fn import_state(&mut self, state: NfState) -> Result<()> {
        let decoded: MonitorState = state.decode(NfKind::Monitor)?;
        self.flows.import(decoded.flows);
        self.total_packets = decoded.total_packets;
        self.total_bytes = decoded.total_bytes;
        Ok(())
    }

    fn flow_count(&self) -> usize {
        self.flows.len()
    }

    fn clear_dirty(&mut self) {
        self.flows.clear_dirty();
    }

    fn dirty_flow_count(&self) -> usize {
        self.flows.dirty_len()
    }

    fn export_dirty_state(&self) -> NfState {
        let (removed, flows) = self.flows.export_dirty();
        let delta = MonitorDelta {
            removed,
            flows,
            total_packets: self.total_packets,
            total_bytes: self.total_bytes,
        };
        NfState::encode(NfKind::Monitor, &delta)
    }

    fn import_dirty_state(&mut self, state: NfState) -> Result<()> {
        let delta: MonitorDelta = state.decode(NfKind::Monitor)?;
        self.flows.import_dirty((delta.removed, delta.flows));
        self.total_packets = delta.total_packets;
        self.total_bytes = delta.total_bytes;
        Ok(())
    }

    fn reset(&mut self) {
        self.flows.clear();
        self.total_packets = 0;
        self.total_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::SimTime;
    use pam_wire::{PacketBuilder, TransportKind};
    use std::net::Ipv4Addr;

    fn packet_of_flow(src_port: u16, len: usize, at_micros: u64) -> (Packet, NfContext) {
        let bytes = PacketBuilder::new()
            .ips(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .ports(src_port, 80)
            .transport(TransportKind::Udp)
            .total_len(len)
            .build();
        (
            Packet::from_bytes(0, bytes, SimTime::from_micros(at_micros)),
            NfContext::at(SimTime::from_micros(at_micros)),
        )
    }

    #[test]
    fn counts_per_flow_and_totals() {
        let mut monitor = FlowMonitor::new(0);
        for i in 0..5 {
            let (mut p, ctx) = packet_of_flow(1000, 200, i * 10);
            assert_eq!(monitor.process(&mut p, &ctx), NfVerdict::Forward);
        }
        let (mut other, ctx) = packet_of_flow(2000, 100, 100);
        monitor.process(&mut other, &ctx);

        assert_eq!(monitor.total_packets(), 6);
        assert_eq!(monitor.total_bytes(), 5 * 200 + 100);
        assert_eq!(monitor.flow_count(), 2);

        let (probe, _) = packet_of_flow(1000, 200, 0);
        let stats = monitor.flow_stats(probe.flow_id()).unwrap();
        assert_eq!(stats.packets, 5);
        assert_eq!(stats.bytes, 1000);
        assert_eq!(stats.first_seen_nanos, 0);
        assert_eq!(stats.last_seen_nanos, 40_000);
    }

    #[test]
    fn heavy_hitters_sorted_by_bytes() {
        let mut monitor = FlowMonitor::new(0).with_heavy_hitter_threshold(1000);
        for _ in 0..10 {
            let (mut p, ctx) = packet_of_flow(1111, 500, 1);
            monitor.process(&mut p, &ctx); // flow A: 5000 B
        }
        for _ in 0..3 {
            let (mut p, ctx) = packet_of_flow(2222, 400, 1);
            monitor.process(&mut p, &ctx); // flow B: 1200 B
        }
        let (mut p, ctx) = packet_of_flow(3333, 200, 1);
        monitor.process(&mut p, &ctx); // flow C: below threshold

        let hitters = monitor.heavy_hitters();
        assert_eq!(hitters.len(), 2);
        assert!(hitters[0].1.bytes >= hitters[1].1.bytes);
        assert_eq!(hitters[0].1.bytes, 5000);
    }

    #[test]
    fn bounded_flow_table_evicts() {
        let mut monitor = FlowMonitor::new(2);
        for port in [1u16, 2, 3, 4] {
            let (mut p, ctx) = packet_of_flow(port, 64, 0);
            monitor.process(&mut p, &ctx);
        }
        assert_eq!(monitor.flow_count(), 2);
        // Totals still count everything.
        assert_eq!(monitor.total_packets(), 4);
    }

    #[test]
    fn state_migration_round_trip() {
        let mut source = FlowMonitor::evaluation_default();
        for port in 0..50u16 {
            let (mut p, ctx) = packet_of_flow(port, 300, u64::from(port));
            source.process(&mut p, &ctx);
        }
        let state = source.export_state();
        assert!(state.estimated_size.as_bytes() > 1000);

        let mut target = FlowMonitor::evaluation_default();
        target.import_state(state).unwrap();
        assert_eq!(target.flow_count(), 50);
        assert_eq!(target.total_packets(), 50);
        assert_eq!(target.total_bytes(), source.total_bytes());

        // Processing continues seamlessly after import.
        let (mut p, ctx) = packet_of_flow(0, 300, 1000);
        target.process(&mut p, &ctx);
        let (probe, _) = packet_of_flow(0, 300, 0);
        assert_eq!(target.flow_stats(probe.flow_id()).unwrap().packets, 2);
    }

    #[test]
    fn dirty_delta_rounds_reproduce_the_source_exactly() {
        let mut source = FlowMonitor::evaluation_default();
        for port in 0..20u16 {
            let (mut p, ctx) = packet_of_flow(port, 300, u64::from(port));
            source.process(&mut p, &ctx);
        }
        // Snapshot round: full state to the target, then mark the baseline.
        let mut target = FlowMonitor::evaluation_default();
        target.import_state(source.export_state()).unwrap();
        source.clear_dirty();
        assert_eq!(source.dirty_flow_count(), 0);

        // The source keeps serving: 5 existing flows touched, 3 new flows.
        for port in [3u16, 7, 11, 15, 19, 100, 101, 102] {
            let (mut p, ctx) = packet_of_flow(port, 400, 500 + u64::from(port));
            source.process(&mut p, &ctx);
        }
        assert_eq!(source.dirty_flow_count(), 8);

        // One delta round brings the target up to date.
        target
            .import_dirty_state(source.export_dirty_state())
            .unwrap();
        assert_eq!(
            serde_json::to_string(&target.export_state()).unwrap(),
            serde_json::to_string(&source.export_state()).unwrap(),
            "delta-replayed state must be byte-identical to the source"
        );
    }

    #[test]
    fn batch_processing_is_observationally_identical_to_the_loop() {
        // Mixed flows with consecutive same-flow runs (the amortised path)
        // and interleavings (the cache-miss path).
        let ports = [1u16, 1, 1, 2, 2, 1, 3, 3, 3, 3, 2];
        let ctx = NfContext::at(SimTime::from_micros(9));
        let mut packets: Vec<Packet> = ports
            .iter()
            .map(|&p| packet_of_flow(p, 200 + usize::from(p), 9).0)
            .collect();

        let mut looped = FlowMonitor::evaluation_default();
        for packet in &mut packets.clone() {
            assert_eq!(looped.process(packet, &ctx), NfVerdict::Forward);
        }
        let mut batched = FlowMonitor::evaluation_default();
        let verdicts = batched.process_batch(&mut packets, &ctx);
        assert_eq!(verdicts.len(), ports.len());
        assert!(verdicts.iter().all(|v| v.is_forward()));
        assert_eq!(
            serde_json::to_string(&batched.export_state()).unwrap(),
            serde_json::to_string(&looped.export_state()).unwrap(),
            "batched monitor state must equal the per-packet loop's"
        );
        assert_eq!(batched.total_packets(), looped.total_packets());
        assert_eq!(batched.total_bytes(), looped.total_bytes());
    }

    #[test]
    fn import_rejects_wrong_kind() {
        let mut monitor = FlowMonitor::new(0);
        let wrong = NfState::empty(NfKind::Logger);
        assert!(monitor.import_state(wrong).is_err());
    }

    #[test]
    fn reset_clears_everything() {
        let mut monitor = FlowMonitor::new(0);
        let (mut p, ctx) = packet_of_flow(9, 128, 0);
        monitor.process(&mut p, &ctx);
        monitor.reset();
        assert_eq!(monitor.flow_count(), 0);
        assert_eq!(monitor.total_packets(), 0);
        assert_eq!(monitor.total_bytes(), 0);
        assert_eq!(monitor.kind(), NfKind::Monitor);
    }
}
