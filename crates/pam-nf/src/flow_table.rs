//! A bounded per-flow state table.
//!
//! Stateful vNFs (monitor, NAT, load balancer, rate limiter) key their state
//! by [`FlowId`]. The table bounds the number of entries — SmartNIC memory is
//! small — and evicts the oldest entry when full, which is also how the
//! Netronome flow caches behave. The whole table can be exported/imported for
//! OpenNF-style state migration.
//!
//! For iterative pre-copy migration the table also tracks which flows were
//! *dirtied* (inserted or mutated) and which were *removed* (evicted or
//! deleted) since the last [`FlowTable::clear_dirty`]. A migration round
//! exports just that delta ([`FlowTable::export_dirty`]) and the target
//! replays it with [`FlowTable::import_dirty`], which reproduces the source
//! table exactly — including its insertion order, so later evictions behave
//! identically after the handover.

use std::collections::{BTreeSet, VecDeque};

use pam_types::FlowId;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::fastmap::{FlowMap, FlowSet};

/// The delta exported by [`FlowTable::export_dirty`]: flows removed since the
/// last dirty-clear (in sorted key order, deterministic) and the current
/// values of flows dirtied since then (in table insertion order).
pub type FlowDelta = (Vec<u64>, Vec<(u64, serde_json::Value)>);

/// Statistics accumulated by a [`FlowTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub inserted: u64,
    /// Entries evicted to make room.
    pub evicted: u64,
}

/// A bounded flow-keyed table with FIFO eviction.
///
/// The entry store and the dirty set are fixed-key FxHash open-addressing
/// containers (see [`crate::fastmap`]): the per-packet lookup is the hottest
/// simulator path, and SipHash was its single largest cost. Export order
/// comes from `order`, never from either hash container, so the swap is
/// byte-invisible to state migration and the benchmark baselines.
#[derive(Debug, Clone)]
pub struct FlowTable<V> {
    entries: FlowMap<V>,
    order: VecDeque<u64>,
    capacity: usize,
    stats: FlowTableStats,
    /// Flows inserted or mutated since the last [`FlowTable::clear_dirty`].
    dirty: FlowSet,
    /// Flows evicted/removed since the last [`FlowTable::clear_dirty`]
    /// (sorted so delta exports are deterministic).
    dead: BTreeSet<u64>,
}

impl<V> FlowTable<V> {
    /// Creates a table bounded to `capacity` entries (zero = unbounded).
    pub fn new(capacity: usize) -> Self {
        FlowTable {
            entries: FlowMap::new(),
            order: VecDeque::new(),
            capacity,
            stats: FlowTableStats::default(),
            dirty: FlowSet::new(),
            dead: BTreeSet::new(),
        }
    }

    /// The configured capacity (zero = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a flow for mutation (counts hit/miss and conservatively marks
    /// the flow dirty — callers take `&mut V`, so the entry may change).
    pub fn get_mut(&mut self, flow: FlowId) -> Option<&mut V> {
        let found = self.entries.get_mut(flow.raw());
        if found.is_some() {
            self.stats.hits += 1;
            self.dirty.insert(flow.raw());
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Read-only lookup that still counts hit/miss statistics but does not
    /// mark the flow dirty (for vNFs whose entries are write-once, like NAT
    /// bindings, so pre-copy deltas stay small).
    pub fn lookup(&mut self, flow: FlowId) -> Option<&V> {
        let found = self.entries.get(flow.raw());
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Looks up a flow without mutating statistics.
    pub fn peek(&self, flow: FlowId) -> Option<&V> {
        self.entries.get(flow.raw())
    }

    /// Returns the entry for `flow`, inserting the value produced by `make`
    /// if absent (evicting the oldest entry when at capacity).
    pub fn entry_or_insert_with(&mut self, flow: FlowId, make: impl FnOnce() -> V) -> &mut V {
        let key = flow.raw();
        if self.entries.contains(key) {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            self.stats.inserted += 1;
            if self.capacity != 0 && self.entries.len() >= self.capacity {
                self.evict_oldest();
            }
            self.entries.insert(key, make());
            self.order.push_back(key);
        }
        // Both paths hand out `&mut V`, so the entry counts as dirtied. Note
        // a re-inserted key keeps any earlier tombstone: the delta replays
        // "remove, then append", which reproduces the source's insertion
        // order on the migration target.
        self.dirty.insert(key);
        let Some(entry) = self.entries.get_mut(key) else {
            unreachable!("entry was just ensured");
        };
        entry
    }

    /// Removes a flow's entry.
    pub fn remove(&mut self, flow: FlowId) -> Option<V> {
        let key = flow.raw();
        let removed = self.entries.remove(key);
        if removed.is_some() {
            self.order.retain(|&k| k != key);
            self.dirty.remove(key);
            self.dead.insert(key);
        }
        removed
    }

    /// Removes every entry (also resets dirty tracking: a cleared table is a
    /// fresh baseline, not a delta against the old contents).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.dirty.clear();
        self.dead.clear();
    }

    /// Number of flows dirtied since the last [`FlowTable::clear_dirty`].
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Marks the current contents as the baseline for the next delta export:
    /// clears both the dirty and the removed sets.
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
        self.dead.clear();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FlowTableStats {
        self.stats
    }

    /// Iterates over `(flow, value)` pairs in eviction (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &V)> {
        self.order
            .iter()
            .filter_map(move |k| self.entries.get(*k).map(|v| (FlowId::new(*k), v)))
    }

    fn evict_oldest(&mut self) {
        while let Some(oldest) = self.order.pop_front() {
            if self.entries.remove(oldest).is_some() {
                self.stats.evicted += 1;
                self.dirty.remove(oldest);
                self.dead.insert(oldest);
                return;
            }
        }
    }
}

impl<V: Serialize> FlowTable<V> {
    /// Exports the table contents for state migration, in insertion order.
    pub fn export(&self) -> Vec<(u64, serde_json::Value)> {
        self.iter()
            .map(|(flow, value)| {
                (
                    flow.raw(),
                    serde_json::to_value(value).unwrap_or(serde_json::Value::Null),
                )
            })
            .collect()
    }

    /// Exports only the flows changed since the last
    /// [`FlowTable::clear_dirty`]: the removed keys (sorted) plus the live
    /// dirty entries in insertion order. Applying the delta with
    /// [`FlowTable::import_dirty`] to a copy taken at the previous clear
    /// reproduces the current table exactly, insertion order included.
    pub fn export_dirty(&self) -> FlowDelta {
        let removed: Vec<u64> = self.dead.iter().copied().collect();
        let entries = self
            .order
            .iter()
            .filter(|k| self.dirty.contains(**k))
            .filter_map(|k| {
                self.entries.get(*k).map(|v| {
                    (
                        *k,
                        serde_json::to_value(v).unwrap_or(serde_json::Value::Null),
                    )
                })
            })
            .collect();
        (removed, entries)
    }
}

impl<V: DeserializeOwned> FlowTable<V> {
    /// Imports previously exported contents, replacing the current entries.
    /// Entries beyond the table capacity are dropped oldest-first (mirroring
    /// what eviction would have done).
    pub fn import(&mut self, entries: Vec<(u64, serde_json::Value)>) {
        self.clear();
        for (key, value) in entries {
            if let Ok(value) = serde_json::from_value(value) {
                if self.capacity != 0 && self.entries.len() >= self.capacity {
                    self.evict_oldest();
                }
                self.entries.insert(key, value);
                self.order.push_back(key);
                self.stats.inserted += 1;
            }
        }
        // A freshly imported table is a clean baseline for dirty tracking.
        self.clear_dirty();
    }

    /// Merges a delta produced by [`FlowTable::export_dirty`]: removals are
    /// applied first, then dirty entries are upserted — existing keys keep
    /// their position, new keys append in delta (= source insertion) order.
    pub fn import_dirty(&mut self, delta: FlowDelta) {
        let (removed, entries) = delta;
        for key in removed {
            self.remove(FlowId::new(key));
        }
        for (key, value) in entries {
            if let Ok(value) = serde_json::from_value(value) {
                if let Some(slot) = self.entries.get_mut(key) {
                    *slot = value;
                } else {
                    if self.capacity != 0 && self.entries.len() >= self.capacity {
                        self.evict_oldest();
                    }
                    self.entries.insert(key, value);
                    self.order.push_back(key);
                    self.stats.inserted += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(n: u64) -> FlowId {
        FlowId::new(n)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut table: FlowTable<u32> = FlowTable::new(8);
        *table.entry_or_insert_with(flow(1), || 0) += 5;
        *table.entry_or_insert_with(flow(1), || 0) += 5;
        assert_eq!(table.peek(flow(1)), Some(&10));
        assert_eq!(table.len(), 1);
        assert_eq!(table.get_mut(flow(2)), None);
        assert_eq!(table.remove(flow(1)), Some(10));
        assert!(table.is_empty());
        assert_eq!(table.capacity(), 8);
    }

    #[test]
    fn stats_track_hits_misses_inserts() {
        let mut table: FlowTable<u32> = FlowTable::new(4);
        table.entry_or_insert_with(flow(1), || 1); // miss + insert
        table.entry_or_insert_with(flow(1), || 1); // hit
        table.get_mut(flow(1)); // hit
        table.get_mut(flow(9)); // miss
        let stats = table.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.evicted, 0);
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let mut table: FlowTable<u32> = FlowTable::new(3);
        for i in 0..5 {
            table.entry_or_insert_with(flow(i), || i as u32);
        }
        assert_eq!(table.len(), 3);
        assert_eq!(table.stats().evicted, 2);
        // Oldest flows 0 and 1 were evicted.
        assert!(table.peek(flow(0)).is_none());
        assert!(table.peek(flow(1)).is_none());
        assert!(table.peek(flow(2)).is_some());
        assert!(table.peek(flow(4)).is_some());
    }

    #[test]
    fn unbounded_table_never_evicts() {
        let mut table: FlowTable<u32> = FlowTable::new(0);
        for i in 0..10_000 {
            table.entry_or_insert_with(flow(i), || 0);
        }
        assert_eq!(table.len(), 10_000);
        assert_eq!(table.stats().evicted, 0);
    }

    #[test]
    fn iteration_in_insertion_order() {
        let mut table: FlowTable<u32> = FlowTable::new(0);
        for i in [5u64, 3, 9] {
            table.entry_or_insert_with(flow(i), || i as u32 * 10);
        }
        let flows: Vec<u64> = table.iter().map(|(f, _)| f.raw()).collect();
        assert_eq!(flows, vec![5, 3, 9]);
    }

    #[test]
    fn export_import_round_trip() {
        let mut table: FlowTable<Vec<u32>> = FlowTable::new(16);
        table.entry_or_insert_with(flow(1), || vec![1, 2]);
        table.entry_or_insert_with(flow(2), || vec![3]);
        let exported = table.export();
        assert_eq!(exported.len(), 2);

        let mut target: FlowTable<Vec<u32>> = FlowTable::new(16);
        target.import(exported);
        assert_eq!(target.len(), 2);
        assert_eq!(target.peek(flow(1)), Some(&vec![1, 2]));
        assert_eq!(target.peek(flow(2)), Some(&vec![3]));
    }

    #[test]
    fn import_respects_capacity() {
        let mut table: FlowTable<u32> = FlowTable::new(0);
        for i in 0..10 {
            table.entry_or_insert_with(flow(i), || i as u32);
        }
        let mut small: FlowTable<u32> = FlowTable::new(4);
        small.import(table.export());
        assert_eq!(small.len(), 4);
        // The newest four entries survive.
        assert!(small.peek(flow(9)).is_some());
        assert!(small.peek(flow(0)).is_none());
    }

    #[test]
    fn clear_resets_entries_but_keeps_stats() {
        let mut table: FlowTable<u32> = FlowTable::new(4);
        table.entry_or_insert_with(flow(1), || 1);
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.stats().inserted, 1);
    }

    #[test]
    fn dirty_tracking_marks_inserts_mutations_and_removals() {
        let mut table: FlowTable<u32> = FlowTable::new(0);
        table.entry_or_insert_with(flow(1), || 1);
        table.entry_or_insert_with(flow(2), || 2);
        assert_eq!(table.dirty_len(), 2);
        table.clear_dirty();
        assert_eq!(table.dirty_len(), 0);
        // Reads don't dirty; mutable access does.
        assert!(table.peek(flow(1)).is_some());
        assert!(table.lookup(flow(1)).is_some());
        assert_eq!(table.dirty_len(), 0);
        *table.get_mut(flow(2)).unwrap() += 1;
        assert_eq!(table.dirty_len(), 1);
        // Removal lands in the tombstone list, not the dirty list.
        table.remove(flow(1));
        let (removed, entries) = table.export_dirty();
        assert_eq!(removed, vec![1]);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, 2);
    }

    #[test]
    fn dirty_delta_replays_to_the_exact_source_table() {
        let mut source: FlowTable<u32> = FlowTable::new(3);
        for i in 0..3 {
            source.entry_or_insert_with(flow(i), || i as u32);
        }
        // Target mirrors the snapshot.
        let mut target: FlowTable<u32> = FlowTable::new(3);
        target.import(source.export());
        source.clear_dirty();

        // Mutate, evict (capacity 3: inserting 3 evicts 0), and re-insert an
        // evicted key so it moves to the back of the insertion order.
        *source.get_mut(flow(1)).unwrap() = 10;
        source.entry_or_insert_with(flow(3), || 30); // evicts 0
        source.entry_or_insert_with(flow(0), || 99); // evicts 1, re-adds 0

        target.import_dirty(source.export_dirty());
        let source_order: Vec<(u64, u32)> = source.iter().map(|(f, v)| (f.raw(), *v)).collect();
        let target_order: Vec<(u64, u32)> = target.iter().map(|(f, v)| (f.raw(), *v)).collect();
        assert_eq!(source_order, target_order, "delta replay must mirror");
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let mut source: FlowTable<u32> = FlowTable::new(0);
        source.entry_or_insert_with(flow(7), || 7);
        let mut target: FlowTable<u32> = FlowTable::new(0);
        target.import(source.export());
        source.clear_dirty();
        target.import_dirty(source.export_dirty());
        assert_eq!(target.len(), 1);
        assert_eq!(target.peek(flow(7)), Some(&7));
    }

    #[test]
    fn remove_then_insert_does_not_double_evict() {
        let mut table: FlowTable<u32> = FlowTable::new(2);
        table.entry_or_insert_with(flow(1), || 1);
        table.entry_or_insert_with(flow(2), || 2);
        table.remove(flow(1));
        table.entry_or_insert_with(flow(3), || 3);
        // No eviction should have been necessary.
        assert_eq!(table.stats().evicted, 0);
        assert_eq!(table.len(), 2);
    }
}
