//! The L4 load balancer vNF.
//!
//! Rewrites the destination address of incoming packets to one of a set of
//! backend servers. Backend selection uses a consistent-hash ring seeded by
//! the flow's 5-tuple, plus a connection table that pins existing flows to
//! their backend even if the backend set changes — which is exactly the state
//! that must move intact when the vNF migrates between devices.

use std::net::Ipv4Addr;

use pam_types::Result;
use pam_wire::five_tuple::stable_hash_bytes;
use serde::{Deserialize, Serialize};

use crate::flow_table::FlowTable;
use crate::nf::{NetworkFunction, NfContext, NfKind, NfState, NfVerdict};
use crate::packet::Packet;

/// A backend server the load balancer can steer traffic to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backend {
    /// The backend's address (written into the packet's destination field).
    pub addr: Ipv4Addr,
    /// Relative weight (number of virtual nodes on the hash ring).
    pub weight: u32,
}

impl Backend {
    /// A backend with weight 1.
    pub fn new(addr: Ipv4Addr) -> Self {
        Backend { addr, weight: 1 }
    }

    /// A backend with an explicit weight.
    pub fn weighted(addr: Ipv4Addr, weight: u32) -> Self {
        Backend {
            addr,
            weight: weight.max(1),
        }
    }
}

/// Serialised load-balancer state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct LoadBalancerState {
    backends: Vec<Backend>,
    connections: Vec<(u64, serde_json::Value)>,
    balanced: u64,
    no_backend_drops: u64,
}

/// One pre-copy round's worth of load-balancer state: stickiness pinnings
/// are write-once, so the delta carries only flows pinned (or evicted) since
/// the last round.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct LoadBalancerDelta {
    removed: Vec<u64>,
    connections: Vec<(u64, serde_json::Value)>,
    balanced: u64,
    no_backend_drops: u64,
}

/// The load-balancer vNF.
#[derive(Debug)]
pub struct LoadBalancer {
    backends: Vec<Backend>,
    ring: Vec<(u64, usize)>,
    connections: FlowTable<Ipv4Addr>,
    balanced: u64,
    no_backend_drops: u64,
}

impl LoadBalancer {
    /// Creates a load balancer over `backends`, remembering up to
    /// `max_connections` flow pinnings (zero = unbounded).
    pub fn new(backends: Vec<Backend>, max_connections: usize) -> Self {
        let ring = Self::build_ring(&backends);
        LoadBalancer {
            backends,
            ring,
            connections: FlowTable::new(max_connections),
            balanced: 0,
            no_backend_drops: 0,
        }
    }

    /// The load balancer used by the evaluation scenarios: four equally
    /// weighted backends.
    pub fn evaluation_default() -> Self {
        let backends = (1..=4)
            .map(|i| Backend::new(Ipv4Addr::new(192, 0, 2, i)))
            .collect();
        LoadBalancer::new(backends, 65_536)
    }

    fn build_ring(backends: &[Backend]) -> Vec<(u64, usize)> {
        let mut ring = Vec::new();
        for (index, backend) in backends.iter().enumerate() {
            for replica in 0..backend.weight.max(1) * 37 {
                let key = format!("{}-{}", backend.addr, replica);
                ring.push((stable_hash_bytes(key.as_bytes()), index));
            }
        }
        ring.sort_unstable();
        ring
    }

    /// The configured backends.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// Number of packets steered.
    pub fn balanced(&self) -> u64 {
        self.balanced
    }

    /// Number of packets dropped because no backend was configured.
    pub fn no_backend_drops(&self) -> u64 {
        self.no_backend_drops
    }

    /// Chooses the backend for a new flow via the consistent-hash ring.
    fn pick_backend(&self, flow_hash: u64) -> Option<Ipv4Addr> {
        if self.ring.is_empty() {
            return None;
        }
        let position = self
            .ring
            .binary_search_by(|(h, _)| h.cmp(&flow_hash))
            .unwrap_or_else(|i| i)
            % self.ring.len();
        let (_, backend_index) = self.ring[position];
        Some(self.backends[backend_index].addr)
    }

    /// The (possibly freshly pinned) backend for `flow`, or `None` when no
    /// backend is configured. Pinned connections are looked up read-only so
    /// repeat packets never re-dirty the flow (keeps pre-copy deltas small).
    fn backend_for(&mut self, flow: pam_types::FlowId, flow_hash: u64) -> Option<Ipv4Addr> {
        match self.connections.lookup(flow) {
            Some(existing) => Some(*existing),
            None => {
                let backend = self.pick_backend(flow_hash)?;
                self.connections.entry_or_insert_with(flow, || backend);
                Some(backend)
            }
        }
    }

    /// Rewrites `packet`'s destination to `backend` and counts it.
    fn steer(&mut self, packet: &mut Packet, backend: Ipv4Addr) {
        if let Ok(mut ip) = packet.ipv4_mut() {
            ip.set_dst_addr(backend);
            ip.fill_checksum();
            // The only field that changed is the destination address: patch
            // the cached tuple instead of re-parsing the whole frame.
            packet.patch_tuple(|tuple| tuple.dst_ip = backend);
        } else {
            packet.invalidate_tuple();
        }
        self.balanced += 1;
    }

    /// Fraction of ring positions owned by each backend (used in tests to
    /// check the ring stays balanced).
    pub fn ring_share(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.backends.len()];
        for (_, idx) in &self.ring {
            counts[*idx] += 1;
        }
        let total = self.ring.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / total).collect()
    }
}

impl NetworkFunction for LoadBalancer {
    fn kind(&self) -> NfKind {
        NfKind::LoadBalancer
    }

    fn process(&mut self, packet: &mut Packet, _ctx: &NfContext) -> NfVerdict {
        let Some(tuple) = packet.five_tuple() else {
            // Non-IP traffic is not load-balanced but not dropped either.
            return NfVerdict::Forward;
        };
        let flow = tuple.flow_id();
        match self.backend_for(flow, tuple.stable_hash()) {
            Some(chosen) => {
                self.steer(packet, chosen);
                NfVerdict::Forward
            }
            None => {
                self.no_backend_drops += 1;
                NfVerdict::Drop
            }
        }
    }

    /// Batch-amortised steering: a run of same-flow packets resolves its
    /// backend (connection-table lookup or ring walk) once and reuses it for
    /// the rest of the run. The destination rewrite stays per packet.
    /// Observationally identical to the per-packet default.
    fn process_batch_into(
        &mut self,
        packets: &mut [Packet],
        _ctx: &NfContext,
        verdicts: &mut Vec<NfVerdict>,
    ) {
        let mut cached: Option<(pam_types::FlowId, Ipv4Addr)> = None;
        verdicts.extend(packets.iter_mut().map(|packet| {
            let Some(tuple) = packet.five_tuple() else {
                return NfVerdict::Forward;
            };
            let flow = tuple.flow_id();
            let chosen = match cached {
                Some((hit, backend)) if hit == flow => Some(backend),
                _ => self.backend_for(flow, tuple.stable_hash()),
            };
            match chosen {
                Some(backend) => {
                    cached = Some((flow, backend));
                    self.steer(packet, backend);
                    NfVerdict::Forward
                }
                None => {
                    self.no_backend_drops += 1;
                    NfVerdict::Drop
                }
            }
        }));
    }

    fn export_state(&self) -> NfState {
        let state = LoadBalancerState {
            backends: self.backends.clone(),
            connections: self.connections.export(),
            balanced: self.balanced,
            no_backend_drops: self.no_backend_drops,
        };
        NfState::encode(NfKind::LoadBalancer, &state)
    }

    fn import_state(&mut self, state: NfState) -> Result<()> {
        let decoded: LoadBalancerState = state.decode(NfKind::LoadBalancer)?;
        self.backends = decoded.backends;
        self.ring = Self::build_ring(&self.backends);
        self.connections.import(decoded.connections);
        self.balanced = decoded.balanced;
        self.no_backend_drops = decoded.no_backend_drops;
        Ok(())
    }

    fn flow_count(&self) -> usize {
        self.connections.len()
    }

    fn clear_dirty(&mut self) {
        self.connections.clear_dirty();
    }

    fn dirty_flow_count(&self) -> usize {
        self.connections.dirty_len()
    }

    fn export_dirty_state(&self) -> NfState {
        let (removed, connections) = self.connections.export_dirty();
        let delta = LoadBalancerDelta {
            removed,
            connections,
            balanced: self.balanced,
            no_backend_drops: self.no_backend_drops,
        };
        NfState::encode(NfKind::LoadBalancer, &delta)
    }

    fn import_dirty_state(&mut self, state: NfState) -> Result<()> {
        let delta: LoadBalancerDelta = state.decode(NfKind::LoadBalancer)?;
        self.connections
            .import_dirty((delta.removed, delta.connections));
        self.balanced = delta.balanced;
        self.no_backend_drops = delta.no_backend_drops;
        Ok(())
    }

    fn reset(&mut self) {
        self.connections.clear();
        self.balanced = 0;
        self.no_backend_drops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::SimTime;
    use pam_wire::{PacketBuilder, TransportKind};

    fn packet_with_ports(src_port: u16) -> Packet {
        let bytes = PacketBuilder::new()
            .ips(
                Ipv4Addr::new(198, 51, 100, 7),
                Ipv4Addr::new(203, 0, 113, 10),
            )
            .ports(src_port, 80)
            .transport(TransportKind::Tcp)
            .total_len(128)
            .build();
        Packet::from_bytes(0, bytes, SimTime::ZERO)
    }

    #[test]
    fn batch_processing_is_observationally_identical_to_the_loop() {
        let ports = [100u16, 100, 200, 100, 300, 300, 200, 200];
        let ctx = NfContext::at(SimTime::ZERO);
        let packets: Vec<Packet> = ports.iter().map(|&p| packet_with_ports(p)).collect();

        let mut looped = LoadBalancer::evaluation_default();
        let mut looped_packets = packets.clone();
        let loop_verdicts: Vec<NfVerdict> = looped_packets
            .iter_mut()
            .map(|p| looped.process(p, &ctx))
            .collect();

        let mut batched = LoadBalancer::evaluation_default();
        let mut batched_packets = packets.clone();
        let batch_verdicts = batched.process_batch(&mut batched_packets, &ctx);

        assert_eq!(batch_verdicts, loop_verdicts);
        for (a, b) in looped_packets.iter().zip(&batched_packets) {
            assert_eq!(a.bytes(), b.bytes(), "identical steering rewrites");
        }
        assert_eq!(
            serde_json::to_string(&batched.export_state()).unwrap(),
            serde_json::to_string(&looped.export_state()).unwrap(),
            "batched LB state must equal the per-packet loop's"
        );
        assert_eq!(batched.balanced(), looped.balanced());
    }

    fn backend_set(n: u8) -> Vec<Backend> {
        (1..=n)
            .map(|i| Backend::new(Ipv4Addr::new(192, 0, 2, i)))
            .collect()
    }

    #[test]
    fn rewrites_destination_to_a_backend() {
        let mut lb = LoadBalancer::new(backend_set(4), 0);
        let mut p = packet_with_ports(1234);
        assert_eq!(
            lb.process(&mut p, &NfContext::at(SimTime::ZERO)),
            NfVerdict::Forward
        );
        let dst = p.five_tuple().unwrap().dst_ip;
        assert!(lb.backends().iter().any(|b| b.addr == dst));
        assert_eq!(lb.balanced(), 1);
        // The rewritten packet still has a valid IPv4 checksum.
        assert!(p.ipv4().unwrap().verify_checksum());
    }

    #[test]
    fn same_flow_sticks_to_the_same_backend() {
        let mut lb = LoadBalancer::new(backend_set(4), 0);
        let mut first = packet_with_ports(999);
        lb.process(&mut first, &NfContext::at(SimTime::ZERO));
        let chosen = first.five_tuple().unwrap().dst_ip;
        for _ in 0..10 {
            let mut again = packet_with_ports(999);
            lb.process(&mut again, &NfContext::at(SimTime::ZERO));
            assert_eq!(again.five_tuple().unwrap().dst_ip, chosen);
        }
        assert_eq!(lb.flow_count(), 1);
    }

    #[test]
    fn different_flows_spread_across_backends() {
        let mut lb = LoadBalancer::new(backend_set(4), 0);
        let mut used = std::collections::HashSet::new();
        for port in 0..200u16 {
            let mut p = packet_with_ports(port);
            lb.process(&mut p, &NfContext::at(SimTime::ZERO));
            used.insert(p.five_tuple().unwrap().dst_ip);
        }
        assert!(
            used.len() >= 3,
            "200 flows should hit at least 3 of 4 backends"
        );
    }

    #[test]
    fn ring_shares_are_roughly_proportional_to_weight() {
        let backends = vec![
            Backend::weighted(Ipv4Addr::new(192, 0, 2, 1), 1),
            Backend::weighted(Ipv4Addr::new(192, 0, 2, 2), 3),
        ];
        let lb = LoadBalancer::new(backends, 0);
        let shares = lb.ring_share();
        assert!((shares[0] - 0.25).abs() < 0.05);
        assert!((shares[1] - 0.75).abs() < 0.05);
    }

    #[test]
    fn no_backends_means_drop() {
        let mut lb = LoadBalancer::new(vec![], 0);
        let mut p = packet_with_ports(5);
        assert_eq!(
            lb.process(&mut p, &NfContext::at(SimTime::ZERO)),
            NfVerdict::Drop
        );
        assert_eq!(lb.no_backend_drops(), 1);
    }

    #[test]
    fn non_ip_traffic_passes_through() {
        let mut lb = LoadBalancer::evaluation_default();
        let mut junk = Packet::from_bytes(0, vec![0u8; 18], SimTime::ZERO);
        assert_eq!(
            lb.process(&mut junk, &NfContext::at(SimTime::ZERO)),
            NfVerdict::Forward
        );
        assert_eq!(lb.balanced(), 0);
    }

    #[test]
    fn migration_preserves_stickiness() {
        let mut source = LoadBalancer::new(backend_set(4), 0);
        let mut p = packet_with_ports(7777);
        source.process(&mut p, &NfContext::at(SimTime::ZERO));
        let chosen = p.five_tuple().unwrap().dst_ip;

        let mut target = LoadBalancer::new(backend_set(2), 0);
        target.import_state(source.export_state()).unwrap();
        assert_eq!(target.backends().len(), 4);
        let mut again = packet_with_ports(7777);
        target.process(&mut again, &NfContext::at(SimTime::ZERO));
        assert_eq!(again.five_tuple().unwrap().dst_ip, chosen);
        assert_eq!(target.balanced(), 2);
    }

    #[test]
    fn reset_clears_connections() {
        let mut lb = LoadBalancer::evaluation_default();
        let mut p = packet_with_ports(1);
        lb.process(&mut p, &NfContext::at(SimTime::ZERO));
        lb.reset();
        assert_eq!(lb.flow_count(), 0);
        assert_eq!(lb.balanced(), 0);
        assert_eq!(lb.kind(), NfKind::LoadBalancer);
        assert!(lb.import_state(NfState::empty(NfKind::Nat)).is_err());
    }
}
