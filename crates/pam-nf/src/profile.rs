//! vNF capacity profiles — the workspace's encoding of the paper's Table 1.
//!
//! The poster measures, for each vNF, its maximum throughput on the SmartNIC
//! (`θ^S_i`) and on the CPU (`θ^C_i`), and assumes resource utilisation grows
//! linearly with throughput. [`CapacityProfile`] carries those two numbers
//! plus the knobs the packet-level simulation needs that the analytical model
//! abstracts away:
//!
//! * `load_factor` — the fraction of chain traffic the vNF actually spends
//!   capacity on (1.0 for per-packet functions; < 1 for a sampling logger).
//!   This is the interpretation (documented in `DESIGN.md`) that makes the
//!   poster's Figure 1(b) — "Monitor is the bottleneck" — consistent with
//!   Table 1, where the Logger has the smallest raw capacity.
//! * `nic_latency` / `cpu_latency` — fixed per-packet pipeline latency on
//!   each device (NPU pipeline vs. DPDK+virtualisation), which adds to chain
//!   latency but does not consume throughput capacity.

use std::collections::BTreeMap;

use pam_types::{Device, Gbps, PamError, Result, SimDuration};
use serde::{Deserialize, Serialize};

use crate::nf::NfKind;

/// Capacity and latency profile of one vNF kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityProfile {
    /// The vNF kind this profile describes.
    pub kind: NfKind,
    /// Maximum throughput when running on the SmartNIC (`θ^S`).
    pub nic_capacity: Gbps,
    /// Maximum throughput when running on the CPU (`θ^C`).
    pub cpu_capacity: Gbps,
    /// Fraction of chain traffic this vNF actually processes.
    pub load_factor: f64,
    /// Fixed per-packet pipeline latency on the SmartNIC.
    pub nic_latency: SimDuration,
    /// Fixed per-packet pipeline latency on the CPU.
    pub cpu_latency: SimDuration,
}

impl CapacityProfile {
    /// The capacity on a given device.
    pub fn capacity_on(&self, device: Device) -> Gbps {
        match device {
            Device::SmartNic => self.nic_capacity,
            Device::Cpu => self.cpu_capacity,
        }
    }

    /// The fixed pipeline latency on a given device.
    pub fn latency_on(&self, device: Device) -> SimDuration {
        match device {
            Device::SmartNic => self.nic_latency,
            Device::Cpu => self.cpu_latency,
        }
    }

    /// The utilisation this vNF adds to `device` when the chain carries
    /// `throughput` (`load_factor × θ_cur / θ_capacity`).
    pub fn utilisation_on(&self, device: Device, throughput: Gbps) -> f64 {
        let capacity = self.capacity_on(device);
        if capacity.as_gbps() <= 0.0 {
            return f64::INFINITY;
        }
        self.load_factor * throughput.as_gbps() / capacity.as_gbps()
    }

    /// Overrides the load factor.
    pub fn with_load_factor(mut self, load_factor: f64) -> Self {
        self.load_factor = load_factor;
        self
    }
}

/// Default per-packet pipeline latency of a vNF on the SmartNIC.
///
/// NPU pipelines process packets in a few microseconds of fixed latency plus
/// batching; 32 µs per hop calibrates the original Figure 1 chain to the
/// few-hundred-microsecond service-chain latency the poster reports.
pub const DEFAULT_NIC_LATENCY: SimDuration = SimDuration::from_micros(32);

/// Default per-packet pipeline latency of a vNF on the CPU (DPDK polling,
/// vhost and virtualisation overheads make it slightly higher than the NIC).
pub const DEFAULT_CPU_LATENCY: SimDuration = SimDuration::from_micros(40);

/// The catalogue of capacity profiles used by the experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileCatalog {
    profiles: BTreeMap<NfKind, CapacityProfile>,
}

impl ProfileCatalog {
    /// An empty catalogue.
    pub fn new() -> Self {
        ProfileCatalog {
            profiles: BTreeMap::new(),
        }
    }

    /// The catalogue with the paper's Table 1 values:
    ///
    /// | vNF           | θ^S        | θ^C     |
    /// |---------------|-----------|---------|
    /// | Firewall      | 10 Gbps   | 4 Gbps  |
    /// | Logger        | 2 Gbps    | 4 Gbps  |
    /// | Monitor       | 3.2 Gbps  | 10 Gbps |
    /// | Load Balancer | >10 Gbps (modelled 14) | 4 Gbps |
    ///
    /// plus profiles for the additional vNFs this workspace implements
    /// (measured with the capacity probe of `pam-runtime` on the same device
    /// models, so they are mutually consistent).
    pub fn table1() -> Self {
        let mut catalog = ProfileCatalog::new();
        let defaults = |kind, nic, cpu| CapacityProfile {
            kind,
            nic_capacity: Gbps::new(nic),
            cpu_capacity: Gbps::new(cpu),
            load_factor: 1.0,
            nic_latency: DEFAULT_NIC_LATENCY,
            cpu_latency: DEFAULT_CPU_LATENCY,
        };
        catalog.insert(defaults(NfKind::Firewall, 10.0, 4.0));
        catalog.insert(defaults(NfKind::Logger, 2.0, 4.0));
        catalog.insert(defaults(NfKind::Monitor, 3.2, 10.0));
        catalog.insert(defaults(NfKind::LoadBalancer, 14.0, 4.0));
        // Not part of Table 1 — this workspace's own additions.
        catalog.insert(defaults(NfKind::Nat, 8.0, 4.5));
        catalog.insert(defaults(NfKind::Dpi, 1.6, 3.0));
        catalog.insert(defaults(NfKind::RateLimiter, 12.0, 6.0));
        catalog
    }

    /// The Figure 1 evaluation scenario: Table 1 capacities with the Logger
    /// configured as a sampling logger (load factor 0.25), which makes the
    /// Monitor the SmartNIC hot spot exactly as in the poster's Figure 1(b).
    pub fn figure1_scenario() -> Self {
        let mut catalog = Self::table1();
        if let Some(logger) = catalog.profiles.get_mut(&NfKind::Logger) {
            logger.load_factor = 0.25;
        }
        catalog
    }

    /// Adds or replaces a profile.
    pub fn insert(&mut self, profile: CapacityProfile) {
        self.profiles.insert(profile.kind, profile);
    }

    /// Looks up the profile for a kind.
    pub fn get(&self, kind: NfKind) -> Option<&CapacityProfile> {
        self.profiles.get(&kind)
    }

    /// Looks up the profile for a kind, returning a typed error if it is
    /// missing so callers can surface an unregistered kind as a recoverable
    /// configuration problem instead of aborting.
    pub fn require(&self, kind: NfKind) -> Result<&CapacityProfile> {
        self.profiles
            .get(&kind)
            .ok_or_else(|| PamError::missing_profile(kind.name()))
    }

    /// Iterates over all profiles in a stable (kind) order.
    pub fn iter(&self) -> impl Iterator<Item = &CapacityProfile> {
        self.profiles.values()
    }

    /// Number of registered profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when no profiles are registered.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

impl Default for ProfileCatalog {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let catalog = ProfileCatalog::table1();
        let fw = catalog.require(NfKind::Firewall).unwrap();
        assert_eq!(fw.nic_capacity, Gbps::new(10.0));
        assert_eq!(fw.cpu_capacity, Gbps::new(4.0));
        let logger = catalog.require(NfKind::Logger).unwrap();
        assert_eq!(logger.nic_capacity, Gbps::new(2.0));
        assert_eq!(logger.cpu_capacity, Gbps::new(4.0));
        let monitor = catalog.require(NfKind::Monitor).unwrap();
        assert_eq!(monitor.nic_capacity, Gbps::new(3.2));
        assert_eq!(monitor.cpu_capacity, Gbps::new(10.0));
        let lb = catalog.require(NfKind::LoadBalancer).unwrap();
        assert!(lb.nic_capacity > Gbps::new(10.0), "paper lists >10 Gbps");
        assert_eq!(lb.cpu_capacity, Gbps::new(4.0));
    }

    #[test]
    fn every_kind_has_a_profile() {
        let catalog = ProfileCatalog::table1();
        for kind in NfKind::ALL {
            assert!(catalog.get(kind).is_some(), "missing profile for {kind}");
        }
        assert_eq!(catalog.len(), NfKind::ALL.len());
        assert!(!catalog.is_empty());
        assert!(ProfileCatalog::new().is_empty());
    }

    #[test]
    fn capacity_and_latency_lookup_by_device() {
        let catalog = ProfileCatalog::table1();
        let monitor = catalog.require(NfKind::Monitor).unwrap();
        assert_eq!(monitor.capacity_on(Device::SmartNic), Gbps::new(3.2));
        assert_eq!(monitor.capacity_on(Device::Cpu), Gbps::new(10.0));
        assert_eq!(monitor.latency_on(Device::SmartNic), DEFAULT_NIC_LATENCY);
        assert_eq!(monitor.latency_on(Device::Cpu), DEFAULT_CPU_LATENCY);
    }

    #[test]
    fn utilisation_is_linear_in_throughput() {
        let catalog = ProfileCatalog::table1();
        let monitor = catalog.require(NfKind::Monitor).unwrap();
        let at1 = monitor.utilisation_on(Device::SmartNic, Gbps::new(1.0));
        let at2 = monitor.utilisation_on(Device::SmartNic, Gbps::new(2.0));
        assert!((at2 - 2.0 * at1).abs() < 1e-12);
        assert!((at1 - 1.0 / 3.2).abs() < 1e-12);
    }

    #[test]
    fn figure1_scenario_makes_monitor_the_hot_spot() {
        let catalog = ProfileCatalog::figure1_scenario();
        let t = Gbps::new(2.2);
        let mut utils: Vec<(NfKind, f64)> = NfKind::FIGURE1
            .iter()
            .filter(|&&k| k != NfKind::LoadBalancer)
            .map(|&k| {
                (
                    k,
                    catalog
                        .require(k)
                        .unwrap()
                        .utilisation_on(Device::SmartNic, t),
                )
            })
            .collect();
        utils.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        assert_eq!(utils[0].0, NfKind::Monitor, "monitor must be the hot spot");
        // And the NIC as a whole is overloaded at 2.2 Gbps.
        let total: f64 = utils.iter().map(|(_, u)| u).sum();
        assert!(total > 1.0, "total NIC utilisation {total} must exceed 1");
    }

    #[test]
    fn load_factor_override() {
        let catalog = ProfileCatalog::table1();
        let logger = catalog
            .require(NfKind::Logger)
            .unwrap()
            .with_load_factor(0.5);
        assert_eq!(logger.load_factor, 0.5);
        assert!((logger.utilisation_on(Device::SmartNic, Gbps::new(2.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_is_infinite_utilisation() {
        let profile = CapacityProfile {
            kind: NfKind::Dpi,
            nic_capacity: Gbps::ZERO,
            cpu_capacity: Gbps::new(1.0),
            load_factor: 1.0,
            nic_latency: DEFAULT_NIC_LATENCY,
            cpu_latency: DEFAULT_CPU_LATENCY,
        };
        assert!(profile
            .utilisation_on(Device::SmartNic, Gbps::new(0.1))
            .is_infinite());
    }

    #[test]
    fn serde_round_trip() {
        let catalog = ProfileCatalog::figure1_scenario();
        let json = serde_json::to_string(&catalog).unwrap();
        let back: ProfileCatalog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, catalog);
    }
}
