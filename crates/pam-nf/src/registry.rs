//! Building runnable vNF instances from chain specifications, including
//! rebuilding an instance from exported migration state.

use pam_types::Result;

use crate::chain::NfSpec;
use crate::dpi::DpiEngine;
use crate::firewall::Firewall;
use crate::load_balancer::LoadBalancer;
use crate::logger::Logger;
use crate::monitor::FlowMonitor;
use crate::nat::Nat;
use crate::nf::{NetworkFunction, NfKind};
use crate::rate_limiter::RateLimiter;

/// Builds a fresh vNF instance for a chain position, using each vNF's
/// evaluation-default configuration. Experiment scenarios that need custom
/// configurations construct the concrete types directly.
pub fn build_nf(spec: &NfSpec) -> Box<dyn NetworkFunction> {
    build_kind(spec.kind)
}

/// Builds a fresh vNF instance of the given kind with its evaluation-default
/// configuration.
pub fn build_kind(kind: NfKind) -> Box<dyn NetworkFunction> {
    match kind {
        NfKind::Firewall => Box::new(Firewall::evaluation_default()),
        NfKind::Monitor => Box::new(FlowMonitor::evaluation_default()),
        NfKind::Logger => Box::new(Logger::evaluation_default()),
        NfKind::LoadBalancer => Box::new(LoadBalancer::evaluation_default()),
        NfKind::Nat => Box::new(Nat::evaluation_default()),
        NfKind::Dpi => Box::new(DpiEngine::evaluation_default()),
        NfKind::RateLimiter => Box::new(RateLimiter::evaluation_default()),
    }
}

/// Builds a vNF of the given kind and restores previously exported state
/// into it — the migration target's half of an OpenNF-style state transfer.
///
/// A kind mismatch or a malformed state blob is reported as a typed error so
/// the runtime can abort just the migration, not the process.
pub fn restore_kind(kind: NfKind, state: crate::nf::NfState) -> Result<Box<dyn NetworkFunction>> {
    let mut nf = build_kind(kind);
    nf.import_state(state)?;
    Ok(nf)
}

/// Builds the vNF for a chain position and restores exported state into it.
/// See [`restore_kind`].
pub fn restore_nf(spec: &NfSpec, state: crate::nf::NfState) -> Result<Box<dyn NetworkFunction>> {
    restore_kind(spec.kind, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::{NfContext, NfVerdict};
    use crate::packet::Packet;
    use pam_types::SimTime;
    use pam_wire::{PacketBuilder, TransportKind};

    #[test]
    fn every_kind_is_buildable_and_reports_its_kind() {
        for kind in NfKind::ALL {
            let nf = build_kind(kind);
            assert_eq!(nf.kind(), kind, "registry built the wrong NF for {kind}");
        }
    }

    #[test]
    fn built_instances_process_packets() {
        let bytes = PacketBuilder::new()
            .transport(TransportKind::Tcp)
            .ports(40_000, 443)
            .total_len(256)
            .build();
        let ctx = NfContext::at(SimTime::ZERO);
        for kind in NfKind::ALL {
            let mut nf = build_kind(kind);
            let mut packet = Packet::from_bytes(1, bytes.clone(), SimTime::ZERO);
            let verdict = nf.process(&mut packet, &ctx);
            assert_eq!(
                verdict,
                NfVerdict::Forward,
                "{kind} should forward benign evaluation traffic"
            );
        }
    }

    #[test]
    fn build_from_spec_uses_the_kind() {
        let spec = NfSpec::labeled(NfKind::Monitor, "edge-monitor");
        let nf = build_nf(&spec);
        assert_eq!(nf.kind(), NfKind::Monitor);
    }

    #[test]
    fn exported_state_restores_into_fresh_instance() {
        let bytes = PacketBuilder::new().total_len(200).build();
        let ctx = NfContext::at(SimTime::ZERO);
        for kind in NfKind::ALL {
            let mut original = build_kind(kind);
            let mut packet = Packet::from_bytes(1, bytes.clone(), SimTime::ZERO);
            original.process(&mut packet, &ctx);
            let state = original.export_state();
            let restored = restore_kind(kind, state);
            assert!(
                restored.is_ok(),
                "{kind} state restore failed: {}",
                restored.err().unwrap()
            );
            assert_eq!(restored.unwrap().kind(), kind);
        }
    }

    #[test]
    fn kind_mismatch_during_restore_is_a_recoverable_error() {
        let state = build_kind(NfKind::Monitor).export_state();
        let err = match restore_kind(NfKind::Logger, state) {
            Ok(_) => panic!("kind mismatch must not restore"),
            Err(err) => err,
        };
        let message = err.to_string();
        assert!(
            message.contains("Monitor") && message.contains("Logger"),
            "{message}"
        );
    }

    #[test]
    fn malformed_state_blob_during_restore_is_a_recoverable_error() {
        use crate::nf::NfState;
        use pam_types::ByteSize;

        // A Monitor-tagged blob whose payload is not Monitor state.
        let state = NfState {
            kind: NfKind::Monitor,
            data: serde_json::json!({"not": "monitor state"}),
            estimated_size: ByteSize::bytes(32),
        };
        let result = restore_nf(&NfSpec::labeled(NfKind::Monitor, "edge"), state);
        assert!(result.is_err(), "malformed state must not restore");
    }
}
