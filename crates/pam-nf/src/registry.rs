//! Building runnable vNF instances from chain specifications.

use crate::chain::NfSpec;
use crate::dpi::DpiEngine;
use crate::firewall::Firewall;
use crate::load_balancer::LoadBalancer;
use crate::logger::Logger;
use crate::monitor::FlowMonitor;
use crate::nat::Nat;
use crate::nf::{NetworkFunction, NfKind};
use crate::rate_limiter::RateLimiter;

/// Builds a fresh vNF instance for a chain position, using each vNF's
/// evaluation-default configuration. Experiment scenarios that need custom
/// configurations construct the concrete types directly.
pub fn build_nf(spec: &NfSpec) -> Box<dyn NetworkFunction> {
    build_kind(spec.kind)
}

/// Builds a fresh vNF instance of the given kind with its evaluation-default
/// configuration.
pub fn build_kind(kind: NfKind) -> Box<dyn NetworkFunction> {
    match kind {
        NfKind::Firewall => Box::new(Firewall::evaluation_default()),
        NfKind::Monitor => Box::new(FlowMonitor::evaluation_default()),
        NfKind::Logger => Box::new(Logger::evaluation_default()),
        NfKind::LoadBalancer => Box::new(LoadBalancer::evaluation_default()),
        NfKind::Nat => Box::new(Nat::evaluation_default()),
        NfKind::Dpi => Box::new(DpiEngine::evaluation_default()),
        NfKind::RateLimiter => Box::new(RateLimiter::evaluation_default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::{NfContext, NfVerdict};
    use crate::packet::Packet;
    use pam_types::SimTime;
    use pam_wire::{PacketBuilder, TransportKind};

    #[test]
    fn every_kind_is_buildable_and_reports_its_kind() {
        for kind in NfKind::ALL {
            let nf = build_kind(kind);
            assert_eq!(nf.kind(), kind, "registry built the wrong NF for {kind}");
        }
    }

    #[test]
    fn built_instances_process_packets() {
        let bytes = PacketBuilder::new()
            .transport(TransportKind::Tcp)
            .ports(40_000, 443)
            .total_len(256)
            .build();
        let ctx = NfContext::at(SimTime::ZERO);
        for kind in NfKind::ALL {
            let mut nf = build_kind(kind);
            let mut packet = Packet::from_bytes(1, bytes.clone(), SimTime::ZERO);
            let verdict = nf.process(&mut packet, &ctx);
            assert_eq!(
                verdict,
                NfVerdict::Forward,
                "{kind} should forward benign evaluation traffic"
            );
        }
    }

    #[test]
    fn build_from_spec_uses_the_kind() {
        let spec = NfSpec::labeled(NfKind::Monitor, "edge-monitor");
        let nf = build_nf(&spec);
        assert_eq!(nf.kind(), NfKind::Monitor);
    }

    #[test]
    fn exported_state_reimports_into_fresh_instance() {
        let bytes = PacketBuilder::new().total_len(200).build();
        let ctx = NfContext::at(SimTime::ZERO);
        for kind in NfKind::ALL {
            let mut original = build_kind(kind);
            let mut packet = Packet::from_bytes(1, bytes.clone(), SimTime::ZERO);
            original.process(&mut packet, &ctx);
            let state = original.export_state();
            let mut fresh = build_kind(kind);
            fresh
                .import_state(state)
                .unwrap_or_else(|e| panic!("{kind} state import failed: {e}"));
        }
    }
}
