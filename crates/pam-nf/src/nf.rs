//! The [`NetworkFunction`] trait, vNF taxonomy and migratable state.
//!
//! vNFs process packets one at a time through [`NetworkFunction::process`].
//! Live migration between the SmartNIC and the CPU (the mechanism PAM adopts
//! from UNO \[4\] and OpenNF \[1\]) needs each vNF to be able to serialise its
//! runtime state on the source device and restore it on the target device;
//! [`NfState`] carries that snapshot plus an estimated transfer size that the
//! runtime uses to model the PCIe cost of the transfer.

use std::fmt;

use pam_types::{ByteSize, PamError, Result, SimTime};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use crate::packet::Packet;

/// The kinds of vNF the workspace implements.
///
/// The first four are the poster's Figure 1 chain (with capacities from
/// Table 1); the rest are additional vNFs used by the examples and the
/// ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NfKind {
    /// Stateless 5-tuple firewall.
    Firewall,
    /// Per-flow statistics monitor.
    Monitor,
    /// Sampling packet logger.
    Logger,
    /// L4 load balancer with connection stickiness.
    LoadBalancer,
    /// Source NAT with port allocation.
    Nat,
    /// Deep packet inspection (multi-pattern payload scanning).
    Dpi,
    /// Token-bucket rate limiter.
    RateLimiter,
}

impl NfKind {
    /// Every implemented kind.
    pub const ALL: [NfKind; 7] = [
        NfKind::Firewall,
        NfKind::Monitor,
        NfKind::Logger,
        NfKind::LoadBalancer,
        NfKind::Nat,
        NfKind::Dpi,
        NfKind::RateLimiter,
    ];

    /// The four kinds of the poster's Figure 1 chain.
    pub const FIGURE1: [NfKind; 4] = [
        NfKind::Firewall,
        NfKind::Monitor,
        NfKind::Logger,
        NfKind::LoadBalancer,
    ];

    /// The human-readable name the paper uses.
    pub const fn name(self) -> &'static str {
        match self {
            NfKind::Firewall => "Firewall",
            NfKind::Monitor => "Monitor",
            NfKind::Logger => "Logger",
            NfKind::LoadBalancer => "Load Balancer",
            NfKind::Nat => "NAT",
            NfKind::Dpi => "DPI",
            NfKind::RateLimiter => "Rate Limiter",
        }
    }

    /// True for vNFs that keep per-flow state (and therefore have a
    /// non-trivial migration transfer cost).
    pub const fn is_stateful(self) -> bool {
        !matches!(self, NfKind::Firewall)
    }
}

impl fmt::Display for NfKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// What a vNF decided to do with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfVerdict {
    /// Pass the packet to the next hop.
    Forward,
    /// Drop the packet (policy, rate limit, signature match, ...).
    Drop,
}

impl NfVerdict {
    /// True when the packet continues through the chain.
    pub const fn is_forward(self) -> bool {
        matches!(self, NfVerdict::Forward)
    }
}

/// Per-packet context handed to [`NetworkFunction::process`].
#[derive(Debug, Clone, Copy)]
pub struct NfContext {
    /// Current simulation time.
    pub now: SimTime,
}

impl NfContext {
    /// Creates a context for the given instant.
    pub const fn at(now: SimTime) -> Self {
        NfContext { now }
    }
}

/// A serialised snapshot of a vNF's runtime state, used for live migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NfState {
    /// The kind of vNF this state belongs to (import refuses a mismatch).
    pub kind: NfKind,
    /// The serialised state payload.
    pub data: serde_json::Value,
    /// Estimated on-the-wire size of the state when transferred over PCIe.
    pub estimated_size: ByteSize,
}

impl NfState {
    /// Serialises a typed state value.
    pub fn encode<T: Serialize>(kind: NfKind, value: &T) -> Self {
        let data = serde_json::to_value(value).unwrap_or(serde_json::Value::Null);
        // The JSON text length is a reasonable proxy for the serialised size;
        // real systems ship a compact binary encoding, so charge 60% of it.
        let json_len = serde_json::to_string(&data).map(|s| s.len()).unwrap_or(0);
        NfState {
            kind,
            data,
            estimated_size: ByteSize::bytes((json_len as u64 * 6) / 10),
        }
    }

    /// Deserialises the payload back into a typed value, checking the kind.
    pub fn decode<T: DeserializeOwned>(&self, expected: NfKind) -> Result<T> {
        if self.kind != expected {
            return Err(PamError::state(format!(
                "cannot import {} state into a {} instance",
                self.kind, expected
            )));
        }
        // Deserialize through the by-reference trait entry point: cloning
        // `self.data` first would deep-copy the whole state tree (the largest
        // allocation of a migration import) only to drop it immediately.
        T::from_value(&self.data)
            .map_err(|e| PamError::state(format!("corrupt {} state: {e}", self.kind)))
    }

    /// An empty state for stateless vNFs.
    pub fn empty(kind: NfKind) -> Self {
        NfState {
            kind,
            data: serde_json::Value::Null,
            estimated_size: ByteSize::ZERO,
        }
    }
}

/// A virtual network function.
///
/// Implementations are synchronous, single-threaded packet processors; the
/// simulation runtime provides timing, queueing and placement around them.
pub trait NetworkFunction: Send {
    /// The kind of this vNF.
    fn kind(&self) -> NfKind;

    /// Processes one packet, possibly mutating it, and returns a verdict.
    fn process(&mut self, packet: &mut Packet, ctx: &NfContext) -> NfVerdict;

    /// Processes a doorbell batch of packets that were serviced together,
    /// returning one verdict per packet (in order).
    ///
    /// The default loops over [`NetworkFunction::process`], so every vNF is
    /// batch-correct by construction. Implementations with real per-batch
    /// amortisation (the monitor's per-flow counter runs, the NAT's and load
    /// balancer's repeated-flow lookups) override it — but any override MUST
    /// be observationally equivalent to the default: same verdicts, same end
    /// state. `ctx.now` is the device clock at batch service completion, the
    /// single timestamp every packet of the batch is accounted at.
    ///
    /// One deliberate consequence of the shared timestamp: *time-dependent*
    /// vNFs observe the doorbell's burstiness. A token-bucket
    /// [rate limiter](crate::RateLimiter) refills once per batch, not
    /// between the batch's packets — exactly as real hardware sees a DMA'd
    /// burst arrive at one instant — so its verdicts may legitimately differ
    /// between batch sizes even though every state-keyed vNF's must not.
    fn process_batch(&mut self, packets: &mut [Packet], ctx: &NfContext) -> Vec<NfVerdict> {
        let mut verdicts = Vec::with_capacity(packets.len());
        self.process_batch_into(packets, ctx, &mut verdicts);
        verdicts
    }

    /// Allocation-free flavour of [`NetworkFunction::process_batch`]: appends
    /// one verdict per packet (in order) to `verdicts` instead of returning a
    /// fresh `Vec`. The hot datapath calls this with a reused buffer so
    /// steady-state batch service never touches the allocator; overriders of
    /// the batch path implement *this* method and inherit `process_batch`.
    fn process_batch_into(
        &mut self,
        packets: &mut [Packet],
        ctx: &NfContext,
        verdicts: &mut Vec<NfVerdict>,
    ) {
        verdicts.extend(packets.iter_mut().map(|packet| self.process(packet, ctx)));
    }

    /// Exports the vNF's migratable runtime state.
    fn export_state(&self) -> NfState;

    /// Imports previously exported state (used on the migration target).
    fn import_state(&mut self, state: NfState) -> Result<()>;

    /// Number of per-flow entries currently held (drives the modelled state
    /// transfer size during migration).
    fn flow_count(&self) -> usize {
        0
    }

    /// Marks the current state as the baseline for dirty tracking. Iterative
    /// pre-copy migration calls this right after each round's export so the
    /// next round sees only what changed since. The default is a no-op, which
    /// pairs with the conservative defaults below (everything always dirty).
    fn clear_dirty(&mut self) {}

    /// Number of flows dirtied since the last [`NetworkFunction::clear_dirty`].
    /// Defaults to [`NetworkFunction::flow_count`] — "all state is dirty" —
    /// which is always safe: pre-copy then converges via its round cap.
    fn dirty_flow_count(&self) -> usize {
        self.flow_count()
    }

    /// Exports only the state changed since the last
    /// [`NetworkFunction::clear_dirty`]. Defaults to a full export.
    fn export_dirty_state(&self) -> NfState {
        self.export_state()
    }

    /// Merges a delta produced by [`NetworkFunction::export_dirty_state`]
    /// into this instance (the migration target applies one per pre-copy
    /// round). Defaults to a full-state import, matching the default export.
    fn import_dirty_state(&mut self, state: NfState) -> Result<()> {
        self.import_state(state)
    }

    /// Clears all runtime state.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_the_paper() {
        assert_eq!(NfKind::Firewall.name(), "Firewall");
        assert_eq!(NfKind::Monitor.to_string(), "Monitor");
        assert_eq!(NfKind::Logger.name(), "Logger");
        assert_eq!(NfKind::LoadBalancer.name(), "Load Balancer");
        assert_eq!(NfKind::ALL.len(), 7);
        assert_eq!(NfKind::FIGURE1.len(), 4);
    }

    #[test]
    fn statefulness_classification() {
        assert!(!NfKind::Firewall.is_stateful());
        assert!(NfKind::Monitor.is_stateful());
        assert!(NfKind::Nat.is_stateful());
        assert!(NfKind::LoadBalancer.is_stateful());
    }

    #[test]
    fn verdict_helpers() {
        assert!(NfVerdict::Forward.is_forward());
        assert!(!NfVerdict::Drop.is_forward());
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct ToyState {
        counters: Vec<u64>,
        name: String,
    }

    #[test]
    fn state_encode_decode_round_trip() {
        let value = ToyState {
            counters: vec![1, 2, 3],
            name: "monitor".into(),
        };
        let state = NfState::encode(NfKind::Monitor, &value);
        assert!(state.estimated_size > ByteSize::ZERO);
        let back: ToyState = state.decode(NfKind::Monitor).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn state_kind_mismatch_is_rejected() {
        let state = NfState::encode(NfKind::Monitor, &vec![1u64, 2, 3]);
        let err = state.decode::<Vec<u64>>(NfKind::Logger).unwrap_err();
        assert!(err.to_string().contains("Monitor"));
        assert!(err.to_string().contains("Logger"));
    }

    #[test]
    fn corrupt_state_is_rejected() {
        let mut state = NfState::encode(NfKind::Monitor, &vec![1u64]);
        state.data = serde_json::json!({"not": "a list"});
        assert!(state.decode::<Vec<u64>>(NfKind::Monitor).is_err());
    }

    #[test]
    fn empty_state_has_zero_size() {
        let state = NfState::empty(NfKind::Firewall);
        assert_eq!(state.estimated_size, ByteSize::ZERO);
        assert_eq!(state.kind, NfKind::Firewall);
    }

    #[test]
    fn state_size_grows_with_contents() {
        let small = NfState::encode(NfKind::Monitor, &vec![0u64; 4]);
        let large = NfState::encode(NfKind::Monitor, &vec![0u64; 4000]);
        assert!(large.estimated_size > small.estimated_size * 100);
    }

    #[test]
    fn context_carries_time() {
        let ctx = NfContext::at(SimTime::from_micros(9));
        assert_eq!(ctx.now, SimTime::from_micros(9));
    }
}
