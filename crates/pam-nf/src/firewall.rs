//! A stateless 5-tuple firewall.
//!
//! Rules are evaluated in order; the first match decides. A rule matches on
//! optional source/destination prefixes, optional destination-port range and
//! optional protocol. The rule set is configuration rather than runtime
//! state, but it is still exported during migration so the CPU-side instance
//! enforces exactly the same policy the moment it takes over.

use std::fmt;
use std::net::Ipv4Addr;

use pam_types::Result;
use pam_wire::{FiveTuple, IpProtocol};
use serde::{Deserialize, Serialize};

use crate::nf::{NetworkFunction, NfContext, NfKind, NfState, NfVerdict};
use crate::packet::Packet;

/// What a matching rule does with the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FirewallAction {
    /// Let the packet continue through the chain.
    Allow,
    /// Drop the packet.
    Deny,
}

/// An IPv4 prefix, e.g. `10.0.0.0/8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prefix {
    /// Network address.
    pub addr: Ipv4Addr,
    /// Prefix length in bits (0–32).
    pub len: u8,
}

impl Prefix {
    /// Creates a prefix; lengths above 32 are clamped.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        Prefix {
            addr,
            len: len.min(32),
        }
    }

    /// True when `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - u32::from(self.len));
        (u32::from(addr) & mask) == (u32::from(self.addr) & mask)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// One firewall rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirewallRule {
    /// Optional source prefix constraint.
    pub src: Option<Prefix>,
    /// Optional destination prefix constraint.
    pub dst: Option<Prefix>,
    /// Optional inclusive destination-port range.
    pub dst_ports: Option<(u16, u16)>,
    /// Optional protocol constraint.
    pub protocol: Option<IpProtocol>,
    /// Action when the rule matches.
    pub action: FirewallAction,
}

impl FirewallRule {
    /// A rule that allows everything (useful as an explicit default).
    pub fn allow_all() -> Self {
        FirewallRule {
            src: None,
            dst: None,
            dst_ports: None,
            protocol: None,
            action: FirewallAction::Allow,
        }
    }

    /// A rule denying a whole source prefix.
    pub fn deny_src(prefix: Prefix) -> Self {
        FirewallRule {
            src: Some(prefix),
            dst: None,
            dst_ports: None,
            protocol: None,
            action: FirewallAction::Deny,
        }
    }

    /// A rule denying a destination-port range for a protocol.
    pub fn deny_dst_ports(protocol: IpProtocol, low: u16, high: u16) -> Self {
        FirewallRule {
            src: None,
            dst: None,
            dst_ports: Some((low, high)),
            protocol: Some(protocol),
            action: FirewallAction::Deny,
        }
    }

    /// True when the rule matches the 5-tuple.
    pub fn matches(&self, tuple: &FiveTuple) -> bool {
        if let Some(src) = &self.src {
            if !src.contains(tuple.src_ip) {
                return false;
            }
        }
        if let Some(dst) = &self.dst {
            if !dst.contains(tuple.dst_ip) {
                return false;
            }
        }
        if let Some((low, high)) = self.dst_ports {
            if tuple.dst_port < low || tuple.dst_port > high {
                return false;
            }
        }
        if let Some(protocol) = self.protocol {
            if tuple.protocol != protocol {
                return false;
            }
        }
        true
    }
}

/// Counters the firewall keeps (observability only — not flow state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirewallCounters {
    /// Packets allowed through.
    pub allowed: u64,
    /// Packets denied.
    pub denied: u64,
    /// Packets that failed to parse and were allowed through unchanged.
    pub unparsed: u64,
}

/// The firewall vNF.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Firewall {
    rules: Vec<FirewallRule>,
    default_action: FirewallAction,
    counters: FirewallCounters,
}

impl Firewall {
    /// Creates a firewall with the given rules and default action.
    pub fn new(rules: Vec<FirewallRule>, default_action: FirewallAction) -> Self {
        Firewall {
            rules,
            default_action,
            counters: FirewallCounters::default(),
        }
    }

    /// The permissive firewall used by the paper-reproduction scenarios: a
    /// small realistic rule set (bogon filtering and a blocked port range)
    /// that passes the synthetic evaluation traffic.
    pub fn evaluation_default() -> Self {
        Firewall::new(
            vec![
                FirewallRule::deny_src(Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 8)),
                FirewallRule::deny_src(Prefix::new(Ipv4Addr::new(127, 0, 0, 0), 8)),
                FirewallRule::deny_dst_ports(IpProtocol::Tcp, 135, 139),
                FirewallRule::deny_dst_ports(IpProtocol::Udp, 135, 139),
            ],
            FirewallAction::Allow,
        )
    }

    /// The configured rules.
    pub fn rules(&self) -> &[FirewallRule] {
        &self.rules
    }

    /// Observability counters.
    pub fn counters(&self) -> FirewallCounters {
        self.counters
    }

    /// Evaluates the rule set against a 5-tuple.
    pub fn evaluate(&self, tuple: &FiveTuple) -> FirewallAction {
        for rule in &self.rules {
            if rule.matches(tuple) {
                return rule.action;
            }
        }
        self.default_action
    }
}

impl NetworkFunction for Firewall {
    fn kind(&self) -> NfKind {
        NfKind::Firewall
    }

    fn process(&mut self, packet: &mut Packet, _ctx: &NfContext) -> NfVerdict {
        let Some(tuple) = packet.five_tuple() else {
            // Non-IP traffic is outside the policy scope; pass it through.
            self.counters.unparsed += 1;
            return NfVerdict::Forward;
        };
        match self.evaluate(&tuple) {
            FirewallAction::Allow => {
                self.counters.allowed += 1;
                NfVerdict::Forward
            }
            FirewallAction::Deny => {
                self.counters.denied += 1;
                NfVerdict::Drop
            }
        }
    }

    fn export_state(&self) -> NfState {
        NfState::encode(NfKind::Firewall, self)
    }

    fn import_state(&mut self, state: NfState) -> Result<()> {
        *self = state.decode(NfKind::Firewall)?;
        Ok(())
    }

    fn reset(&mut self) {
        self.counters = FirewallCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::SimTime;
    use pam_wire::{PacketBuilder, TransportKind};

    fn packet_to(dst_port: u16, src: Ipv4Addr) -> Packet {
        let bytes = PacketBuilder::new()
            .ips(src, Ipv4Addr::new(192, 168, 0, 10))
            .ports(40_000, dst_port)
            .transport(TransportKind::Tcp)
            .total_len(128)
            .build();
        Packet::from_bytes(0, bytes, SimTime::ZERO)
    }

    #[test]
    fn prefix_matching() {
        let p = Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8);
        assert!(p.contains(Ipv4Addr::new(10, 200, 3, 4)));
        assert!(!p.contains(Ipv4Addr::new(11, 0, 0, 1)));
        assert!(Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 0).contains(Ipv4Addr::new(8, 8, 8, 8)));
        let host = Prefix::new(Ipv4Addr::new(10, 0, 0, 1), 32);
        assert!(host.contains(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(!host.contains(Ipv4Addr::new(10, 0, 0, 2)));
        assert_eq!(Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 40).len, 32);
        assert_eq!(p.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn first_matching_rule_wins() {
        let fw = Firewall::new(
            vec![
                FirewallRule {
                    src: Some(Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8)),
                    dst: None,
                    dst_ports: None,
                    protocol: None,
                    action: FirewallAction::Allow,
                },
                FirewallRule::deny_src(Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8)),
            ],
            FirewallAction::Deny,
        );
        let tuple = FiveTuple::tcp(Ipv4Addr::new(10, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 80);
        assert_eq!(fw.evaluate(&tuple), FirewallAction::Allow);
        // No rule matches a non-10/8 source; the default applies.
        let other = FiveTuple::tcp(Ipv4Addr::new(20, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 80);
        assert_eq!(fw.evaluate(&other), FirewallAction::Deny);
    }

    #[test]
    fn port_range_and_protocol_rules() {
        let rule = FirewallRule::deny_dst_ports(IpProtocol::Tcp, 135, 139);
        let inside = FiveTuple::tcp(Ipv4Addr::new(1, 1, 1, 1), 5, Ipv4Addr::new(2, 2, 2, 2), 137);
        let outside = FiveTuple::tcp(Ipv4Addr::new(1, 1, 1, 1), 5, Ipv4Addr::new(2, 2, 2, 2), 140);
        let udp = FiveTuple::udp(Ipv4Addr::new(1, 1, 1, 1), 5, Ipv4Addr::new(2, 2, 2, 2), 137);
        assert!(rule.matches(&inside));
        assert!(!rule.matches(&outside));
        assert!(!rule.matches(&udp));
        assert!(FirewallRule::allow_all().matches(&udp));
    }

    #[test]
    fn process_allows_and_denies() {
        let mut fw = Firewall::evaluation_default();
        let ctx = NfContext::at(SimTime::ZERO);

        let mut ok = packet_to(443, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(fw.process(&mut ok, &ctx), NfVerdict::Forward);

        let mut blocked_port = packet_to(137, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(fw.process(&mut blocked_port, &ctx), NfVerdict::Drop);

        let mut bogon = packet_to(443, Ipv4Addr::new(127, 0, 0, 1));
        assert_eq!(fw.process(&mut bogon, &ctx), NfVerdict::Drop);

        let counters = fw.counters();
        assert_eq!(counters.allowed, 1);
        assert_eq!(counters.denied, 2);
    }

    #[test]
    fn non_ip_traffic_is_forwarded() {
        let mut fw = Firewall::evaluation_default();
        let mut junk = Packet::from_bytes(0, vec![0u8; 16], SimTime::ZERO);
        assert_eq!(
            fw.process(&mut junk, &NfContext::at(SimTime::ZERO)),
            NfVerdict::Forward
        );
        assert_eq!(fw.counters().unparsed, 1);
    }

    #[test]
    fn state_export_import_preserves_rules_and_counters() {
        let mut fw = Firewall::evaluation_default();
        let ctx = NfContext::at(SimTime::ZERO);
        fw.process(&mut packet_to(443, Ipv4Addr::new(10, 0, 0, 1)), &ctx);
        let state = fw.export_state();

        let mut restored = Firewall::new(vec![], FirewallAction::Deny);
        restored.import_state(state).unwrap();
        assert_eq!(restored.rules().len(), fw.rules().len());
        assert_eq!(restored.counters(), fw.counters());
        assert_eq!(restored.kind(), NfKind::Firewall);
        assert_eq!(restored.flow_count(), 0);
    }

    #[test]
    fn reset_clears_counters_only() {
        let mut fw = Firewall::evaluation_default();
        fw.process(
            &mut packet_to(80, Ipv4Addr::new(10, 0, 0, 1)),
            &NfContext::at(SimTime::ZERO),
        );
        fw.reset();
        assert_eq!(fw.counters(), FirewallCounters::default());
        assert!(!fw.rules().is_empty());
    }
}
