//! The network-function framework used by the PAM reproduction.
//!
//! The poster's service chain (Figure 1) is Firewall → Monitor → Logger →
//! Load Balancer. This crate implements those vNFs — and a few more that the
//! examples and ablation experiments use — as real packet processors over the
//! wire formats of `pam-wire`, together with the framework pieces the
//! runtime and the orchestrator need:
//!
//! * [`Packet`] — an owned packet with metadata (flow key, timestamps,
//!   per-hop record) that travels through a chain.
//! * [`NetworkFunction`] — the processing trait every vNF implements,
//!   including OpenNF-style state export/import used during live migration.
//! * [`NfKind`] and [`CapacityProfile`] — the vNF taxonomy and the Table 1
//!   capacity numbers (SmartNIC vs CPU) that drive both the analytical
//!   resource model and the packet-level simulator.
//! * [`FlowTable`] — the shared per-flow state container (monitor counters,
//!   NAT bindings, load-balancer stickiness) with capacity-bounded eviction.
//! * [`ServiceChainSpec`] — an ordered description of a chain and its
//!   ingress/egress endpoints, from which the runtime instantiates vNFs via
//!   [`registry::build_nf`].
//!
//! Concrete vNFs: [`Firewall`], [`FlowMonitor`], [`Logger`], [`LoadBalancer`],
//! [`Nat`], [`DpiEngine`], [`RateLimiter`].

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub mod chain;
pub mod dpi;
pub mod fastmap;
pub mod firewall;
pub mod flow_table;
pub mod load_balancer;
pub mod logger;
pub mod monitor;
pub mod nat;
pub mod nf;
pub mod packet;
pub mod profile;
pub mod rate_limiter;
pub mod registry;

pub use chain::{ChainPosition, NfSpec, ServiceChainSpec};
pub use dpi::{DpiEngine, DpiRule};
pub use firewall::{Firewall, FirewallAction, FirewallRule};
pub use flow_table::{FlowDelta, FlowTable, FlowTableStats};
pub use load_balancer::{Backend, LoadBalancer};
pub use logger::{LogEntry, Logger};
pub use monitor::{FlowMonitor, FlowStatsEntry};
pub use nat::Nat;
pub use nf::{NetworkFunction, NfContext, NfKind, NfState, NfVerdict};
pub use packet::Packet;
pub use profile::{CapacityProfile, ProfileCatalog};
pub use rate_limiter::RateLimiter;
pub use registry::{build_kind, build_nf, restore_kind, restore_nf};
