//! Service-chain specifications.
//!
//! A [`ServiceChainSpec`] is the *logical* description of a chain: an ordered
//! list of vNF positions between an ingress and an egress endpoint. Where
//! each position currently runs (SmartNIC or CPU) is a separate concern —
//! that is the `Placement` of `pam-core` — so the same spec can be evaluated
//! under the original placement, the naive migration and PAM.

use pam_types::{Endpoint, NfId, PamError, Result};
use serde::{Deserialize, Serialize};

use crate::nf::NfKind;

/// One position in a service chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NfSpec {
    /// The kind of vNF at this position.
    pub kind: NfKind,
    /// Optional instance-specific label (e.g. "edge-firewall").
    pub label: Option<String>,
}

impl NfSpec {
    /// A spec with no label.
    pub fn of(kind: NfKind) -> Self {
        NfSpec { kind, label: None }
    }

    /// A spec with a label.
    pub fn labeled(kind: NfKind, label: &str) -> Self {
        NfSpec {
            kind,
            label: Some(label.to_string()),
        }
    }

    /// The display name (label if present, kind name otherwise).
    pub fn display_name(&self) -> String {
        match &self.label {
            Some(label) => label.clone(),
            None => self.kind.name().to_string(),
        }
    }
}

/// A position in the chain together with its id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainPosition {
    /// The position id (hop index).
    pub id: NfId,
    /// The vNF at this position.
    pub spec: NfSpec,
}

/// An ordered service chain between two endpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceChainSpec {
    /// Chain name used in reports.
    pub name: String,
    /// Where traffic enters the chain.
    pub ingress: Endpoint,
    /// Where traffic leaves the chain.
    pub egress: Endpoint,
    positions: Vec<ChainPosition>,
}

impl ServiceChainSpec {
    /// Creates a chain from an ordered list of vNF kinds.
    pub fn new(name: &str, ingress: Endpoint, egress: Endpoint, kinds: Vec<NfKind>) -> Self {
        let positions = kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| ChainPosition {
                id: NfId::from(i),
                spec: NfSpec::of(kind),
            })
            .collect();
        ServiceChainSpec {
            name: name.to_string(),
            ingress,
            egress,
            positions,
        }
    }

    /// Creates a chain from labelled specs.
    pub fn from_specs(name: &str, ingress: Endpoint, egress: Endpoint, specs: Vec<NfSpec>) -> Self {
        let positions = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| ChainPosition {
                id: NfId::from(i),
                spec,
            })
            .collect();
        ServiceChainSpec {
            name: name.to_string(),
            ingress,
            egress,
            positions,
        }
    }

    /// The poster's Figure 1 chain: traffic from the host traverses
    /// Firewall → Monitor → Logger → Load Balancer and leaves on the wire.
    /// The Firewall (next to the host-side ingress) and the Logger (next to
    /// the CPU-resident Load Balancer) are the border vNFs of the initial
    /// placement.
    pub fn figure1() -> Self {
        ServiceChainSpec::new(
            "figure1",
            Endpoint::Host,
            Endpoint::Wire,
            vec![
                NfKind::Firewall,
                NfKind::Monitor,
                NfKind::Logger,
                NfKind::LoadBalancer,
            ],
        )
    }

    /// The chain positions in order.
    pub fn positions(&self) -> &[ChainPosition] {
        &self.positions
    }

    /// The number of vNF positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the chain has no vNFs.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The kinds in chain order.
    pub fn kinds(&self) -> Vec<NfKind> {
        self.positions.iter().map(|p| p.spec.kind).collect()
    }

    /// Looks up a position by id.
    pub fn position(&self, id: NfId) -> Result<&ChainPosition> {
        self.positions
            .get(id.index())
            .ok_or(PamError::UnknownNf(id))
    }

    /// The upstream neighbour of a position (`None` when it is the first hop,
    /// i.e. its neighbour is the ingress endpoint).
    pub fn upstream_of(&self, id: NfId) -> Option<NfId> {
        let index = id.index();
        if index == 0 || index >= self.positions.len() {
            None
        } else {
            Some(NfId::from(index - 1))
        }
    }

    /// The downstream neighbour of a position (`None` when it is the last
    /// hop, i.e. its neighbour is the egress endpoint).
    pub fn downstream_of(&self, id: NfId) -> Option<NfId> {
        let index = id.index();
        if index + 1 >= self.positions.len() {
            None
        } else {
            Some(NfId::from(index + 1))
        }
    }

    /// Appends a position and returns its id.
    pub fn push(&mut self, spec: NfSpec) -> NfId {
        let id = NfId::from(self.positions.len());
        self.positions.push(ChainPosition { id, spec });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_chain_matches_the_paper() {
        let chain = ServiceChainSpec::figure1();
        assert_eq!(chain.name, "figure1");
        assert_eq!(
            chain.kinds(),
            vec![
                NfKind::Firewall,
                NfKind::Monitor,
                NfKind::Logger,
                NfKind::LoadBalancer
            ]
        );
        assert_eq!(chain.len(), 4);
        assert!(!chain.is_empty());
        assert_eq!(chain.ingress, Endpoint::Host);
        assert_eq!(chain.egress, Endpoint::Wire);
    }

    #[test]
    fn neighbours_follow_chain_order() {
        let chain = ServiceChainSpec::figure1();
        let firewall = NfId::new(0);
        let monitor = NfId::new(1);
        let lb = NfId::new(3);
        assert_eq!(chain.upstream_of(firewall), None);
        assert_eq!(chain.downstream_of(firewall), Some(monitor));
        assert_eq!(chain.upstream_of(monitor), Some(firewall));
        assert_eq!(chain.downstream_of(lb), None);
        assert_eq!(chain.upstream_of(NfId::new(99)), None);
        assert_eq!(chain.downstream_of(NfId::new(99)), None);
    }

    #[test]
    fn position_lookup_and_errors() {
        let chain = ServiceChainSpec::figure1();
        assert_eq!(
            chain.position(NfId::new(2)).unwrap().spec.kind,
            NfKind::Logger
        );
        assert!(matches!(
            chain.position(NfId::new(7)),
            Err(PamError::UnknownNf(_))
        ));
    }

    #[test]
    fn labelled_specs_and_push() {
        let mut chain = ServiceChainSpec::from_specs(
            "edge",
            Endpoint::Wire,
            Endpoint::Host,
            vec![
                NfSpec::labeled(NfKind::Firewall, "edge-fw"),
                NfSpec::of(NfKind::Nat),
            ],
        );
        assert_eq!(chain.positions()[0].spec.display_name(), "edge-fw");
        assert_eq!(chain.positions()[1].spec.display_name(), "NAT");
        let id = chain.push(NfSpec::of(NfKind::Dpi));
        assert_eq!(id, NfId::new(2));
        assert_eq!(chain.len(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let chain = ServiceChainSpec::figure1();
        let json = serde_json::to_string(&chain).unwrap();
        let back: ServiceChainSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, chain);
    }
}
