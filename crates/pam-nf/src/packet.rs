//! The packet type that travels through a service chain.
//!
//! A [`Packet`] owns its raw bytes (built by `pam-wire`'s `PacketBuilder` or
//! any other source) plus the bookkeeping the runtime needs: a unique id, the
//! flow it belongs to, when it entered the chain, and how many PCIe crossings
//! it has paid so far. vNFs receive `&mut Packet` and may rewrite headers
//! (NAT, load balancer) — the cached 5-tuple is invalidated and re-derived
//! when that happens.

use pam_types::{ByteSize, FlowId, PamError, SimTime};
use pam_wire::{EthernetFrame, FiveTuple, Ipv4Packet, ETHERNET_HEADER_LEN};

/// An owned packet with chain-traversal metadata.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique packet id, assigned by the traffic source.
    pub id: u64,
    bytes: Vec<u8>,
    tuple: Option<FiveTuple>,
    /// When the packet entered the chain (ingress timestamp).
    pub ingress_time: SimTime,
    /// PCIe crossings this packet has paid so far.
    pub pcie_crossings: u32,
    /// Number of vNF hops that have processed this packet.
    pub hops_processed: u32,
}

impl Packet {
    /// Wraps raw frame bytes into a packet entering the chain at `ingress_time`.
    pub fn from_bytes(id: u64, bytes: Vec<u8>, ingress_time: SimTime) -> Self {
        let mut packet = Packet {
            id,
            bytes,
            tuple: None,
            ingress_time,
            pcie_crossings: 0,
            hops_processed: 0,
        };
        packet.tuple = packet.parse_tuple().ok();
        packet
    }

    /// The on-wire size of the packet.
    pub fn size(&self) -> ByteSize {
        ByteSize::bytes(self.bytes.len() as u64)
    }

    /// Immutable access to the raw frame bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the raw frame bytes. Callers that rewrite headers
    /// must call [`Packet::invalidate_tuple`] afterwards (the NAT and load
    /// balancer helpers in this crate do).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// The packet's 5-tuple, if it parsed as Ethernet/IPv4.
    pub fn five_tuple(&self) -> Option<FiveTuple> {
        self.tuple
    }

    /// The flow this packet belongs to (derived from the 5-tuple hash;
    /// non-IP packets fall back to a hash of the frame prefix so they still
    /// land in a consistent bucket).
    pub fn flow_id(&self) -> FlowId {
        match self.tuple {
            Some(t) => t.flow_id(),
            None => FlowId::new(pam_wire::five_tuple::stable_hash_bytes(
                &self.bytes[..self.bytes.len().min(32)],
            )),
        }
    }

    /// Drops the cached 5-tuple so the next access re-parses the (possibly
    /// rewritten) headers.
    pub fn invalidate_tuple(&mut self) {
        self.tuple = self.parse_tuple().ok();
    }

    /// Applies a targeted header rewrite to the cached 5-tuple *without* a
    /// full re-parse — the hot-path alternative to
    /// [`Packet::invalidate_tuple`] for vNFs (NAT, load balancer) that know
    /// exactly which fields they just rewrote in the frame bytes. The caller
    /// must have written precisely the same change into the packet, so the
    /// cache stays equal to what a re-parse would produce. No-op when the
    /// packet never parsed as IPv4 (there is no cached tuple to patch).
    pub fn patch_tuple(&mut self, rewrite: impl FnOnce(&mut FiveTuple)) {
        if let Some(tuple) = &mut self.tuple {
            rewrite(tuple);
        }
    }

    /// Parses the Ethernet/IPv4 headers and extracts the 5-tuple.
    pub fn parse_tuple(&self) -> Result<FiveTuple, PamError> {
        let eth = EthernetFrame::new_checked(self.bytes.as_slice())?;
        let ip = Ipv4Packet::new_checked(eth.payload())?;
        FiveTuple::from_ipv4(&ip)
    }

    /// A view of the IPv4 packet inside the frame (for vNFs that need to
    /// inspect or rewrite network-layer fields in place).
    pub fn ipv4_mut(&mut self) -> Result<Ipv4Packet<&mut [u8]>, PamError> {
        if self.bytes.len() < ETHERNET_HEADER_LEN {
            return Err(PamError::malformed("ethernet", "frame too short"));
        }
        Ipv4Packet::new_checked(&mut self.bytes[ETHERNET_HEADER_LEN..])
    }

    /// A read-only view of the IPv4 packet inside the frame.
    pub fn ipv4(&self) -> Result<Ipv4Packet<&[u8]>, PamError> {
        if self.bytes.len() < ETHERNET_HEADER_LEN {
            return Err(PamError::malformed("ethernet", "frame too short"));
        }
        Ipv4Packet::new_checked(&self.bytes[ETHERNET_HEADER_LEN..])
    }

    /// The transport payload bytes (after the IPv4 and transport headers),
    /// used by the DPI engine. Empty for non-IPv4 frames.
    pub fn transport_payload(&self) -> &[u8] {
        let Ok(eth) = EthernetFrame::new_checked(self.bytes.as_slice()) else {
            return &[];
        };
        let eth_payload_len = eth.payload().len();
        let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) else {
            return &[];
        };
        let transport = ip.payload();
        let transport_header = match ip.protocol() {
            pam_wire::IpProtocol::Tcp => pam_wire::TCP_HEADER_LEN,
            pam_wire::IpProtocol::Udp => pam_wire::UDP_HEADER_LEN,
            _ => 0,
        };
        if transport.len() <= transport_header {
            return &[];
        }
        // Re-slice out of self.bytes to satisfy the borrow checker.
        let ip_header_len = ip.header_len();
        let start = ETHERNET_HEADER_LEN + ip_header_len + transport_header;
        let end = ETHERNET_HEADER_LEN + eth_payload_len.min(ip.total_len() as usize);
        if start >= end || end > self.bytes.len() {
            return &[];
        }
        &self.bytes[start..end]
    }

    /// Records one PCIe crossing.
    pub fn record_crossing(&mut self) {
        self.pcie_crossings += 1;
    }

    /// Records one vNF hop.
    pub fn record_hop(&mut self) {
        self.hops_processed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_wire::{PacketBuilder, TransportKind};
    use std::net::Ipv4Addr;

    fn sample_packet(len: usize) -> Packet {
        let bytes = PacketBuilder::new()
            .ips(Ipv4Addr::new(10, 1, 1, 1), Ipv4Addr::new(10, 2, 2, 2))
            .ports(4000, 80)
            .transport(TransportKind::Udp)
            .total_len(len)
            .payload_byte(b'A')
            .build();
        Packet::from_bytes(7, bytes, SimTime::from_micros(3))
    }

    #[test]
    fn metadata_and_size() {
        let p = sample_packet(256);
        assert_eq!(p.id, 7);
        assert_eq!(p.size(), ByteSize::bytes(256));
        assert_eq!(p.ingress_time, SimTime::from_micros(3));
        assert_eq!(p.pcie_crossings, 0);
        assert_eq!(p.hops_processed, 0);
    }

    #[test]
    fn tuple_is_parsed_and_cached() {
        let p = sample_packet(128);
        let t = p.five_tuple().expect("tuple parses");
        assert_eq!(t.src_port, 4000);
        assert_eq!(t.dst_port, 80);
        assert_eq!(p.flow_id(), t.flow_id());
    }

    #[test]
    fn rewrite_and_invalidate_updates_tuple() {
        let mut p = sample_packet(128);
        {
            let mut ip = p.ipv4_mut().unwrap();
            ip.set_dst_addr(Ipv4Addr::new(192, 0, 2, 9));
            ip.fill_checksum();
        }
        p.invalidate_tuple();
        assert_eq!(p.five_tuple().unwrap().dst_ip, Ipv4Addr::new(192, 0, 2, 9));
    }

    #[test]
    fn non_ip_frames_still_get_a_flow_id() {
        let p = Packet::from_bytes(1, vec![0u8; 20], SimTime::ZERO);
        assert!(p.five_tuple().is_none());
        // Deterministic across identical contents.
        let q = Packet::from_bytes(2, vec![0u8; 20], SimTime::ZERO);
        assert_eq!(p.flow_id(), q.flow_id());
        assert!(p.ipv4().is_err());
        assert!(p.transport_payload().is_empty());
    }

    #[test]
    fn transport_payload_extraction() {
        let p = sample_packet(200);
        let payload = p.transport_payload();
        // 200 total - 14 eth - 20 ip - 8 udp = 158 payload bytes of 'A'.
        assert_eq!(payload.len(), 158);
        assert!(payload.iter().all(|&b| b == b'A'));

        // TCP as well.
        let bytes = PacketBuilder::new()
            .transport(TransportKind::Tcp)
            .total_len(100)
            .payload_byte(b'Z')
            .build();
        let p = Packet::from_bytes(3, bytes, SimTime::ZERO);
        assert_eq!(p.transport_payload().len(), 100 - 14 - 20 - 20);
    }

    #[test]
    fn hop_and_crossing_counters() {
        let mut p = sample_packet(64);
        p.record_hop();
        p.record_hop();
        p.record_crossing();
        assert_eq!(p.hops_processed, 2);
        assert_eq!(p.pcie_crossings, 1);
    }
}
