//! A source NAT vNF.
//!
//! Rewrites the source address of outbound packets to a public address and a
//! per-flow allocated port, keeping the binding table needed to keep a flow's
//! translation stable. The binding table is the migratable state.

use std::net::Ipv4Addr;

use pam_types::Result;
use serde::{Deserialize, Serialize};

use crate::flow_table::FlowTable;
use crate::nf::{NetworkFunction, NfContext, NfKind, NfState, NfVerdict};
use crate::packet::Packet;

/// A NAT binding: the translated (public) source endpoint for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Binding {
    public_port: u16,
}

/// Serialised NAT state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct NatState {
    bindings: Vec<(u64, serde_json::Value)>,
    next_port: u16,
    translated: u64,
    exhausted_drops: u64,
}

/// One pre-copy round's worth of NAT state. Bindings are write-once, so the
/// delta carries only flows bound (or evicted) since the last round.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct NatDelta {
    removed: Vec<u64>,
    bindings: Vec<(u64, serde_json::Value)>,
    next_port: u16,
    translated: u64,
    exhausted_drops: u64,
}

/// The source-NAT vNF.
#[derive(Debug)]
pub struct Nat {
    public_addr: Ipv4Addr,
    port_range: (u16, u16),
    next_port: u16,
    bindings: FlowTable<Binding>,
    translated: u64,
    exhausted_drops: u64,
}

impl Nat {
    /// Creates a NAT translating to `public_addr`, allocating ports from the
    /// inclusive `port_range`, and remembering up to `max_bindings` flows.
    pub fn new(public_addr: Ipv4Addr, port_range: (u16, u16), max_bindings: usize) -> Self {
        let range = if port_range.0 <= port_range.1 {
            port_range
        } else {
            (port_range.1, port_range.0)
        };
        Nat {
            public_addr,
            port_range: range,
            next_port: range.0,
            bindings: FlowTable::new(max_bindings),
            translated: 0,
            exhausted_drops: 0,
        }
    }

    /// The NAT used by the examples: a /32 public address with the dynamic
    /// port range.
    pub fn evaluation_default() -> Self {
        Nat::new(Ipv4Addr::new(203, 0, 113, 1), (20_000, 60_000), 65_536)
    }

    /// The public address packets are rewritten to.
    pub fn public_addr(&self) -> Ipv4Addr {
        self.public_addr
    }

    /// Number of packets translated.
    pub fn translated(&self) -> u64 {
        self.translated
    }

    /// Number of packets dropped because the port pool was exhausted.
    pub fn exhausted_drops(&self) -> u64 {
        self.exhausted_drops
    }

    fn allocate_port(&mut self) -> Option<u16> {
        let span = u32::from(self.port_range.1 - self.port_range.0) + 1;
        if (self.bindings.len() as u32) >= span {
            return None;
        }
        let port = self.next_port;
        self.next_port = if self.next_port >= self.port_range.1 {
            self.port_range.0
        } else {
            self.next_port + 1
        };
        Some(port)
    }

    /// The (possibly freshly allocated) binding for `flow`, or `None` when
    /// the port pool is exhausted. Established bindings are looked up
    /// read-only so repeat packets never re-dirty the flow.
    fn binding_for(&mut self, flow: pam_types::FlowId) -> Option<Binding> {
        match self.bindings.lookup(flow) {
            Some(b) => Some(*b),
            None => {
                let public_port = self.allocate_port()?;
                let b = Binding { public_port };
                self.bindings.entry_or_insert_with(flow, || b);
                Some(b)
            }
        }
    }

    /// Rewrites `packet`'s source address/port to `binding` and counts it.
    fn apply_binding(&mut self, packet: &mut Packet, binding: Binding) {
        let public_addr = self.public_addr;
        if let Ok(mut ip) = packet.ipv4_mut() {
            ip.set_src_addr(public_addr);
            ip.fill_checksum();
            // Rewrite the transport source port in place (first two payload bytes).
            let is_ported = ip.protocol().has_ports();
            let mut port_rewritten = false;
            if is_ported {
                let payload = ip.payload_mut();
                if payload.len() >= 2 {
                    payload[0..2].copy_from_slice(&binding.public_port.to_be_bytes());
                    port_rewritten = true;
                }
            }
            // Patch the cached tuple with exactly the fields rewritten above
            // instead of re-parsing the whole frame.
            packet.patch_tuple(|tuple| {
                tuple.src_ip = public_addr;
                if port_rewritten {
                    tuple.src_port = binding.public_port;
                }
            });
        } else {
            packet.invalidate_tuple();
        }
        self.translated += 1;
    }
}

impl NetworkFunction for Nat {
    fn kind(&self) -> NfKind {
        NfKind::Nat
    }

    fn process(&mut self, packet: &mut Packet, _ctx: &NfContext) -> NfVerdict {
        let Some(tuple) = packet.five_tuple() else {
            return NfVerdict::Forward;
        };
        let flow = tuple.flow_id();
        match self.binding_for(flow) {
            Some(binding) => {
                self.apply_binding(packet, binding);
                NfVerdict::Forward
            }
            None => {
                self.exhausted_drops += 1;
                NfVerdict::Drop
            }
        }
    }

    /// Batch-amortised translation: a run of same-flow packets resolves its
    /// binding once and reuses it for the rest of the run (the flow key is
    /// taken *before* the rewrite, so the cache matches what the table would
    /// return). Header rewriting stays per packet — every packet's bytes
    /// change. Observationally identical to the per-packet default.
    fn process_batch_into(
        &mut self,
        packets: &mut [Packet],
        _ctx: &NfContext,
        verdicts: &mut Vec<NfVerdict>,
    ) {
        let mut cached: Option<(pam_types::FlowId, Binding)> = None;
        verdicts.extend(packets.iter_mut().map(|packet| {
            let Some(tuple) = packet.five_tuple() else {
                return NfVerdict::Forward;
            };
            let flow = tuple.flow_id();
            let binding = match cached {
                Some((hit, binding)) if hit == flow => Some(binding),
                _ => self.binding_for(flow),
            };
            match binding {
                Some(binding) => {
                    cached = Some((flow, binding));
                    self.apply_binding(packet, binding);
                    NfVerdict::Forward
                }
                None => {
                    self.exhausted_drops += 1;
                    NfVerdict::Drop
                }
            }
        }));
    }

    fn export_state(&self) -> NfState {
        let state = NatState {
            bindings: self.bindings.export(),
            next_port: self.next_port,
            translated: self.translated,
            exhausted_drops: self.exhausted_drops,
        };
        NfState::encode(NfKind::Nat, &state)
    }

    fn import_state(&mut self, state: NfState) -> Result<()> {
        let decoded: NatState = state.decode(NfKind::Nat)?;
        self.bindings.import(decoded.bindings);
        self.next_port = decoded
            .next_port
            .clamp(self.port_range.0, self.port_range.1);
        self.translated = decoded.translated;
        self.exhausted_drops = decoded.exhausted_drops;
        Ok(())
    }

    fn flow_count(&self) -> usize {
        self.bindings.len()
    }

    fn clear_dirty(&mut self) {
        self.bindings.clear_dirty();
    }

    fn dirty_flow_count(&self) -> usize {
        self.bindings.dirty_len()
    }

    fn export_dirty_state(&self) -> NfState {
        let (removed, bindings) = self.bindings.export_dirty();
        let delta = NatDelta {
            removed,
            bindings,
            next_port: self.next_port,
            translated: self.translated,
            exhausted_drops: self.exhausted_drops,
        };
        NfState::encode(NfKind::Nat, &delta)
    }

    fn import_dirty_state(&mut self, state: NfState) -> Result<()> {
        let delta: NatDelta = state.decode(NfKind::Nat)?;
        self.bindings.import_dirty((delta.removed, delta.bindings));
        self.next_port = delta.next_port.clamp(self.port_range.0, self.port_range.1);
        self.translated = delta.translated;
        self.exhausted_drops = delta.exhausted_drops;
        Ok(())
    }

    fn reset(&mut self) {
        self.bindings.clear();
        self.next_port = self.port_range.0;
        self.translated = 0;
        self.exhausted_drops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::SimTime;
    use pam_wire::{PacketBuilder, TransportKind};

    fn packet_from(src_port: u16) -> Packet {
        let bytes = PacketBuilder::new()
            .ips(Ipv4Addr::new(10, 1, 2, 3), Ipv4Addr::new(8, 8, 8, 8))
            .ports(src_port, 53)
            .transport(TransportKind::Udp)
            .total_len(90)
            .build();
        Packet::from_bytes(0, bytes, SimTime::ZERO)
    }

    #[test]
    fn rewrites_source_address_and_port() {
        let mut nat = Nat::new(Ipv4Addr::new(203, 0, 113, 1), (30_000, 30_010), 0);
        let mut p = packet_from(5555);
        assert_eq!(
            nat.process(&mut p, &NfContext::at(SimTime::ZERO)),
            NfVerdict::Forward
        );
        let t = p.five_tuple().unwrap();
        assert_eq!(t.src_ip, Ipv4Addr::new(203, 0, 113, 1));
        assert_eq!(t.src_port, 30_000);
        assert_eq!(t.dst_ip, Ipv4Addr::new(8, 8, 8, 8));
        assert!(p.ipv4().unwrap().verify_checksum());
        assert_eq!(nat.translated(), 1);
    }

    #[test]
    fn same_flow_keeps_its_binding() {
        let mut nat = Nat::evaluation_default();
        let mut first = packet_from(7000);
        nat.process(&mut first, &NfContext::at(SimTime::ZERO));
        let first_port = first.five_tuple().unwrap().src_port;
        // Different flow gets a different port.
        let mut other = packet_from(7001);
        nat.process(&mut other, &NfContext::at(SimTime::ZERO));
        assert_ne!(other.five_tuple().unwrap().src_port, first_port);
        // Original flow still maps to the same port.
        let mut again = packet_from(7000);
        nat.process(&mut again, &NfContext::at(SimTime::ZERO));
        assert_eq!(again.five_tuple().unwrap().src_port, first_port);
        assert_eq!(nat.flow_count(), 2);
    }

    #[test]
    fn port_pool_exhaustion_drops() {
        let mut nat = Nat::new(Ipv4Addr::new(203, 0, 113, 1), (1000, 1002), 0);
        for port in 0..3u16 {
            let mut p = packet_from(100 + port);
            assert_eq!(
                nat.process(&mut p, &NfContext::at(SimTime::ZERO)),
                NfVerdict::Forward
            );
        }
        let mut overflow = packet_from(999);
        assert_eq!(
            nat.process(&mut overflow, &NfContext::at(SimTime::ZERO)),
            NfVerdict::Drop
        );
        assert_eq!(nat.exhausted_drops(), 1);
    }

    #[test]
    fn reversed_range_is_normalised() {
        let nat = Nat::new(Ipv4Addr::new(1, 1, 1, 1), (2000, 1000), 0);
        assert_eq!(nat.port_range, (1000, 2000));
    }

    #[test]
    fn migration_keeps_bindings_stable() {
        let mut source = Nat::evaluation_default();
        let mut p = packet_from(4242);
        source.process(&mut p, &NfContext::at(SimTime::ZERO));
        let port = p.five_tuple().unwrap().src_port;

        let mut target = Nat::evaluation_default();
        target.import_state(source.export_state()).unwrap();
        let mut again = packet_from(4242);
        target.process(&mut again, &NfContext::at(SimTime::ZERO));
        assert_eq!(again.five_tuple().unwrap().src_port, port);
        assert_eq!(target.public_addr(), Ipv4Addr::new(203, 0, 113, 1));
    }

    #[test]
    fn repeat_packets_do_not_redirty_established_bindings() {
        let mut nat = Nat::evaluation_default();
        let mut p = packet_from(4000);
        nat.process(&mut p, &NfContext::at(SimTime::ZERO));
        assert_eq!(nat.dirty_flow_count(), 1, "first packet binds (dirty)");
        nat.clear_dirty();
        for _ in 0..5 {
            let mut again = packet_from(4000);
            nat.process(&mut again, &NfContext::at(SimTime::ZERO));
        }
        assert_eq!(nat.dirty_flow_count(), 0, "established flow stays clean");
    }

    #[test]
    fn dirty_delta_keeps_bindings_and_port_cursor_in_sync() {
        let mut source = Nat::evaluation_default();
        for port in 0..10u16 {
            let mut p = packet_from(port);
            source.process(&mut p, &NfContext::at(SimTime::ZERO));
        }
        let mut target = Nat::evaluation_default();
        target.import_state(source.export_state()).unwrap();
        source.clear_dirty();

        // New flows bound after the snapshot arrive via the delta.
        for port in 100..105u16 {
            let mut p = packet_from(port);
            source.process(&mut p, &NfContext::at(SimTime::ZERO));
        }
        target
            .import_dirty_state(source.export_dirty_state())
            .unwrap();
        assert_eq!(
            serde_json::to_string(&target.export_state()).unwrap(),
            serde_json::to_string(&source.export_state()).unwrap()
        );
        // A post-handover packet of an old flow keeps its translation.
        let mut old = packet_from(3);
        let mut on_target = packet_from(3);
        source.process(&mut old, &NfContext::at(SimTime::ZERO));
        target.process(&mut on_target, &NfContext::at(SimTime::ZERO));
        assert_eq!(
            old.five_tuple().unwrap().src_port,
            on_target.five_tuple().unwrap().src_port
        );
    }

    #[test]
    fn batch_processing_is_observationally_identical_to_the_loop() {
        let ports = [10u16, 10, 10, 20, 10, 30, 30, 20];
        let ctx = NfContext::at(SimTime::ZERO);
        let packets: Vec<Packet> = ports.iter().map(|&p| packet_from(p)).collect();

        let mut looped = Nat::evaluation_default();
        let mut looped_packets = packets.clone();
        let loop_verdicts: Vec<NfVerdict> = looped_packets
            .iter_mut()
            .map(|p| looped.process(p, &ctx))
            .collect();

        let mut batched = Nat::evaluation_default();
        let mut batched_packets = packets.clone();
        let batch_verdicts = batched.process_batch(&mut batched_packets, &ctx);

        assert_eq!(batch_verdicts, loop_verdicts);
        // Identical rewrites on every packet, byte for byte.
        for (a, b) in looped_packets.iter().zip(&batched_packets) {
            assert_eq!(a.bytes(), b.bytes());
        }
        assert_eq!(
            serde_json::to_string(&batched.export_state()).unwrap(),
            serde_json::to_string(&looped.export_state()).unwrap(),
            "batched NAT state must equal the per-packet loop's"
        );
    }

    #[test]
    fn batch_exhaustion_drops_match_the_loop() {
        // Two ports for three flows: the third flow drops in both paths, and
        // repeat packets of bound flows keep forwarding.
        let ports = [1u16, 2, 3, 1, 3, 2];
        let ctx = NfContext::at(SimTime::ZERO);
        let packets: Vec<Packet> = ports.iter().map(|&p| packet_from(p)).collect();

        let mut looped = Nat::new(Ipv4Addr::new(203, 0, 113, 1), (1000, 1001), 0);
        let loop_verdicts: Vec<NfVerdict> = packets
            .clone()
            .iter_mut()
            .map(|p| looped.process(p, &ctx))
            .collect();
        let mut batched = Nat::new(Ipv4Addr::new(203, 0, 113, 1), (1000, 1001), 0);
        let batch_verdicts = batched.process_batch(&mut packets.clone(), &ctx);
        assert_eq!(batch_verdicts, loop_verdicts);
        assert_eq!(batched.exhausted_drops(), looped.exhausted_drops());
        assert_eq!(batched.exhausted_drops(), 2);
    }

    #[test]
    fn non_ip_and_reset() {
        let mut nat = Nat::evaluation_default();
        let mut junk = Packet::from_bytes(0, vec![0u8; 14], SimTime::ZERO);
        assert_eq!(
            nat.process(&mut junk, &NfContext::at(SimTime::ZERO)),
            NfVerdict::Forward
        );
        nat.process(&mut packet_from(1), &NfContext::at(SimTime::ZERO));
        nat.reset();
        assert_eq!(nat.flow_count(), 0);
        assert_eq!(nat.translated(), 0);
        assert_eq!(nat.kind(), NfKind::Nat);
        assert!(nat.import_state(NfState::empty(NfKind::Dpi)).is_err());
    }
}
