//! A token-bucket rate limiter vNF.
//!
//! Enforces an aggregate bit-rate with a configurable burst allowance. Used
//! by the dynamic-orchestration example to create traffic-dependent load and
//! by tests as a second stateless-ish vNF with cheap state.

use pam_types::{Gbps, Result, SimTime};
use serde::{Deserialize, Serialize};

use crate::nf::{NetworkFunction, NfContext, NfKind, NfState, NfVerdict};
use crate::packet::Packet;

/// Serialised rate-limiter state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct RateLimiterState {
    rate_bits_per_sec: f64,
    burst_bits: f64,
    tokens_bits: f64,
    last_refill_nanos: u64,
    forwarded: u64,
    dropped: u64,
}

/// The token-bucket rate limiter vNF.
#[derive(Debug)]
pub struct RateLimiter {
    rate_bits_per_sec: f64,
    burst_bits: f64,
    tokens_bits: f64,
    last_refill: SimTime,
    forwarded: u64,
    dropped: u64,
    /// True when the bucket changed since the last `clear_dirty` — the whole
    /// limiter state is one tiny "flow" for pre-copy accounting.
    dirty: bool,
}

impl RateLimiter {
    /// Creates a limiter for `rate` with a burst allowance of `burst_bytes`.
    pub fn new(rate: Gbps, burst_bytes: u64) -> Self {
        let burst_bits = (burst_bytes * 8) as f64;
        RateLimiter {
            rate_bits_per_sec: rate.as_bits_per_sec(),
            burst_bits,
            tokens_bits: burst_bits,
            last_refill: SimTime::ZERO,
            forwarded: 0,
            dropped: 0,
            dirty: false,
        }
    }

    /// The limiter used by the examples: 5 Gbps with a 256 KiB burst.
    pub fn evaluation_default() -> Self {
        RateLimiter::new(Gbps::new(5.0), 256 * 1024)
    }

    /// Packets forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Packets dropped for exceeding the rate.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured rate.
    pub fn rate(&self) -> Gbps {
        Gbps::from_bits_per_sec(self.rate_bits_per_sec)
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        if elapsed > 0.0 {
            self.tokens_bits =
                (self.tokens_bits + elapsed * self.rate_bits_per_sec).min(self.burst_bits);
            self.last_refill = now;
        }
    }
}

impl NetworkFunction for RateLimiter {
    fn kind(&self) -> NfKind {
        NfKind::RateLimiter
    }

    fn process(&mut self, packet: &mut Packet, ctx: &NfContext) -> NfVerdict {
        self.refill(ctx.now);
        self.dirty = true;
        let needed = packet.size().as_bits() as f64;
        if self.tokens_bits >= needed {
            self.tokens_bits -= needed;
            self.forwarded += 1;
            NfVerdict::Forward
        } else {
            self.dropped += 1;
            NfVerdict::Drop
        }
    }

    fn export_state(&self) -> NfState {
        let state = RateLimiterState {
            rate_bits_per_sec: self.rate_bits_per_sec,
            burst_bits: self.burst_bits,
            tokens_bits: self.tokens_bits,
            last_refill_nanos: self.last_refill.as_nanos(),
            forwarded: self.forwarded,
            dropped: self.dropped,
        };
        NfState::encode(NfKind::RateLimiter, &state)
    }

    fn import_state(&mut self, state: NfState) -> Result<()> {
        let decoded: RateLimiterState = state.decode(NfKind::RateLimiter)?;
        self.rate_bits_per_sec = decoded.rate_bits_per_sec;
        self.burst_bits = decoded.burst_bits;
        self.tokens_bits = decoded.tokens_bits;
        self.last_refill = SimTime::from_nanos(decoded.last_refill_nanos);
        self.forwarded = decoded.forwarded;
        self.dropped = decoded.dropped;
        self.dirty = false;
        Ok(())
    }

    fn clear_dirty(&mut self) {
        self.dirty = false;
    }

    fn dirty_flow_count(&self) -> usize {
        usize::from(self.dirty)
    }

    fn reset(&mut self) {
        self.tokens_bits = self.burst_bits;
        self.last_refill = SimTime::ZERO;
        self.forwarded = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_wire::PacketBuilder;

    fn packet(len: usize, at: SimTime) -> (Packet, NfContext) {
        let bytes = PacketBuilder::new().total_len(len).build();
        (Packet::from_bytes(0, bytes, at), NfContext::at(at))
    }

    #[test]
    fn within_burst_everything_passes() {
        let mut rl = RateLimiter::new(Gbps::new(1.0), 10_000);
        for _ in 0..10 {
            let (mut p, ctx) = packet(1000, SimTime::ZERO);
            assert_eq!(rl.process(&mut p, &ctx), NfVerdict::Forward);
        }
        assert_eq!(rl.forwarded(), 10);
        assert_eq!(rl.dropped(), 0);
    }

    #[test]
    fn exceeding_burst_drops_until_refill() {
        let mut rl = RateLimiter::new(Gbps::new(1.0), 2_000);
        // Burst covers exactly two 1000-byte packets.
        let (mut a, ctx) = packet(1000, SimTime::ZERO);
        let (mut b, _) = packet(1000, SimTime::ZERO);
        let (mut c, _) = packet(1000, SimTime::ZERO);
        assert_eq!(rl.process(&mut a, &ctx), NfVerdict::Forward);
        assert_eq!(rl.process(&mut b, &ctx), NfVerdict::Forward);
        assert_eq!(rl.process(&mut c, &ctx), NfVerdict::Drop);
        // After 8 microseconds at 1 Gbps, 8000 bits (= 1000 bytes) have refilled.
        let (mut d, later) = packet(1000, SimTime::from_micros(8));
        assert_eq!(rl.process(&mut d, &later), NfVerdict::Forward);
        assert_eq!(rl.dropped(), 1);
    }

    #[test]
    fn sustained_rate_approximates_configured_rate() {
        let mut rl = RateLimiter::new(Gbps::new(2.0), 4_000);
        // Offer 4 Gbps for 1 ms: 500 packets of 1000 B every 2 us.
        let mut forwarded_bytes = 0u64;
        for i in 0..500u64 {
            let at = SimTime::from_nanos(i * 2_000);
            let (mut p, ctx) = packet(1000, at);
            if rl.process(&mut p, &ctx) == NfVerdict::Forward {
                forwarded_bytes += 1000;
            }
        }
        let achieved = Gbps::from_bytes_per_sec(forwarded_bytes as f64 / 1e-3);
        assert!(
            (achieved.as_gbps() - 2.0).abs() < 0.2,
            "achieved {achieved} should be close to the 2 Gbps limit"
        );
        assert!(rl.dropped() > 0);
    }

    #[test]
    fn tokens_cap_at_burst() {
        let mut rl = RateLimiter::new(Gbps::new(10.0), 1_000);
        // A long idle period cannot accumulate more than one burst.
        let (mut big, ctx) = packet(1400, SimTime::from_secs_f64(1.0));
        assert_eq!(rl.process(&mut big, &ctx), NfVerdict::Drop);
        let (mut ok, ctx) = packet(900, SimTime::from_secs_f64(1.0));
        assert_eq!(rl.process(&mut ok, &ctx), NfVerdict::Forward);
    }

    #[test]
    fn a_doorbell_batch_refills_the_bucket_once_not_between_packets() {
        // Pinned, *intended* batch semantics (see the `process_batch` docs):
        // a batch's packets share one timestamp, so the bucket refills once
        // per batch and the whole burst draws from the same token pool —
        // exactly how a DMA'd burst hits real hardware. Spread over time the
        // same packets would earn refills in between, so a rate limiter's
        // verdicts legitimately depend on the batch size.
        let rl = || RateLimiter::new(Gbps::new(8.0), 250); // 2000-bit burst
                                                           // Three 125 B (1000-bit) packets, 1 us apart: each inter-packet gap
                                                           // refills up to 8000 bits (capped at the burst) — spread out, every
                                                           // packet forwards.
        let mut spread = rl();
        for i in 0..3u64 {
            let (mut p, ctx) = packet(125, SimTime::from_micros(1 + i));
            assert_eq!(spread.process(&mut p, &ctx), NfVerdict::Forward);
        }
        // The same three packets as one doorbell batch at the last instant:
        // one refill caps at the 2000-bit burst, so the third packet drops.
        let mut batched = rl();
        let mut batch: Vec<Packet> = (0..3u64)
            .map(|i| packet(125, SimTime::from_micros(1 + i)).0)
            .collect();
        let ctx = NfContext::at(SimTime::from_micros(3));
        let verdicts = batched.process_batch(&mut batch, &ctx);
        assert_eq!(
            verdicts,
            vec![NfVerdict::Forward, NfVerdict::Forward, NfVerdict::Drop]
        );
        assert_eq!(batched.dropped(), 1);
    }

    #[test]
    fn dirty_flag_tracks_bucket_activity() {
        let mut rl = RateLimiter::evaluation_default();
        assert_eq!(rl.dirty_flow_count(), 0);
        let (mut p, ctx) = packet(500, SimTime::from_micros(1));
        rl.process(&mut p, &ctx);
        assert_eq!(rl.dirty_flow_count(), 1);
        rl.clear_dirty();
        assert_eq!(rl.dirty_flow_count(), 0);
        // The default delta path (full state) restores exactly.
        let mut target = RateLimiter::new(Gbps::new(1.0), 1);
        target.import_dirty_state(rl.export_dirty_state()).unwrap();
        assert_eq!(target.forwarded(), 1);
        assert_eq!(target.dirty_flow_count(), 0);
    }

    #[test]
    fn state_round_trip_and_reset() {
        let mut rl = RateLimiter::evaluation_default();
        let (mut p, ctx) = packet(1200, SimTime::from_micros(5));
        rl.process(&mut p, &ctx);
        let state = rl.export_state();

        let mut restored = RateLimiter::new(Gbps::new(1.0), 1);
        restored.import_state(state).unwrap();
        assert_eq!(restored.forwarded(), 1);
        assert!((restored.rate().as_gbps() - 5.0).abs() < 1e-9);

        restored.reset();
        assert_eq!(restored.forwarded(), 0);
        assert_eq!(restored.kind(), NfKind::RateLimiter);
        assert!(restored
            .import_state(NfState::empty(NfKind::Logger))
            .is_err());
        assert_eq!(restored.flow_count(), 0);
    }
}
