//! Benchmark crate: every Criterion target under `benches/` regenerates one
//! of the paper's tables or figures (printing the reproduced rows as part of
//! its output) and then measures the relevant code path. See `DESIGN.md`
//! section 4 for the experiment index.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
