//! A1 — decision-time micro-benchmarks of the selection algorithms.
//!
//! The PAM poster's algorithm runs in an operator control loop, so its own
//! cost is not critical, but it should stay negligible next to a polling
//! interval; this bench tracks it across chain lengths, against the naive
//! baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pam_core::{
    ChainModel, MigrationStrategy, NaiveBottleneck, PamPlanner, Placement, VnfDescriptor,
};
use pam_types::{Device, Endpoint, Gbps, NfId};

fn chain_of(n: usize) -> (ChainModel, Placement) {
    let vnfs = (0..n)
        .map(|i| {
            VnfDescriptor::new(
                NfId::from(i),
                &format!("vnf{i}"),
                Gbps::new(2.0 + (i % 7) as f64),
                Gbps::new(3.0 + (i % 5) as f64),
            )
            .with_load_factor(0.4 + 0.1 * (i % 6) as f64)
        })
        .collect();
    let chain = ChainModel::new("bench", Endpoint::Host, Endpoint::Wire, vnfs);
    let devices = (0..n)
        .map(|i| {
            if i % 4 == 3 {
                Device::Cpu
            } else {
                Device::SmartNic
            }
        })
        .collect();
    (chain, Placement::from_devices(devices))
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_micro");
    for &len in &[4usize, 16, 64] {
        let (chain, placement) = chain_of(len);
        let offered = Gbps::new(3.5);
        group.bench_with_input(BenchmarkId::new("pam_plan", len), &len, |b, _| {
            let planner = PamPlanner::new();
            b.iter(|| planner.decide(&chain, &placement, offered))
        });
        group.bench_with_input(BenchmarkId::new("naive_bottleneck", len), &len, |b, _| {
            let baseline = NaiveBottleneck::new();
            b.iter(|| baseline.decide(&chain, &placement, offered))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
