//! A4 — live-migration cost (state size, blackout) vs flow-table size.

use criterion::{criterion_group, criterion_main, Criterion};
use pam_experiments::ablations::{migration_cost_sweep, render_migration_cost};

fn bench_migration_cost(c: &mut Criterion) {
    let rows = migration_cost_sweep(&[100, 1_000, 10_000, 50_000]);
    println!("\n{}", render_migration_cost(&rows));

    let mut group = c.benchmark_group("migration_cost");
    group.sample_size(10);
    group.bench_function("migrate_monitor_1000_flows", |b| {
        b.iter(|| migration_cost_sweep(&[1_000]))
    });
    group.finish();
}

criterion_group!(benches, bench_migration_cost);
criterion_main!(benches);
