//! Datapath throughput — how fast the simulator chews packets as the
//! doorbell batch size grows.
//!
//! The batched datapath coalesces same-hop packets into batch service events
//! and whole-batch DMA bursts, so the event count per delivered packet drops
//! roughly with the batch size. This bench drives the figure-1 chain with a
//! heavy small-packet trace at each batch size, prints a simulated-packets
//!-per-wall-second table, and registers one criterion group per batch size
//! so regressions in the batched hot path are visible in isolation.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use pam_core::Placement;
use pam_nf::ServiceChainSpec;
use pam_runtime::{ChainRuntime, RuntimeConfig};
use pam_traffic::{
    ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TraceConfig, TrafficSchedule,
};
use pam_types::{ByteSize, Gbps, SimDuration};

/// The batch sizes the sweep compares (1 = the unbatched baseline).
const BATCHES: [usize; 4] = [1, 4, 16, 64];

/// A heavy small-packet trace: per-packet overheads dominate, which is
/// exactly where doorbell batching pays.
fn small_packet_trace() -> TraceConfig {
    TraceConfig {
        sizes: PacketSizeProfile::Fixed(ByteSize::bytes(128)),
        flows: FlowGeneratorConfig {
            flow_count: 1000,
            zipf_exponent: 1.0,
            tcp_fraction: 0.8,
        },
        arrival: ArrivalProcess::Cbr,
        schedule: TrafficSchedule::constant(Gbps::new(1.2), SimDuration::from_millis(4)),
        seed: 42,
    }
}

/// Runs the figure-1 chain over the trace at `max_batch`, returning the
/// number of packets injected.
fn run_datapath(max_batch: usize) -> u64 {
    let mut runtime = ChainRuntime::new(
        ServiceChainSpec::figure1(),
        &Placement::figure1_initial(),
        RuntimeConfig::evaluation_default().with_max_batch(max_batch),
    )
    .expect("runtime builds");
    let mut trace = pam_traffic::TraceSynthesizer::new(small_packet_trace());
    runtime.run_to_completion(&mut trace)
}

fn bench_datapath_throughput(c: &mut Criterion) {
    // The headline table: simulated packets per wall-clock second per batch
    // size, with the batch=1 run as the speedup reference.
    println!("\ndatapath_throughput — figure-1 chain, 128 B packets at 1.2 Gbps");
    println!("batch | wall ms | sim pkts/s | speedup");
    let mut reference = 0.0f64;
    for &batch in &BATCHES {
        let start = Instant::now();
        let injected = run_datapath(batch);
        let wall = start.elapsed().as_secs_f64();
        if batch == 1 {
            reference = wall;
        }
        println!(
            "{batch:5} | {:7.1} | {:10.0} | {:.2}x",
            wall * 1e3,
            injected as f64 / wall.max(1e-9),
            reference / wall.max(1e-9),
        );
    }

    let mut group = c.benchmark_group("datapath_throughput");
    group.sample_size(10);
    for &batch in &BATCHES {
        group.bench_function(format!("batch_{batch}"), |b| b.iter(|| run_datapath(batch)));
    }
    group.finish();
}

criterion_group!(benches, bench_datapath_throughput);
criterion_main!(benches);
