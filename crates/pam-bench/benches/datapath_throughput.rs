//! Datapath throughput — how fast the simulator chews packets as the
//! doorbell batch size grows.
//!
//! The batched datapath coalesces same-hop packets into batch service events
//! and whole-batch DMA bursts, so the event count per delivered packet drops
//! roughly with the batch size. This bench drives the figure-1 chain with a
//! heavy small-packet trace at each batch size, prints a simulated-packets
//!-per-wall-second table, and registers one criterion group per batch size
//! so regressions in the batched hot path are visible in isolation.
//!
//! A second group times the per-arrival cost of the fleet's two load
//! estimators — the exact per-flow table vs the sliding heavy-hitter
//! sketch — over the same skewed flow mix, and prints their resident
//! footprints: the sketch must not make `record_arrival` the datapath's
//! bottleneck while cutting estimator memory by an order of magnitude.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use pam_core::Placement;
use pam_fleet::{EstimatorConfig, EstimatorKind, LoadEstimator};
use pam_nf::ServiceChainSpec;
use pam_runtime::{ChainRuntime, RuntimeConfig};
use pam_traffic::{
    ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TraceConfig, TrafficSchedule,
};
use pam_types::{ByteSize, Gbps, SimDuration, SimTime};

/// The batch sizes the sweep compares (1 = the unbatched baseline).
const BATCHES: [usize; 4] = [1, 4, 16, 64];

/// A heavy small-packet trace: per-packet overheads dominate, which is
/// exactly where doorbell batching pays.
fn small_packet_trace() -> TraceConfig {
    TraceConfig {
        sizes: PacketSizeProfile::Fixed(ByteSize::bytes(128)),
        flows: FlowGeneratorConfig {
            flow_count: 1000,
            zipf_exponent: 1.0,
            tcp_fraction: 0.8,
        },
        arrival: ArrivalProcess::Cbr,
        schedule: TrafficSchedule::constant(Gbps::new(1.2), SimDuration::from_millis(4)),
        seed: 42,
    }
}

/// Runs the figure-1 chain over the trace at `max_batch`, returning the
/// number of packets injected.
fn run_datapath(max_batch: usize) -> u64 {
    let mut runtime = ChainRuntime::new(
        ServiceChainSpec::figure1(),
        &Placement::figure1_initial(),
        RuntimeConfig::evaluation_default().with_max_batch(max_batch),
    )
    .expect("runtime builds");
    let mut trace = pam_traffic::TraceSynthesizer::new(small_packet_trace());
    runtime.run_to_completion(&mut trace)
}

/// Distinct flows the estimator benches spread arrivals over — enough that
/// the exact table's per-flow cost shows up in its footprint.
const ESTIMATOR_FLOWS: u64 = 100_000;

/// Arrivals per timed iteration of the estimator benches.
const ESTIMATOR_ARRIVALS: u64 = 65_536;

/// Builds a warm estimator of the given kind at the fleet's control cadence.
fn estimator(kind: EstimatorKind) -> LoadEstimator {
    LoadEstimator::new(
        &EstimatorConfig::of(kind).with_window(SimDuration::from_micros(1_500)),
        SimDuration::from_micros(500),
    )
}

/// One timed pass: an arrival mix skewed toward low flow ids (min of two
/// uniform draws) plus a control tick every 4096 arrivals, like the fleet's.
fn drive_estimator(e: &mut LoadEstimator) -> u64 {
    let mut tick = 0u64;
    for i in 0..ESTIMATOR_ARRIVALS {
        let hash = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let flow = (hash % ESTIMATOR_FLOWS).min((hash >> 32) % ESTIMATOR_FLOWS);
        e.record_arrival(flow, 64 + i % 1_436);
        if (i + 1) % 4_096 == 0 {
            tick += 1;
            e.record(SimTime::from_micros(tick * 500), Gbps::new(1.0));
        }
    }
    e.windowed_flow_bytes(0)
}

fn bench_load_estimators(c: &mut Criterion) {
    // The headline table: per-arrival cost and resident footprint per kind.
    println!(
        "\nload_estimators — {ESTIMATOR_ARRIVALS} skewed arrivals over {ESTIMATOR_FLOWS} flows"
    );
    println!("estimator | wall ms | ns/arrival | resident bytes");
    for kind in EstimatorKind::ALL {
        let mut e = estimator(kind);
        let start = Instant::now();
        drive_estimator(&mut e);
        let wall = start.elapsed().as_secs_f64();
        println!(
            "{:9} | {:7.2} | {:10.1} | {}",
            kind.name(),
            wall * 1e3,
            wall * 1e9 / ESTIMATOR_ARRIVALS as f64,
            e.resident_bytes(),
        );
    }

    let mut group = c.benchmark_group("load_estimators");
    group.sample_size(20);
    for kind in EstimatorKind::ALL {
        // A fresh estimator per iteration keeps tick timestamps monotone
        // (the ring clamps out-of-order samples rather than rewinding).
        group.bench_function(format!("record_arrival_{kind}"), |b| {
            b.iter(|| drive_estimator(&mut estimator(kind)))
        });
    }
    group.finish();
}

fn bench_datapath_throughput(c: &mut Criterion) {
    // The headline table: simulated packets per wall-clock second per batch
    // size, with the batch=1 run as the speedup reference.
    println!("\ndatapath_throughput — figure-1 chain, 128 B packets at 1.2 Gbps");
    println!("batch | wall ms | sim pkts/s | speedup");
    let mut reference = 0.0f64;
    for &batch in &BATCHES {
        let start = Instant::now();
        let injected = run_datapath(batch);
        let wall = start.elapsed().as_secs_f64();
        if batch == 1 {
            reference = wall;
        }
        println!(
            "{batch:5} | {:7.1} | {:10.0} | {:.2}x",
            wall * 1e3,
            injected as f64 / wall.max(1e-9),
            reference / wall.max(1e-9),
        );
    }

    let mut group = c.benchmark_group("datapath_throughput");
    group.sample_size(10);
    for &batch in &BATCHES {
        group.bench_function(format!("batch_{batch}"), |b| b.iter(|| run_datapath(batch)));
    }
    group.finish();
}

criterion_group!(benches, bench_datapath_throughput, bench_load_estimators);
criterion_main!(benches);
