//! E1 — Table 1: vNF capacities on the SmartNIC and CPU.
//!
//! Prints the reproduced table once, then benchmarks a single capacity probe
//! (the measurement primitive behind every cell of the table).

use criterion::{criterion_group, criterion_main, Criterion};
use pam_experiments::table1::run_table1;
use pam_nf::{NfKind, ProfileCatalog};
use pam_runtime::probe_capacity;
use pam_types::Device;

fn bench_table1(c: &mut Criterion) {
    let results = run_table1(&[]).unwrap();
    println!("\n{}", results.render());
    println!(
        "worst relative error vs the paper's Table 1: {:.1}%\n",
        results.worst_relative_error() * 100.0
    );

    let catalog = ProfileCatalog::table1();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("probe_logger_on_nic", |b| {
        b.iter(|| probe_capacity(NfKind::Logger, Device::SmartNic, &catalog))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
