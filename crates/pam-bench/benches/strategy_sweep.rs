//! A2 — strategy comparison over random overloaded chains.

use criterion::{criterion_group, criterion_main, Criterion};
use pam_experiments::ablations::{render_strategy_sweep, strategy_sweep};

fn bench_strategy_sweep(c: &mut Criterion) {
    let scenarios = 200;
    let rows = strategy_sweep(scenarios, 2018);
    println!("\n{}", render_strategy_sweep(&rows, scenarios));

    let mut group = c.benchmark_group("strategy_sweep");
    group.sample_size(20);
    group.bench_function("sweep_50_chains", |b| b.iter(|| strategy_sweep(50, 7)));
    group.finish();
}

criterion_group!(benches, bench_strategy_sweep);
criterion_main!(benches);
