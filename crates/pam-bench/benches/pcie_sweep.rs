//! A3 — how the naive-vs-PAM latency gap scales with PCIe crossing latency.

use criterion::{criterion_group, criterion_main, Criterion};
use pam_experiments::ablations::{pcie_sweep, render_pcie_sweep};
use pam_types::SimDuration;

fn bench_pcie_sweep(c: &mut Criterion) {
    let latencies: Vec<SimDuration> = [2u64, 5, 10, 22, 40, 60]
        .iter()
        .map(|&us| SimDuration::from_micros(us))
        .collect();
    println!("\n{}", render_pcie_sweep(&pcie_sweep(&latencies)));

    let mut group = c.benchmark_group("pcie_sweep");
    group.bench_function("analytical_sweep", |b| b.iter(|| pcie_sweep(&latencies)));
    group.finish();
}

criterion_group!(benches, bench_pcie_sweep);
criterion_main!(benches);
