//! E3 — Figure 2(b): service-chain throughput under Original / Naive / PAM.
//!
//! Prints the reproduced figure, then benchmarks a single-strategy run (the
//! per-bar cost of the reproduction).

use criterion::{criterion_group, criterion_main, Criterion};
use pam_core::StrategyKind;
use pam_experiments::figure2::{run_figure2, Figure2Config};
use pam_types::ByteSize;

fn bench_figure2_throughput(c: &mut Criterion) {
    let results = run_figure2(&Figure2Config::default());
    println!("\n{}", results.render_throughput());

    let mut group = c.benchmark_group("figure2_throughput");
    group.sample_size(10);
    group.bench_function("pam_single_size", |b| {
        b.iter(|| {
            let config = Figure2Config {
                packet_sizes: vec![ByteSize::bytes(512)],
                strategies: vec![StrategyKind::Pam],
                ..Figure2Config::quick()
            };
            run_figure2(&config)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure2_throughput);
criterion_main!(benches);
