//! Micro-benchmarks of the wire layer and the vNFs' per-packet work — the
//! substrate cost every packet of the reproduction pays.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pam_nf::{build_kind, NfContext, NfKind, Packet};
use pam_types::SimTime;
use pam_wire::{EthernetFrame, FiveTuple, Ipv4Packet, PacketBuilder, TransportKind};

fn bench_wire(c: &mut Criterion) {
    let bytes = PacketBuilder::new()
        .transport(TransportKind::Tcp)
        .total_len(512)
        .build();

    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("build_512B_tcp", |b| {
        b.iter(|| {
            PacketBuilder::new()
                .transport(TransportKind::Tcp)
                .total_len(512)
                .build()
        })
    });
    group.bench_function("parse_five_tuple", |b| {
        b.iter(|| {
            let eth = EthernetFrame::new_checked(&bytes[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            FiveTuple::from_ipv4(&ip).unwrap()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("nf_process");
    group.throughput(Throughput::Elements(1));
    for kind in [
        NfKind::Firewall,
        NfKind::Monitor,
        NfKind::LoadBalancer,
        NfKind::Dpi,
    ] {
        group.bench_function(kind.name(), |b| {
            let mut nf = build_kind(kind);
            let ctx = NfContext::at(SimTime::ZERO);
            b.iter(|| {
                let mut packet = Packet::from_bytes(1, bytes.clone(), SimTime::ZERO);
                nf.process(&mut packet, &ctx)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
