//! E2 — Figure 2(a): service-chain latency under Original / Naive / PAM.
//!
//! Prints the reproduced figure (full packet-size sweep), then benchmarks the
//! reduced-sweep reproduction so regressions in simulation speed are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use pam_experiments::figure2::{run_figure2, Figure2Config};

fn bench_figure2_latency(c: &mut Criterion) {
    let results = run_figure2(&Figure2Config::default());
    println!("\n{}", results.render_latency());
    println!(
        "PAM reduces mean service-chain latency by {:.1}% vs the naive migration (paper: ~18%)\n",
        results.pam_latency_reduction_vs_naive()
    );

    let mut group = c.benchmark_group("figure2_latency");
    group.sample_size(10);
    group.bench_function("quick_sweep", |b| {
        b.iter(|| run_figure2(&Figure2Config::quick()))
    });
    group.finish();
}

criterion_group!(benches, bench_figure2_latency);
criterion_main!(benches);
