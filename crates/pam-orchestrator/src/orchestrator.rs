//! The periodic monitor → decide → migrate loop.

use pam_core::{Decision, MigrationStrategy, ResourceModel, StrategyKind};
use pam_runtime::{ChainRuntime, MigrationEstimate, MigrationReport};
use pam_traffic::TraceSynthesizer;
use pam_types::{Device, Gbps, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of the control loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrchestratorConfig {
    /// Which migration-selection strategy to run.
    pub strategy: StrategyKind,
    /// How often the load is polled.
    pub poll_interval: SimDuration,
    /// Device utilisation above which the SmartNIC counts as overloaded.
    pub overload_threshold: f64,
    /// Minimum time between two migration actions (lets the previous
    /// migration's blackout and queue transients settle before re-deciding).
    pub cooldown: SimDuration,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            strategy: StrategyKind::Pam,
            poll_interval: SimDuration::from_millis(1),
            overload_threshold: 1.0,
            cooldown: SimDuration::from_millis(4),
        }
    }
}

impl OrchestratorConfig {
    /// A config running the given strategy with the default cadence.
    pub fn with_strategy(strategy: StrategyKind) -> Self {
        OrchestratorConfig {
            strategy,
            ..Default::default()
        }
    }
}

/// One control-loop decision and what came of it.
///
/// Serializes to JSON so orchestrator traces can be dumped by the bench
/// harness (see `fleet_bench`) instead of `Debug` strings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// When the decision was taken.
    pub at: SimTime,
    /// The offered load the decision was based on.
    pub offered: Gbps,
    /// The SmartNIC utilisation predicted by the resource model at that load.
    pub nic_utilisation: f64,
    /// The CPU utilisation predicted by the resource model at that load.
    pub cpu_utilisation: f64,
    /// What the strategy decided.
    pub decision: Decision,
    /// The runtime's cost estimate for the decision's first move, taken
    /// *before* executing it. Under pre-copy this prices the expected
    /// residual dirty set — the blackout-critical transfer — rather than the
    /// total flow count. `None` for no-action / scale-out decisions.
    pub estimate: Option<MigrationEstimate>,
    /// The migrations actually executed (empty for no-action / scale-out).
    /// These are as-of-initiation snapshots: under pre-copy the rounds,
    /// residual and real blackout are unknown here, and under either mode
    /// `packets_dropped` is still zero (drops happen during the blackout,
    /// after this record is taken). The authoritative completed reports live
    /// in the runtime's [`pam_runtime::RunOutcome::migrations`].
    pub executed: Vec<MigrationReport>,
}

/// The control plane. See the crate documentation.
pub struct Orchestrator {
    config: OrchestratorConfig,
    strategy: Box<dyn MigrationStrategy>,
    log: Vec<DecisionRecord>,
    last_migration_at: Option<SimTime>,
    scale_out_requests: u64,
}

impl std::fmt::Debug for Orchestrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orchestrator")
            .field("strategy", &self.strategy.name())
            .field("decisions", &self.log.len())
            .field("scale_out_requests", &self.scale_out_requests)
            .finish()
    }
}

impl Orchestrator {
    /// Creates an orchestrator from its configuration.
    pub fn new(config: OrchestratorConfig) -> Self {
        Orchestrator {
            strategy: config.strategy.build(),
            config,
            log: Vec::new(),
            last_migration_at: None,
            scale_out_requests: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &OrchestratorConfig {
        &self.config
    }

    /// Every decision taken so far.
    pub fn log(&self) -> &[DecisionRecord] {
        &self.log
    }

    /// Number of migrations executed so far.
    pub fn migrations_executed(&self) -> usize {
        self.log.iter().map(|r| r.executed.len()).sum()
    }

    /// Number of times the strategy reported that scale-out is required.
    pub fn scale_out_requests(&self) -> u64 {
        self.scale_out_requests
    }

    /// Runs one control step at `now`: poll, decide, execute. Returns the
    /// record of what happened (also appended to the log).
    pub fn control_step(&mut self, runtime: &mut ChainRuntime, now: SimTime) -> DecisionRecord {
        runtime.publish_metrics();
        let offered = runtime.registry().offered_load();
        self.step_with_load(runtime, now, offered)
    }

    /// Runs one control step at `now` against an externally supplied load
    /// estimate (e.g. a fleet controller's sliding-window estimator), instead
    /// of the instantaneous poll [`Orchestrator::control_step`] performs.
    /// Decides and executes exactly like `control_step` and appends to the
    /// same log.
    pub fn step_with_load(
        &mut self,
        runtime: &mut ChainRuntime,
        now: SimTime,
        offered: Gbps,
    ) -> DecisionRecord {
        let chain = runtime.chain_model();
        let placement = runtime.placement();
        let model = ResourceModel::new(&chain, &placement, offered);
        let nic_utilisation = model.device_utilisation(Device::SmartNic).value();
        let cpu_utilisation = model.device_utilisation(Device::Cpu).value();

        let in_cooldown = matches!(
            self.last_migration_at,
            Some(last) if now.duration_since(last) < self.config.cooldown
        );
        let decision = if in_cooldown {
            Decision::NoAction
        } else {
            self.strategy.decide(&chain, &placement, offered)
        };

        let mut executed = Vec::new();
        let mut estimate = None;
        match &decision {
            Decision::Migrate(plan) => {
                // Price the plan's first move before touching anything: the
                // estimate is what a cost-aware operator would have seen.
                estimate = plan
                    .moves
                    .first()
                    .and_then(|mv| runtime.estimate_migration(mv.nf, mv.to).ok());
                for mv in &plan.moves {
                    match runtime.live_migrate(mv.nf, mv.to, now) {
                        Ok(report) => executed.push(report),
                        Err(_) if runtime.pre_copy_in_progress() => {
                            // The engine runs one migration at a time (the
                            // pre-copy path): this move cannot start yet, and
                            // neither can any later one. Stop here — once the
                            // in-flight handover lands and the cooldown
                            // expires, the strategy re-plans against the new
                            // placement and picks the remaining moves up.
                            break;
                        }
                        Err(_) => {
                            // The move was already in place (e.g. executed by a
                            // previous step); skip it rather than abort the plan.
                        }
                    }
                }
                if !executed.is_empty() {
                    self.last_migration_at = Some(now);
                }
            }
            Decision::ScaleOut => {
                self.scale_out_requests += 1;
            }
            Decision::NoAction => {}
        }

        let record = DecisionRecord {
            at: now,
            offered,
            nic_utilisation,
            cpu_utilisation,
            decision,
            estimate,
            executed,
        };
        self.log.push(record.clone());
        record
    }

    /// Drives the runtime over `trace` until `until`, polling every
    /// `poll_interval`. Returns the number of control steps taken.
    pub fn run(
        &mut self,
        runtime: &mut ChainRuntime,
        trace: &mut TraceSynthesizer,
        until: SimTime,
    ) -> usize {
        let mut steps = 0;
        let mut next_poll = SimTime::ZERO + self.config.poll_interval;
        while next_poll <= until {
            runtime.run_until(trace, next_poll);
            self.control_step(runtime, next_poll);
            steps += 1;
            next_poll += self.config.poll_interval;
        }
        runtime.run_until(trace, until);
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_core::Placement;
    use pam_nf::ServiceChainSpec;
    use pam_runtime::RuntimeConfig;
    use pam_traffic::{
        ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TraceConfig, TrafficSchedule,
    };
    use pam_types::{ByteSize, NfId};

    /// Baseline 1.5 Gbps for 6 ms, then a 2.2 Gbps overload for 14 ms.
    fn overload_trace(seed: u64) -> TraceSynthesizer {
        TraceSynthesizer::new(TraceConfig {
            sizes: PacketSizeProfile::Fixed(ByteSize::bytes(512)),
            flows: FlowGeneratorConfig {
                flow_count: 2000,
                zipf_exponent: 1.0,
                tcp_fraction: 0.8,
            },
            arrival: ArrivalProcess::Cbr,
            schedule: TrafficSchedule::step_overload(
                Gbps::new(1.5),
                SimDuration::from_millis(6),
                Gbps::new(2.2),
                SimDuration::from_millis(14),
            ),
            seed,
        })
    }

    fn runtime() -> ChainRuntime {
        ChainRuntime::new(
            ServiceChainSpec::figure1(),
            &Placement::figure1_initial(),
            RuntimeConfig::evaluation_default(),
        )
        .unwrap()
    }

    #[test]
    fn pam_orchestration_migrates_the_logger_after_the_overload_onset() {
        let mut runtime = runtime();
        let mut trace = overload_trace(1);
        let mut orchestrator =
            Orchestrator::new(OrchestratorConfig::with_strategy(StrategyKind::Pam));
        let steps = orchestrator.run(&mut runtime, &mut trace, SimTime::from_millis(20));
        assert_eq!(steps, 20);
        assert_eq!(orchestrator.migrations_executed(), 1);
        let migration = &orchestrator
            .log()
            .iter()
            .find(|r| !r.executed.is_empty())
            .expect("one migration recorded")
            .executed[0];
        assert_eq!(migration.nf, NfId::new(2), "PAM migrates the Logger");
        assert_eq!(migration.to, Device::Cpu);
        // The migration happened after the load step at t = 6 ms.
        assert!(migration.started_at >= SimTime::from_millis(6));
        // Final placement has the Logger on the CPU, everything else unchanged.
        let placement = runtime.placement();
        assert_eq!(placement.device_of(NfId::new(2)).unwrap(), Device::Cpu);
        assert_eq!(placement.device_of(NfId::new(1)).unwrap(), Device::SmartNic);
        assert_eq!(orchestrator.scale_out_requests(), 0);
    }

    #[test]
    fn naive_orchestration_migrates_the_monitor_instead() {
        let mut runtime = runtime();
        let mut trace = overload_trace(2);
        let mut orchestrator = Orchestrator::new(OrchestratorConfig::with_strategy(
            StrategyKind::NaiveBottleneck,
        ));
        orchestrator.run(&mut runtime, &mut trace, SimTime::from_millis(20));
        assert_eq!(orchestrator.migrations_executed(), 1);
        let placement = runtime.placement();
        assert_eq!(placement.device_of(NfId::new(1)).unwrap(), Device::Cpu);
        assert_eq!(placement.device_of(NfId::new(2)).unwrap(), Device::SmartNic);
    }

    #[test]
    fn original_strategy_never_migrates_and_keeps_dropping() {
        let mut runtime = runtime();
        let mut trace = overload_trace(3);
        let mut orchestrator =
            Orchestrator::new(OrchestratorConfig::with_strategy(StrategyKind::Original));
        orchestrator.run(&mut runtime, &mut trace, SimTime::from_millis(20));
        assert_eq!(orchestrator.migrations_executed(), 0);
        assert!(orchestrator.log().iter().all(|r| r.decision.is_no_action()));
        // Without migration the overloaded NIC keeps dropping packets.
        assert!(runtime.outcome().drops_overload > 0);
    }

    #[test]
    fn cooldown_prevents_back_to_back_migrations() {
        let mut runtime = runtime();
        // Poll far more often than the cooldown allows acting.
        let config = OrchestratorConfig {
            strategy: StrategyKind::Pam,
            poll_interval: SimDuration::from_micros(200),
            overload_threshold: 1.0,
            cooldown: SimDuration::from_millis(50),
        };
        let mut orchestrator = Orchestrator::new(config);
        let mut trace = overload_trace(4);
        orchestrator.run(&mut runtime, &mut trace, SimTime::from_millis(20));
        assert_eq!(orchestrator.migrations_executed(), 1);
    }

    #[test]
    fn hopeless_overload_is_reported_as_scale_out() {
        let mut runtime = ChainRuntime::new(
            ServiceChainSpec::figure1(),
            &Placement::figure1_initial(),
            RuntimeConfig::evaluation_default(),
        )
        .unwrap();
        // 3.9 Gbps saturates both devices in the figure-1 profile set.
        let mut trace = TraceSynthesizer::new(TraceConfig {
            sizes: PacketSizeProfile::Fixed(ByteSize::bytes(512)),
            flows: FlowGeneratorConfig::default(),
            arrival: ArrivalProcess::Cbr,
            schedule: TrafficSchedule::constant(Gbps::new(3.9), SimDuration::from_millis(8)),
            seed: 5,
        });
        let mut orchestrator =
            Orchestrator::new(OrchestratorConfig::with_strategy(StrategyKind::Pam));
        orchestrator.run(&mut runtime, &mut trace, SimTime::from_millis(8));
        assert!(orchestrator.scale_out_requests() > 0);
        assert_eq!(orchestrator.migrations_executed(), 0);
    }

    #[test]
    fn decision_records_serialize_to_json() {
        let mut runtime = runtime();
        let mut trace = overload_trace(7);
        let mut orchestrator =
            Orchestrator::new(OrchestratorConfig::with_strategy(StrategyKind::Pam));
        orchestrator.run(&mut runtime, &mut trace, SimTime::from_millis(20));
        let json = serde_json::to_string(orchestrator.log()).unwrap();
        let back: Vec<DecisionRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, orchestrator.log());
        assert!(json.contains("nic_utilisation"));
    }

    #[test]
    fn step_with_load_drives_the_strategy_with_the_given_estimate() {
        let mut runtime = runtime();
        // Feed an overload estimate while the data plane is still idle: the
        // decision must follow the supplied load, not the instantaneous poll.
        let mut orchestrator =
            Orchestrator::new(OrchestratorConfig::with_strategy(StrategyKind::Pam));
        let record =
            orchestrator.step_with_load(&mut runtime, SimTime::from_millis(1), Gbps::new(2.2));
        assert_eq!(record.offered, Gbps::new(2.2));
        assert_eq!(orchestrator.migrations_executed(), 1);
        assert_eq!(
            runtime.placement().device_of(NfId::new(2)).unwrap(),
            Device::Cpu
        );
    }

    #[test]
    fn migrate_decisions_carry_a_cost_estimate() {
        let mut runtime = runtime();
        let mut trace = overload_trace(8);
        runtime.run_until(&mut trace, SimTime::from_millis(8));
        let mut orchestrator =
            Orchestrator::new(OrchestratorConfig::with_strategy(StrategyKind::Pam));
        let record =
            orchestrator.step_with_load(&mut runtime, SimTime::from_millis(8), Gbps::new(2.2));
        let estimate = record.estimate.expect("migrate decisions are priced");
        assert_eq!(
            estimate.mode,
            pam_runtime::MigrationMode::StopAndCopy,
            "default runtime config"
        );
        assert_eq!(estimate.frozen_flows, estimate.flows);
        assert!(estimate.blackout > pam_types::SimDuration::ZERO);
        // Idle polls carry no estimate.
        let calm =
            orchestrator.step_with_load(&mut runtime, SimTime::from_millis(9), Gbps::new(0.5));
        assert!(calm.estimate.is_none());
    }

    #[test]
    fn pre_copy_orchestration_completes_the_handover_asynchronously() {
        use pam_runtime::MigrationMode;
        let mut runtime = ChainRuntime::new(
            ServiceChainSpec::figure1(),
            &Placement::figure1_initial(),
            RuntimeConfig::evaluation_default().with_migration_mode(MigrationMode::PreCopy),
        )
        .unwrap();
        let mut trace = overload_trace(9);
        let mut orchestrator =
            Orchestrator::new(OrchestratorConfig::with_strategy(StrategyKind::Pam));
        orchestrator.run(&mut runtime, &mut trace, SimTime::from_millis(20));
        // The orchestrator initiated exactly one migration and the engine
        // completed it during later draining.
        assert_eq!(orchestrator.migrations_executed(), 1);
        let outcome = runtime.outcome();
        assert_eq!(outcome.migrations.len(), 1, "handover completed");
        let report = &outcome.migrations[0];
        assert_eq!(report.mode, MigrationMode::PreCopy);
        assert_eq!(report.nf, NfId::new(2));
        assert!(report.rounds.len() >= 2);
        assert!(report.paused_at > report.started_at);
        // The estimate priced the residual set, not the whole table.
        let priced = orchestrator
            .log()
            .iter()
            .find_map(|r| r.estimate)
            .expect("the migrate tick was priced");
        assert_eq!(priced.mode, MigrationMode::PreCopy);
        assert!(priced.frozen_flows <= 64);
        assert!(priced.frozen_flows < priced.flows);
        // Final placement matches the stop-and-copy behaviour.
        assert_eq!(
            runtime.placement().device_of(NfId::new(2)).unwrap(),
            Device::Cpu
        );
    }

    #[test]
    fn decision_records_expose_model_state() {
        let mut runtime = runtime();
        let mut trace = overload_trace(6);
        runtime.run_until(&mut trace, SimTime::from_millis(2));
        let mut orchestrator =
            Orchestrator::new(OrchestratorConfig::with_strategy(StrategyKind::Pam));
        let record = orchestrator.control_step(&mut runtime, SimTime::from_millis(2));
        assert!(record.offered.as_gbps() > 1.0);
        assert!(record.nic_utilisation > record.cpu_utilisation);
        assert!(record.decision.is_no_action());
        assert_eq!(orchestrator.log().len(), 1);
        assert_eq!(orchestrator.config().strategy, StrategyKind::Pam);
        assert!(format!("{orchestrator:?}").contains("pam"));
    }
}
