//! The control plane: periodic load polling, overload detection, strategy
//! invocation and migration execution.
//!
//! Poster §2: "The network administrators can periodically query the load of
//! SmartNIC and CPU and execute the PAM border vNF selection algorithm."
//! [`Orchestrator`] is that administrator: every `poll_interval` of simulated
//! time it reads the chain's metrics, asks the configured
//! [`MigrationStrategy`](pam_core::MigrationStrategy) what to do, executes
//! the resulting plan through the runtime's live-migration mechanism, and
//! records a [`DecisionRecord`] so experiments can inspect exactly when and
//! why each migration happened. If the strategy reports that migration
//! cannot help ([`Decision::ScaleOut`](pam_core::Decision::ScaleOut)),
//! the orchestrator counts a scale-out request — creating a second instance
//! on another server is outside the poster's (and this reproduction's) data
//! plane, but the signal is what an operator would act on.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub mod orchestrator;

pub use orchestrator::{DecisionRecord, Orchestrator, OrchestratorConfig};
