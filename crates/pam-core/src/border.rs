//! Step 1 of PAM: border vNF identification.
//!
//! A *border* vNF is a SmartNIC-resident vNF whose upstream (left border) or
//! downstream (right border) neighbour on the packet path already sits on the
//! CPU side of the PCIe link — where "neighbour" includes the chain's ingress
//! and egress endpoints (a chain that starts at the host makes its first
//! NIC-resident vNF a border). Moving a border vNF to the CPU never adds a
//! PCIe crossing, which is the entire reason PAM restricts its choices to
//! them.

use pam_types::{Device, NfId, Side};
use serde::{Deserialize, Serialize};

use crate::model::{ChainModel, Placement};

/// The left and right border sets (`B_L` and `B_R` in the poster).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BorderSets {
    /// SmartNIC vNFs whose *upstream* neighbour is on the host side.
    pub left: Vec<NfId>,
    /// SmartNIC vNFs whose *downstream* neighbour is on the host side.
    pub right: Vec<NfId>,
}

impl BorderSets {
    /// All border vNFs (left ∪ right), deduplicated, in chain order.
    pub fn all(&self) -> Vec<NfId> {
        let mut all: Vec<NfId> = self.left.iter().chain(self.right.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// True when there is no border vNF (the whole chain is on one side, or
    /// nothing is left on the SmartNIC).
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }

    /// True when `id` is a border vNF.
    pub fn contains(&self, id: NfId) -> bool {
        self.left.contains(&id) || self.right.contains(&id)
    }
}

/// Computes the border sets of a chain under a placement.
pub fn border_sets(chain: &ChainModel, placement: &Placement) -> BorderSets {
    let mut sets = BorderSets::default();
    let len = chain.len();
    for index in 0..len {
        let id = NfId::from(index);
        let Ok(device) = placement.device_of(id) else {
            continue;
        };
        if device != Device::SmartNic {
            continue;
        }
        // Upstream neighbour: previous vNF, or the ingress endpoint.
        let upstream_side = if index == 0 {
            chain.ingress.side()
        } else {
            placement
                .device_of(NfId::from(index - 1))
                .map(|d| d.side())
                .unwrap_or(Side::Nic)
        };
        // Downstream neighbour: next vNF, or the egress endpoint.
        let downstream_side = if index + 1 == len {
            chain.egress.side()
        } else {
            placement
                .device_of(NfId::from(index + 1))
                .map(|d| d.side())
                .unwrap_or(Side::Nic)
        };
        if upstream_side == Side::Host {
            sets.left.push(id);
        }
        if downstream_side == Side::Host {
            sets.right.push(id);
        }
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VnfDescriptor;
    use pam_types::{Endpoint, Gbps};

    fn chain_of(n: usize, ingress: Endpoint, egress: Endpoint) -> ChainModel {
        let vnfs = (0..n)
            .map(|i| {
                VnfDescriptor::new(
                    NfId::from(i),
                    &format!("vnf{i}"),
                    Gbps::new(5.0),
                    Gbps::new(5.0),
                )
            })
            .collect();
        ChainModel::new("test", ingress, egress, vnfs)
    }

    #[test]
    fn figure1_borders_are_firewall_and_logger() {
        let chain = ChainModel::figure1_example();
        let placement = Placement::figure1_initial();
        let sets = border_sets(&chain, &placement);
        // Firewall (position 0) borders the host-side ingress; Logger
        // (position 2) borders the CPU-resident Load Balancer.
        assert_eq!(sets.left, vec![NfId::new(0)]);
        assert_eq!(sets.right, vec![NfId::new(2)]);
        assert_eq!(sets.all(), vec![NfId::new(0), NfId::new(2)]);
        assert!(sets.contains(NfId::new(2)));
        assert!(!sets.contains(NfId::new(1)));
        assert!(!sets.is_empty());
    }

    #[test]
    fn after_migrating_the_logger_the_monitor_becomes_a_border() {
        let chain = ChainModel::figure1_example();
        let mut placement = Placement::figure1_initial();
        placement.set(NfId::new(2), Device::Cpu).unwrap();
        let sets = border_sets(&chain, &placement);
        assert_eq!(sets.left, vec![NfId::new(0)]);
        assert_eq!(sets.right, vec![NfId::new(1)]);
    }

    #[test]
    fn wire_to_wire_chain_fully_on_nic_has_no_borders() {
        let chain = chain_of(3, Endpoint::Wire, Endpoint::Wire);
        let placement = Placement::all_on(Device::SmartNic, 3);
        let sets = border_sets(&chain, &placement);
        assert!(sets.is_empty());
        assert!(sets.all().is_empty());
    }

    #[test]
    fn host_to_host_single_nic_vnf_is_both_left_and_right_border() {
        let chain = chain_of(1, Endpoint::Host, Endpoint::Host);
        let placement = Placement::all_on(Device::SmartNic, 1);
        let sets = border_sets(&chain, &placement);
        assert_eq!(sets.left, vec![NfId::new(0)]);
        assert_eq!(sets.right, vec![NfId::new(0)]);
        // The union deduplicates.
        assert_eq!(sets.all(), vec![NfId::new(0)]);
    }

    #[test]
    fn cpu_resident_vnfs_are_never_borders() {
        let chain = chain_of(4, Endpoint::Host, Endpoint::Host);
        let placement = Placement::all_on(Device::Cpu, 4);
        assert!(border_sets(&chain, &placement).is_empty());
    }

    #[test]
    fn interleaved_placement_has_multiple_borders() {
        // NIC, CPU, NIC, CPU: both NIC vNFs border CPUs on both sides
        // (position 0 also borders the wire ingress on the NIC side).
        let chain = chain_of(4, Endpoint::Wire, Endpoint::Host);
        let placement = Placement::from_devices(vec![
            Device::SmartNic,
            Device::Cpu,
            Device::SmartNic,
            Device::Cpu,
        ]);
        let sets = border_sets(&chain, &placement);
        assert_eq!(sets.left, vec![NfId::new(2)]);
        assert_eq!(sets.right, vec![NfId::new(0), NfId::new(2)]);
        assert_eq!(sets.all(), vec![NfId::new(0), NfId::new(2)]);
    }

    #[test]
    fn single_nf_chain_border_depends_on_endpoints() {
        // Wire-to-wire: the lone NIC vNF has no host-side neighbour at all.
        let wire = chain_of(1, Endpoint::Wire, Endpoint::Wire);
        let placement = Placement::all_on(Device::SmartNic, 1);
        assert!(border_sets(&wire, &placement).is_empty());

        // Host ingress only: the lone vNF is a left border, not a right one.
        let host_in = chain_of(1, Endpoint::Host, Endpoint::Wire);
        let sets = border_sets(&host_in, &placement);
        assert_eq!(sets.left, vec![NfId::new(0)]);
        assert!(sets.right.is_empty());

        // Wire ingress, host egress: right border only.
        let host_out = chain_of(1, Endpoint::Wire, Endpoint::Host);
        let sets = border_sets(&host_out, &placement);
        assert!(sets.left.is_empty());
        assert_eq!(sets.right, vec![NfId::new(0)]);
    }

    #[test]
    fn fully_on_cpu_placement_has_no_borders_regardless_of_endpoints() {
        for (ingress, egress) in [
            (Endpoint::Wire, Endpoint::Wire),
            (Endpoint::Host, Endpoint::Wire),
            (Endpoint::Host, Endpoint::Host),
        ] {
            let chain = chain_of(3, ingress, egress);
            let placement = Placement::all_on(Device::Cpu, 3);
            let sets = border_sets(&chain, &placement);
            assert!(
                sets.is_empty(),
                "CPU-resident vNFs can never be borders ({ingress:?} -> {egress:?})"
            );
        }
    }

    #[test]
    fn all_on_smartnic_placement_only_the_ends_can_be_borders() {
        // Host endpoints on both sides: exactly the first and last NIC vNFs
        // border the host, every interior vNF has NIC neighbours only.
        let chain = chain_of(4, Endpoint::Host, Endpoint::Host);
        let placement = Placement::all_on(Device::SmartNic, 4);
        let sets = border_sets(&chain, &placement);
        assert_eq!(sets.left, vec![NfId::new(0)]);
        assert_eq!(sets.right, vec![NfId::new(3)]);
        assert_eq!(sets.all(), vec![NfId::new(0), NfId::new(3)]);
        assert!(!sets.contains(NfId::new(1)));
        assert!(!sets.contains(NfId::new(2)));
    }

    #[test]
    fn empty_chain_has_no_borders() {
        let chain = chain_of(0, Endpoint::Wire, Endpoint::Host);
        let placement = Placement::all_on(Device::SmartNic, 0);
        assert!(border_sets(&chain, &placement).is_empty());
    }
}
