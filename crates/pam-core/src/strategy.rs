//! The common interface migration strategies expose to the orchestrator.

use pam_types::Gbps;
use serde::{Deserialize, Serialize};

use crate::model::{ChainModel, Placement};
use crate::naive::{NaiveBottleneck, NaiveMinCapacity, NoMigration};
use crate::pam::PamPlanner;
use crate::plan::Decision;

/// A migration-selection strategy: given the chain, its current placement and
/// the offered load, decide what (if anything) to migrate.
pub trait MigrationStrategy: Send + Sync {
    /// A short machine-readable name used in reports and bench labels.
    fn name(&self) -> &'static str;

    /// Produces a decision for the current situation.
    fn decide(&self, chain: &ChainModel, placement: &Placement, offered: Gbps) -> Decision;
}

/// The strategies the experiments compare, as a plain enum so scenarios and
/// CLI flags can name them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// No migration at all (the "Original" bar).
    Original,
    /// UNO-style bottleneck migration (the "Naive" bar).
    NaiveBottleneck,
    /// The literal §3 minimum-capacity baseline.
    NaiveMinCapacity,
    /// Push-aside migration (the "PAM" bar).
    Pam,
}

impl StrategyKind {
    /// Every strategy, in the order the paper's figures present them.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::Original,
        StrategyKind::NaiveBottleneck,
        StrategyKind::NaiveMinCapacity,
        StrategyKind::Pam,
    ];

    /// The three strategies shown in Figure 2.
    pub const FIGURE2: [StrategyKind; 3] = [
        StrategyKind::Original,
        StrategyKind::NaiveBottleneck,
        StrategyKind::Pam,
    ];

    /// Builds the strategy implementation.
    pub fn build(self) -> Box<dyn MigrationStrategy> {
        match self {
            StrategyKind::Original => Box::new(NoMigration::new()),
            StrategyKind::NaiveBottleneck => Box::new(NaiveBottleneck::new()),
            StrategyKind::NaiveMinCapacity => Box::new(NaiveMinCapacity::new()),
            StrategyKind::Pam => Box::new(PamPlanner::new()),
        }
    }

    /// The label the paper's figures use.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Original => "Original",
            StrategyKind::NaiveBottleneck => "Naive",
            StrategyKind::NaiveMinCapacity => "Naive (min θS)",
            StrategyKind::Pam => "PAM",
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::{Device, NfId};

    #[test]
    fn every_kind_builds_a_strategy_with_a_distinct_name() {
        let names: Vec<&str> = StrategyKind::ALL.iter().map(|k| k.build().name()).collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        assert_eq!(StrategyKind::FIGURE2.len(), 3);
    }

    #[test]
    fn built_strategies_agree_with_direct_construction_on_figure1() {
        let chain = ChainModel::figure1_example();
        let placement = Placement::figure1_initial();
        let offered = Gbps::new(2.2);

        let pam = StrategyKind::Pam
            .build()
            .decide(&chain, &placement, offered);
        assert_eq!(pam.plan().unwrap().moves[0].nf, NfId::new(2));
        assert_eq!(pam.plan().unwrap().moves[0].to, Device::Cpu);

        let naive = StrategyKind::NaiveBottleneck
            .build()
            .decide(&chain, &placement, offered);
        assert_eq!(naive.plan().unwrap().moves[0].nf, NfId::new(1));

        let original = StrategyKind::Original
            .build()
            .decide(&chain, &placement, offered);
        assert!(original.is_no_action());
    }

    #[test]
    fn labels_match_the_figures() {
        assert_eq!(StrategyKind::Original.label(), "Original");
        assert_eq!(StrategyKind::NaiveBottleneck.label(), "Naive");
        assert_eq!(StrategyKind::Pam.to_string(), "PAM");
        assert_eq!(StrategyKind::NaiveMinCapacity.to_string(), "Naive (min θS)");
    }

    #[test]
    fn serde_round_trip() {
        for kind in StrategyKind::ALL {
            let json = serde_json::to_string(&kind).unwrap();
            assert_eq!(serde_json::from_str::<StrategyKind>(&json).unwrap(), kind);
        }
    }
}
