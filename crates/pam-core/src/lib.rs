//! The PAM contribution: push-aside migration planning for SmartNIC/CPU
//! service chains.
//!
//! This crate is a faithful implementation of §2 of the poster:
//!
//! * [`model`] — the linear resource model: vNF descriptors with per-device
//!   capacities (`θ^S`, `θ^C`), chain placements, device utilisation and the
//!   feasibility predicates of Eq. 2 and Eq. 3.
//! * [`border`] — Step 1: identifying the left/right *border* vNFs, the only
//!   vNFs whose migration adds no PCIe crossing.
//! * [`pam`] — Steps 2–3: the iterative selection loop (Eq. 1 selection,
//!   Eq. 2 CPU check, Eq. 3 termination) that produces a [`MigrationPlan`] or
//!   reports that scale-out is unavoidable.
//! * [`naive`] — the baselines: the UNO-style "migrate the bottleneck vNF"
//!   strategy the paper compares against (its Figure 1b), the literal
//!   "minimum SmartNIC capacity" reading of §3, and the do-nothing original.
//! * [`latency`] — the analytical chain-latency model (per-hop latency plus
//!   per-crossing PCIe cost) used by planners and cross-checked against the
//!   packet-level simulator in the integration tests.
//! * [`strategy`] — the common [`MigrationStrategy`] interface the
//!   orchestrator drives.
//!
//! The crate depends only on `pam-types`, so the algorithms can be reused
//! against a real data plane as easily as against the bundled simulator.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub mod border;
pub mod latency;
pub mod model;
pub mod naive;
pub mod pam;
pub mod plan;
pub mod strategy;

pub use border::{border_sets, BorderSets};
pub use latency::LatencyModel;
pub use model::{ChainModel, Placement, ResourceModel, VnfDescriptor};
pub use naive::{NaiveBottleneck, NaiveMinCapacity, NoMigration};
pub use pam::PamPlanner;
pub use plan::{Decision, MigrationMove, MigrationPlan};
pub use strategy::{MigrationStrategy, StrategyKind};
