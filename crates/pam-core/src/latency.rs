//! The analytical service-chain latency model.
//!
//! The poster's argument is entirely about latency composition: a packet's
//! end-to-end latency is the sum of per-hop processing latency plus one PCIe
//! crossing cost for every device boundary on its path. This module encodes
//! that sum so planners (and the ablation benches) can compare placements
//! without running the packet-level simulator; the integration tests check
//! that the two agree on ordering and roughly on magnitude.

use pam_types::{ByteSize, Gbps, SimDuration};
use serde::{Deserialize, Serialize};

use crate::model::{ChainModel, Placement};

/// The analytical latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// One-way PCIe crossing latency (DMA + rings + batching).
    pub pcie_crossing_latency: SimDuration,
    /// The packet size used for capacity-dependent service terms.
    pub packet_size: ByteSize,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            pcie_crossing_latency: SimDuration::from_micros(22),
            packet_size: ByteSize::bytes(512),
        }
    }
}

impl LatencyModel {
    /// A model with a custom crossing latency (used by the PCIe ablation).
    pub fn with_crossing_latency(latency: SimDuration) -> Self {
        LatencyModel {
            pcie_crossing_latency: latency,
            ..Default::default()
        }
    }

    /// A model evaluated at a specific packet size.
    pub fn at_packet_size(mut self, size: ByteSize) -> Self {
        self.packet_size = size;
        self
    }

    /// The per-hop latency of one vNF under a placement: its fixed pipeline
    /// latency on that device plus the capacity-dependent service time for
    /// the configured packet size.
    pub fn hop_latency(
        &self,
        chain: &ChainModel,
        placement: &Placement,
        nf: pam_types::NfId,
    ) -> SimDuration {
        let Ok(vnf) = chain.vnf(nf) else {
            return SimDuration::ZERO;
        };
        let Ok(device) = placement.device_of(nf) else {
            return SimDuration::ZERO;
        };
        let capacity = vnf.capacity_on(device);
        let service = if capacity.as_gbps() > 0.0 {
            SimDuration::transmission(self.packet_size, capacity) * vnf.load_factor
        } else {
            SimDuration::ZERO
        };
        vnf.latency_on(device) + service
    }

    /// The end-to-end chain latency estimate under a placement: the sum of
    /// per-hop latencies plus the PCIe crossing cost of the path (including
    /// a serialisation term per crossing at an effective PCIe rate folded
    /// into the crossing latency).
    pub fn chain_latency(&self, chain: &ChainModel, placement: &Placement) -> SimDuration {
        let hops: SimDuration = chain
            .ids()
            .map(|id| self.hop_latency(chain, placement, id))
            .sum();
        let crossings = placement.pcie_crossings(chain) as u64;
        hops + self.pcie_crossing_latency.saturating_mul(crossings)
    }

    /// The latency penalty of `candidate` relative to `baseline` (saturating
    /// at zero when the candidate is faster).
    pub fn penalty(
        &self,
        chain: &ChainModel,
        baseline: &Placement,
        candidate: &Placement,
    ) -> SimDuration {
        self.chain_latency(chain, candidate)
            .saturating_sub(self.chain_latency(chain, baseline))
    }

    /// The relative latency change of `candidate` vs `baseline` in percent
    /// (positive = candidate is slower).
    pub fn relative_change_percent(
        &self,
        chain: &ChainModel,
        baseline: &Placement,
        candidate: &Placement,
    ) -> f64 {
        let base = self.chain_latency(chain, baseline).as_nanos() as f64;
        let cand = self.chain_latency(chain, candidate).as_nanos() as f64;
        if base <= 0.0 {
            return 0.0;
        }
        (cand - base) / base * 100.0
    }

    /// The line-rate serialisation time of the configured packet at `rate`
    /// (exposed for reports that break latency into components).
    pub fn serialisation(&self, rate: Gbps) -> SimDuration {
        SimDuration::transmission(self.packet_size, rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::{Device, NfId};

    fn figure1() -> (ChainModel, Placement) {
        (ChainModel::figure1_example(), Placement::figure1_initial())
    }

    fn naive_placement() -> Placement {
        let mut p = Placement::figure1_initial();
        p.set(NfId::new(1), Device::Cpu).unwrap();
        p
    }

    fn pam_placement() -> Placement {
        let mut p = Placement::figure1_initial();
        p.set(NfId::new(2), Device::Cpu).unwrap();
        p
    }

    #[test]
    fn hop_latency_includes_device_latency_and_service() {
        let (chain, placement) = figure1();
        let model = LatencyModel::default();
        // Logger on the NIC: 32 us pipeline + 0.25 × (512·8 bits / 2 Gbps) = 32.512 us.
        let logger = model.hop_latency(&chain, &placement, NfId::new(2));
        assert_eq!(logger, SimDuration::from_nanos(32_512));
        // Unknown position contributes nothing.
        assert_eq!(
            model.hop_latency(&chain, &placement, NfId::new(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn figure2a_ordering_pam_beats_naive_and_matches_original() {
        let (chain, original) = figure1();
        let model = LatencyModel::default();
        let l_orig = model.chain_latency(&chain, &original);
        let l_naive = model.chain_latency(&chain, &naive_placement());
        let l_pam = model.chain_latency(&chain, &pam_placement());

        // Naive adds two crossings; PAM adds none.
        assert!(l_naive > l_pam);
        // PAM is within a few percent of the original (only the Logger's
        // device-local latency changes).
        let pam_vs_orig = model.relative_change_percent(&chain, &original, &pam_placement());
        assert!(pam_vs_orig.abs() < 5.0, "PAM vs original {pam_vs_orig}%");
        // And PAM is substantially (roughly the paper's 18%) below naive.
        let reduction = (l_naive.as_nanos() as f64 - l_pam.as_nanos() as f64)
            / l_naive.as_nanos() as f64
            * 100.0;
        assert!(
            (10.0..30.0).contains(&reduction),
            "PAM latency reduction vs naive was {reduction:.1}%"
        );
        assert!(l_orig <= l_naive);
    }

    #[test]
    fn penalty_is_the_crossing_cost_for_the_naive_migration() {
        let (chain, original) = figure1();
        let model = LatencyModel::default();
        let penalty = model.penalty(&chain, &original, &naive_placement());
        // Two extra crossings at 22 us plus the Monitor's CPU-vs-NIC latency
        // and service-time delta.
        assert!(penalty >= SimDuration::from_micros(44));
        assert!(penalty < SimDuration::from_micros(60));
        // Penalty of a faster placement saturates at zero.
        assert_eq!(
            model.penalty(&chain, &naive_placement(), &original),
            SimDuration::ZERO
        );
    }

    #[test]
    fn crossing_latency_sweep_scales_the_gap_linearly() {
        let (chain, original) = figure1();
        let cheap = LatencyModel::with_crossing_latency(SimDuration::from_micros(2));
        let expensive = LatencyModel::with_crossing_latency(SimDuration::from_micros(60));
        let gap_cheap = cheap.penalty(&chain, &original, &naive_placement());
        let gap_expensive = expensive.penalty(&chain, &original, &naive_placement());
        // Two extra crossings: the gap grows by 2 × (60 - 2) us.
        let delta = gap_expensive - gap_cheap;
        assert_eq!(delta, SimDuration::from_micros(116));
    }

    #[test]
    fn packet_size_affects_service_terms_only() {
        let (chain, original) = figure1();
        let small = LatencyModel::default().at_packet_size(ByteSize::bytes(64));
        let large = LatencyModel::default().at_packet_size(ByteSize::bytes(1500));
        let l_small = small.chain_latency(&chain, &original);
        let l_large = large.chain_latency(&chain, &original);
        assert!(l_large > l_small);
        // The difference is bounded by the extra serialisation across four hops.
        assert!(l_large - l_small < SimDuration::from_micros(10));
        assert_eq!(
            small.serialisation(Gbps::new(10.0)),
            SimDuration::from_nanos(51)
        );
    }

    #[test]
    fn relative_change_of_identical_placements_is_zero() {
        let (chain, original) = figure1();
        let model = LatencyModel::default();
        assert_eq!(
            model.relative_change_percent(&chain, &original, &original),
            0.0
        );
        let empty_chain = ChainModel::new("empty", chain.ingress, chain.egress, vec![]);
        let empty_placement = Placement::all_on(Device::SmartNic, 0);
        // A degenerate chain still produces a finite (crossing-only) latency.
        assert_eq!(
            model.chain_latency(&empty_chain, &empty_placement),
            SimDuration::from_micros(22)
        );
    }
}
