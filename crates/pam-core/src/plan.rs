//! Migration plans and planner decisions.

use std::fmt;

use pam_types::{Device, NfId};
use serde::{Deserialize, Serialize};

/// One vNF migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationMove {
    /// The position being migrated.
    pub nf: NfId,
    /// The device it leaves.
    pub from: Device,
    /// The device it moves to.
    pub to: Device,
}

impl fmt::Display for MigrationMove {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {}",
            self.nf,
            self.from.label(),
            self.to.label()
        )
    }
}

/// An ordered list of migrations produced by a strategy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The migrations, in execution order.
    pub moves: Vec<MigrationMove>,
}

impl MigrationPlan {
    /// An empty plan.
    pub fn empty() -> Self {
        MigrationPlan { moves: Vec::new() }
    }

    /// A plan with a single move.
    pub fn single(nf: NfId, from: Device, to: Device) -> Self {
        MigrationPlan {
            moves: vec![MigrationMove { nf, from, to }],
        }
    }

    /// Appends a move.
    pub fn push(&mut self, nf: NfId, from: Device, to: Device) {
        self.moves.push(MigrationMove { nf, from, to });
    }

    /// Number of migrations in the plan.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// True when the plan migrates nothing.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// The positions migrated by the plan, in order.
    pub fn migrated_nfs(&self) -> Vec<NfId> {
        self.moves.iter().map(|m| m.nf).collect()
    }

    /// True when the plan migrates `nf`.
    pub fn migrates(&self, nf: NfId) -> bool {
        self.moves.iter().any(|m| m.nf == nf)
    }
}

impl fmt::Display for MigrationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.moves.is_empty() {
            return write!(f, "(no migration)");
        }
        let moves: Vec<String> = self.moves.iter().map(|m| m.to_string()).collect();
        write!(f, "{}", moves.join(", "))
    }
}

/// What a migration strategy decided to do about the current load.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// No device is overloaded; leave the placement alone.
    NoAction,
    /// Execute the contained migrations.
    Migrate(MigrationPlan),
    /// Migration cannot relieve the overload (both devices saturated or no
    /// feasible candidate); the operator must scale out a new instance.
    ScaleOut,
}

impl Decision {
    /// The migration plan, if the decision is to migrate.
    pub fn plan(&self) -> Option<&MigrationPlan> {
        match self {
            Decision::Migrate(plan) => Some(plan),
            _ => None,
        }
    }

    /// True when the decision is to do nothing.
    pub fn is_no_action(&self) -> bool {
        matches!(self, Decision::NoAction)
    }

    /// True when the decision is to scale out.
    pub fn is_scale_out(&self) -> bool {
        matches!(self, Decision::ScaleOut)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::NoAction => write!(f, "no action"),
            Decision::Migrate(plan) => write!(f, "migrate [{plan}]"),
            Decision::ScaleOut => write!(f, "scale out"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_building_and_queries() {
        let mut plan = MigrationPlan::empty();
        assert!(plan.is_empty());
        plan.push(NfId::new(2), Device::SmartNic, Device::Cpu);
        plan.push(NfId::new(1), Device::SmartNic, Device::Cpu);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.migrated_nfs(), vec![NfId::new(2), NfId::new(1)]);
        assert!(plan.migrates(NfId::new(2)));
        assert!(!plan.migrates(NfId::new(0)));
        assert_eq!(plan.to_string(), "nf2: NIC -> CPU, nf1: NIC -> CPU");
    }

    #[test]
    fn single_move_plan() {
        let plan = MigrationPlan::single(NfId::new(3), Device::Cpu, Device::SmartNic);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.moves[0].to, Device::SmartNic);
        assert_eq!(plan.moves[0].to_string(), "nf3: CPU -> NIC");
    }

    #[test]
    fn decision_accessors() {
        let plan = MigrationPlan::single(NfId::new(2), Device::SmartNic, Device::Cpu);
        let migrate = Decision::Migrate(plan.clone());
        assert_eq!(migrate.plan(), Some(&plan));
        assert!(!migrate.is_no_action());
        assert!(!migrate.is_scale_out());
        assert!(Decision::NoAction.is_no_action());
        assert!(Decision::ScaleOut.is_scale_out());
        assert_eq!(Decision::NoAction.plan(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Decision::NoAction.to_string(), "no action");
        assert_eq!(Decision::ScaleOut.to_string(), "scale out");
        assert_eq!(MigrationPlan::empty().to_string(), "(no migration)");
        let d = Decision::Migrate(MigrationPlan::single(
            NfId::new(2),
            Device::SmartNic,
            Device::Cpu,
        ));
        assert_eq!(d.to_string(), "migrate [nf2: NIC -> CPU]");
    }

    #[test]
    fn serde_round_trip() {
        let d = Decision::Migrate(MigrationPlan::single(
            NfId::new(1),
            Device::SmartNic,
            Device::Cpu,
        ));
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(serde_json::from_str::<Decision>(&json).unwrap(), d);
    }
}
