//! Baseline migration strategies.
//!
//! The poster compares PAM against the "naive" approach inherited from UNO:
//! when the SmartNIC is overloaded, pick a single vNF on it and move it to
//! the CPU, without considering where the vNF sits in the chain. Two readings
//! of the baseline appear in the poster and both are implemented:
//!
//! * [`NaiveBottleneck`] — migrate the *bottleneck* vNF, i.e. the
//!   SmartNIC-resident vNF with the highest utilisation (UNO's description
//!   and the poster's Figure 1(b), where the overloaded Monitor is moved).
//!   This is the baseline used in the Figure 2 reproduction.
//! * [`NaiveMinCapacity`] — the literal sentence in §3: "pick the vNF on
//!   SmartNIC with minimal capacity `θ^S`".
//!
//! [`NoMigration`] is the "Original" bar of Figure 2: leave the chain alone.

use pam_types::{Device, Gbps};
use serde::{Deserialize, Serialize};

use crate::model::{ChainModel, Placement, ResourceModel};
use crate::plan::{Decision, MigrationPlan};
use crate::strategy::MigrationStrategy;

/// UNO-style baseline: migrate the most-utilised SmartNIC vNF to the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NaiveBottleneck {
    /// Utilisation above which the SmartNIC counts as overloaded.
    pub overload_threshold: f64,
}

impl Default for NaiveBottleneck {
    fn default() -> Self {
        NaiveBottleneck {
            overload_threshold: 1.0,
        }
    }
}

impl NaiveBottleneck {
    /// A baseline with the paper's threshold of 1.0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MigrationStrategy for NaiveBottleneck {
    fn name(&self) -> &'static str {
        "naive-bottleneck"
    }

    fn decide(&self, chain: &ChainModel, placement: &Placement, offered: Gbps) -> Decision {
        let model = ResourceModel::new(chain, placement, offered);
        if !model.is_overloaded(Device::SmartNic, self.overload_threshold) {
            return Decision::NoAction;
        }
        let Some(bottleneck) = model.hottest_on(Device::SmartNic) else {
            return Decision::ScaleOut;
        };
        // The naive strategy still refuses to overload the CPU outright — UNO
        // checks CPU headroom before migrating. If even that fails, scale out.
        if !model.cpu_accepts(bottleneck).unwrap_or(false) {
            return Decision::ScaleOut;
        }
        Decision::Migrate(MigrationPlan::single(
            bottleneck,
            Device::SmartNic,
            Device::Cpu,
        ))
    }
}

/// The literal §3 baseline: migrate the SmartNIC vNF with minimum `θ^S`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NaiveMinCapacity {
    /// Utilisation above which the SmartNIC counts as overloaded.
    pub overload_threshold: f64,
}

impl Default for NaiveMinCapacity {
    fn default() -> Self {
        NaiveMinCapacity {
            overload_threshold: 1.0,
        }
    }
}

impl NaiveMinCapacity {
    /// A baseline with the paper's threshold of 1.0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MigrationStrategy for NaiveMinCapacity {
    fn name(&self) -> &'static str {
        "naive-min-capacity"
    }

    fn decide(&self, chain: &ChainModel, placement: &Placement, offered: Gbps) -> Decision {
        let model = ResourceModel::new(chain, placement, offered);
        if !model.is_overloaded(Device::SmartNic, self.overload_threshold) {
            return Decision::NoAction;
        }
        let candidate = placement
            .on_device(Device::SmartNic)
            .into_iter()
            .filter_map(|id| chain.vnf(id).ok())
            .min_by(|a, b| {
                a.nic_capacity
                    .as_gbps()
                    .partial_cmp(&b.nic_capacity.as_gbps())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|v| v.id);
        let Some(chosen) = candidate else {
            return Decision::ScaleOut;
        };
        if !model.cpu_accepts(chosen).unwrap_or(false) {
            return Decision::ScaleOut;
        }
        Decision::Migrate(MigrationPlan::single(chosen, Device::SmartNic, Device::Cpu))
    }
}

/// The "Original" configuration: never migrate anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoMigration;

impl NoMigration {
    /// Creates the do-nothing strategy.
    pub fn new() -> Self {
        NoMigration
    }
}

impl MigrationStrategy for NoMigration {
    fn name(&self) -> &'static str {
        "original"
    }

    fn decide(&self, _chain: &ChainModel, _placement: &Placement, _offered: Gbps) -> Decision {
        Decision::NoAction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::NfId;

    fn figure1() -> (ChainModel, Placement) {
        (ChainModel::figure1_example(), Placement::figure1_initial())
    }

    #[test]
    fn bottleneck_baseline_migrates_the_monitor() {
        let (chain, placement) = figure1();
        let decision = NaiveBottleneck::new().decide(&chain, &placement, Gbps::new(2.2));
        let plan = decision.plan().expect("should migrate");
        assert_eq!(plan.len(), 1);
        assert_eq!(
            plan.moves[0].nf,
            NfId::new(1),
            "the Monitor is the hot spot"
        );
        // This is exactly the Figure 1(b) situation: the migration adds two
        // PCIe crossings.
        let mut after = placement.clone();
        after.set(plan.moves[0].nf, Device::Cpu).unwrap();
        assert_eq!(
            after.pcie_crossings(&chain),
            placement.pcie_crossings(&chain) + 2
        );
    }

    #[test]
    fn min_capacity_baseline_migrates_the_logger() {
        let (chain, placement) = figure1();
        let decision = NaiveMinCapacity::new().decide(&chain, &placement, Gbps::new(2.2));
        let plan = decision.plan().expect("should migrate");
        assert_eq!(
            plan.moves[0].nf,
            NfId::new(2),
            "the Logger has the smallest θ^S"
        );
    }

    #[test]
    fn baselines_do_nothing_below_threshold() {
        let (chain, placement) = figure1();
        assert!(NaiveBottleneck::new()
            .decide(&chain, &placement, Gbps::new(1.0))
            .is_no_action());
        assert!(NaiveMinCapacity::new()
            .decide(&chain, &placement, Gbps::new(1.0))
            .is_no_action());
    }

    #[test]
    fn original_never_acts() {
        let (chain, placement) = figure1();
        for load in [0.5, 2.2, 3.9] {
            assert!(NoMigration::new()
                .decide(&chain, &placement, Gbps::new(load))
                .is_no_action());
        }
        assert_eq!(NoMigration::new().name(), "original");
    }

    #[test]
    fn baselines_scale_out_when_the_cpu_cannot_take_the_pick() {
        let (chain, placement) = figure1();
        // At 3.9 Gbps the CPU is nearly full; neither baseline can place its pick.
        assert!(NaiveBottleneck::new()
            .decide(&chain, &placement, Gbps::new(3.9))
            .is_scale_out());
        assert!(NaiveMinCapacity::new()
            .decide(&chain, &placement, Gbps::new(3.9))
            .is_scale_out());
    }

    #[test]
    fn empty_nic_forces_scale_out_for_bottleneck_baseline() {
        let chain = ChainModel::figure1_example();
        let placement = Placement::all_on(Device::Cpu, 4);
        // The NIC has nothing on it, so it cannot be overloaded; but force the
        // decision path by using a zero threshold.
        let strategy = NaiveBottleneck {
            overload_threshold: -1.0,
        };
        assert!(strategy
            .decide(&chain, &placement, Gbps::new(1.0))
            .is_scale_out());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(NaiveBottleneck::new().name(), "naive-bottleneck");
        assert_eq!(NaiveMinCapacity::new().name(), "naive-min-capacity");
    }
}
