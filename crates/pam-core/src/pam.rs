//! Steps 2–3 of PAM: the border-vNF selection loop.
//!
//! Given an overloaded SmartNIC, PAM repeatedly:
//!
//! 1. recomputes the border sets under the working placement (Step 1),
//! 2. selects the border vNF with the minimum SmartNIC capacity — Eq. 1 —
//!    because that vNF frees the most NIC utilisation per migrated vNF,
//! 3. checks Eq. 2: migrating it must not overload the CPU; if it would, the
//!    candidate is discarded and the next border vNF is tried,
//! 4. migrates it (appending to the plan) and checks Eq. 3: once the
//!    SmartNIC's remaining utilisation is below one, the plan is complete.
//!
//! If no border candidate passes Eq. 2 while the SmartNIC is still
//! overloaded, migration cannot help and the planner reports
//! [`Decision::ScaleOut`] (the poster's "start another instance" case,
//! handled by OpenNF-style scale-out in the orchestrator).

use pam_types::{Device, Gbps, NfId};
use serde::{Deserialize, Serialize};

use crate::border::border_sets;
use crate::model::{ChainModel, Placement, ResourceModel};
use crate::plan::{Decision, MigrationPlan};
use crate::strategy::MigrationStrategy;

/// The PAM planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PamPlanner {
    /// Utilisation above which a device counts as overloaded. The poster uses
    /// exactly 1; operators usually act a little earlier.
    pub overload_threshold: f64,
}

impl Default for PamPlanner {
    fn default() -> Self {
        PamPlanner {
            overload_threshold: 1.0,
        }
    }
}

impl PamPlanner {
    /// A planner with the paper's threshold of 1.0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A planner that reacts at a custom utilisation threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        PamPlanner {
            overload_threshold: threshold,
        }
    }

    /// Runs the selection loop. See the module documentation.
    pub fn plan(&self, chain: &ChainModel, placement: &Placement, offered: Gbps) -> Decision {
        let initial = ResourceModel::new(chain, placement, offered);
        if !initial.is_overloaded(Device::SmartNic, self.overload_threshold) {
            return Decision::NoAction;
        }

        let mut working = placement.clone();
        let mut plan = MigrationPlan::empty();
        let mut migrated: Vec<NfId> = Vec::new();
        // Candidates discarded by the Eq. 2 check; the poster removes them
        // from the border sets rather than reconsidering them.
        let mut rejected: Vec<NfId> = Vec::new();

        // The loop migrates at most every SmartNIC-resident vNF once.
        let max_iterations = chain.len() + 1;
        for _ in 0..max_iterations {
            let model = ResourceModel::new(chain, &working, offered);
            // Eq. 3 on the *working* placement: once the NIC is feasible,
            // the accumulated plan is sufficient.
            if !model.is_overloaded(Device::SmartNic, self.overload_threshold) {
                break;
            }

            // Step 1 on the working placement (equivalent to the poster's
            // incremental border-set update when a border vNF leaves).
            let borders = border_sets(chain, &working);
            // Step 2: Eq. 1 — minimum SmartNIC capacity first.
            let mut candidates: Vec<NfId> = borders
                .all()
                .into_iter()
                .filter(|id| !rejected.contains(id))
                .collect();
            candidates.sort_by(|a, b| {
                let cap_a = chain
                    .vnf(*a)
                    .map(|v| v.nic_capacity.as_gbps())
                    .unwrap_or(f64::MAX);
                let cap_b = chain
                    .vnf(*b)
                    .map(|v| v.nic_capacity.as_gbps())
                    .unwrap_or(f64::MAX);
                cap_a
                    .partial_cmp(&cap_b)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });

            // Step 3, check 1 (Eq. 2): find the first candidate the CPU can absorb.
            let mut selected = None;
            for candidate in candidates {
                if model.cpu_accepts(candidate).unwrap_or(false) {
                    selected = Some(candidate);
                    break;
                }
                rejected.push(candidate);
            }

            let Some(chosen) = selected else {
                // No border vNF can move without overloading the CPU while the
                // NIC is still overloaded: both devices are effectively full.
                return Decision::ScaleOut;
            };

            if working.set(chosen, Device::Cpu).is_err() {
                return Decision::ScaleOut;
            }
            plan.push(chosen, Device::SmartNic, Device::Cpu);
            migrated.push(chosen);
        }

        // The loop always terminates with a feasible NIC (the break above) as
        // long as it migrated something; if it somehow migrated everything
        // and the NIC is still overloaded the offered load itself is
        // infeasible.
        let final_model = ResourceModel::new(chain, &working, offered);
        if final_model.is_overloaded(Device::SmartNic, self.overload_threshold) {
            return Decision::ScaleOut;
        }
        Decision::Migrate(plan)
    }
}

impl MigrationStrategy for PamPlanner {
    fn name(&self) -> &'static str {
        "pam"
    }

    fn decide(&self, chain: &ChainModel, placement: &Placement, offered: Gbps) -> Decision {
        self.plan(chain, placement, offered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VnfDescriptor;
    use pam_types::Endpoint;
    use proptest::prelude::*;

    fn figure1() -> (ChainModel, Placement) {
        (ChainModel::figure1_example(), Placement::figure1_initial())
    }

    #[test]
    fn below_overload_threshold_means_no_action() {
        let (chain, placement) = figure1();
        let decision = PamPlanner::new().plan(&chain, &placement, Gbps::new(1.5));
        assert_eq!(decision, Decision::NoAction);
    }

    #[test]
    fn figure1_scenario_migrates_exactly_the_logger() {
        let (chain, placement) = figure1();
        let decision = PamPlanner::new().plan(&chain, &placement, Gbps::new(2.2));
        let plan = decision.plan().expect("PAM should migrate");
        assert_eq!(plan.len(), 1, "one border migration suffices at 2.2 Gbps");
        assert_eq!(
            plan.moves[0].nf,
            NfId::new(2),
            "the Logger is the border pick"
        );
        assert_eq!(plan.moves[0].to, Device::Cpu);
    }

    #[test]
    fn pam_never_adds_pcie_crossings_in_the_figure1_scenario() {
        let (chain, placement) = figure1();
        let crossings_before = placement.pcie_crossings(&chain);
        let decision = PamPlanner::new().plan(&chain, &placement, Gbps::new(2.2));
        let mut after = placement.clone();
        for mv in &decision.plan().unwrap().moves {
            after.set(mv.nf, mv.to).unwrap();
        }
        assert_eq!(after.pcie_crossings(&chain), crossings_before);
    }

    #[test]
    fn heavier_overload_pushes_more_border_vnfs_aside() {
        // At 2.9 Gbps the Logger alone is not enough (FW 0.29 + Monitor 0.906
        // = 1.196 ≥ 1); PAM must also push the Monitor aside, which the CPU
        // can absorb (LB 0.725 + Logger 0.181 + Monitor 0.29 = 1.196 ≥ 1 — it
        // cannot!), so the planner reports scale-out at that point.
        let (chain, placement) = figure1();
        let decision = PamPlanner::new().plan(&chain, &placement, Gbps::new(2.9));
        assert!(decision.is_scale_out(), "decision was {decision}");
    }

    #[test]
    fn multi_step_migration_when_cpu_has_headroom() {
        // Same shape as Figure 1 but with a CPU roomy enough to take both the
        // Logger and the Monitor: PAM should produce a two-move plan and the
        // moves should be border vNFs at the time of their selection.
        let chain = ChainModel::new(
            "roomy-cpu",
            Endpoint::Host,
            Endpoint::Wire,
            vec![
                VnfDescriptor::new(NfId::new(0), "Firewall", Gbps::new(10.0), Gbps::new(20.0)),
                VnfDescriptor::new(NfId::new(1), "Monitor", Gbps::new(3.2), Gbps::new(20.0)),
                VnfDescriptor::new(NfId::new(2), "Logger", Gbps::new(2.0), Gbps::new(20.0))
                    .with_load_factor(0.25),
                VnfDescriptor::new(
                    NfId::new(3),
                    "Load Balancer",
                    Gbps::new(14.0),
                    Gbps::new(20.0),
                ),
            ],
        );
        let placement = Placement::figure1_initial();
        let decision = PamPlanner::new().plan(&chain, &placement, Gbps::new(2.9));
        let plan = decision.plan().expect("should migrate");
        assert_eq!(plan.migrated_nfs(), vec![NfId::new(2), NfId::new(1)]);
        // Crossing count is preserved even after two migrations.
        let mut after = placement.clone();
        for mv in &plan.moves {
            after.set(mv.nf, mv.to).unwrap();
        }
        assert_eq!(
            after.pcie_crossings(&chain),
            placement.pcie_crossings(&chain)
        );
        // And the NIC really is relieved.
        let model = ResourceModel::new(&chain, &after, Gbps::new(2.9));
        assert!(!model.is_overloaded(Device::SmartNic, 1.0));
    }

    #[test]
    fn eq2_rejection_skips_to_the_next_border_candidate() {
        // Make the Logger enormous on the CPU so Eq. 2 rejects it; PAM should
        // then pick the other border vNF (the Firewall) instead of giving up.
        let chain = ChainModel::new(
            "logger-cpu-hostile",
            Endpoint::Host,
            Endpoint::Wire,
            vec![
                VnfDescriptor::new(NfId::new(0), "Firewall", Gbps::new(10.0), Gbps::new(40.0)),
                VnfDescriptor::new(NfId::new(1), "Monitor", Gbps::new(3.2), Gbps::new(10.0)),
                // Logger: tiny CPU capacity → Eq. 2 always fails for it.
                VnfDescriptor::new(NfId::new(2), "Logger", Gbps::new(2.0), Gbps::new(0.5))
                    .with_load_factor(0.25),
                VnfDescriptor::new(
                    NfId::new(3),
                    "Load Balancer",
                    Gbps::new(14.0),
                    Gbps::new(4.0),
                ),
            ],
        );
        let placement = Placement::figure1_initial();
        let decision = PamPlanner::new().plan(&chain, &placement, Gbps::new(2.2));
        let plan = decision.plan().expect("should still migrate");
        assert!(
            !plan.migrates(NfId::new(2)),
            "the CPU-hostile logger must be skipped"
        );
        assert!(
            plan.migrates(NfId::new(0)),
            "the firewall is the next border pick"
        );
    }

    #[test]
    fn fully_saturated_cpu_forces_scale_out() {
        let chain = ChainModel::figure1_example();
        let placement = Placement::figure1_initial();
        // At 3.9 Gbps the CPU's load balancer alone is at 0.975; nothing fits.
        let decision = PamPlanner::new().plan(&chain, &placement, Gbps::new(3.9));
        assert!(decision.is_scale_out());
    }

    #[test]
    fn custom_threshold_reacts_earlier() {
        let (chain, placement) = figure1();
        // At 1.7 Gbps the NIC is at 0.91: below 1.0 but above a 0.85 threshold.
        assert_eq!(
            PamPlanner::new().plan(&chain, &placement, Gbps::new(1.7)),
            Decision::NoAction
        );
        let eager = PamPlanner::with_threshold(0.85);
        let decision = eager.plan(&chain, &placement, Gbps::new(1.7));
        assert!(decision.plan().is_some());
    }

    #[test]
    fn strategy_interface_reports_its_name() {
        let planner = PamPlanner::new();
        assert_eq!(planner.name(), "pam");
        let (chain, placement) = figure1();
        assert_eq!(
            planner.decide(&chain, &placement, Gbps::new(1.0)),
            Decision::NoAction
        );
    }

    #[test]
    fn decide_reports_scale_out_when_no_feasible_plan_exists() {
        // Every vNF is tiny on the CPU, so no border migration can ever pass
        // Eq. 2: with the NIC overloaded and no feasible plan, `decide` must
        // return the scale-out verdict rather than a partial plan or a panic.
        let chain = ChainModel::new(
            "cpu-hostile",
            Endpoint::Host,
            Endpoint::Wire,
            vec![
                VnfDescriptor::new(NfId::new(0), "Firewall", Gbps::new(3.0), Gbps::new(0.1)),
                VnfDescriptor::new(NfId::new(1), "Monitor", Gbps::new(2.5), Gbps::new(0.1)),
                VnfDescriptor::new(NfId::new(2), "Logger", Gbps::new(2.0), Gbps::new(0.1)),
                VnfDescriptor::new(
                    NfId::new(3),
                    "Load Balancer",
                    Gbps::new(9.0),
                    Gbps::new(0.1),
                ),
            ],
        );
        let placement = Placement::figure1_initial();
        let decision = PamPlanner::new().decide(&chain, &placement, Gbps::new(2.4));
        assert!(decision.is_scale_out(), "decision was {decision}");
        assert!(decision.plan().is_none());
    }

    #[test]
    fn decide_reports_scale_out_when_no_border_exists() {
        // A wire-to-wire chain entirely on the NIC has an empty border set;
        // under overload PAM has nothing it may move, so it must scale out.
        let chain = ChainModel::new(
            "borderless",
            Endpoint::Wire,
            Endpoint::Wire,
            vec![
                VnfDescriptor::new(NfId::new(0), "Monitor", Gbps::new(1.0), Gbps::new(10.0)),
                VnfDescriptor::new(NfId::new(1), "Logger", Gbps::new(1.0), Gbps::new(10.0)),
            ],
        );
        let placement = Placement::all_on(Device::SmartNic, 2);
        let decision = PamPlanner::new().decide(&chain, &placement, Gbps::new(1.5));
        assert!(decision.is_scale_out(), "decision was {decision}");
    }

    /// Strategy used by the property test below to build arbitrary chains.
    fn arbitrary_chain(n: usize, caps: &[(f64, f64, f64)]) -> (ChainModel, Placement) {
        let vnfs = (0..n)
            .map(|i| {
                let (nic, cpu, lf) = caps[i % caps.len()];
                VnfDescriptor::new(
                    NfId::from(i),
                    &format!("vnf{i}"),
                    Gbps::new(nic),
                    Gbps::new(cpu),
                )
                .with_load_factor(lf)
            })
            .collect();
        let chain = ChainModel::new("prop", Endpoint::Host, Endpoint::Wire, vnfs);
        // Alternate initial placement: last position on CPU, rest on the NIC
        // (mirrors the Figure 1 shape at any length).
        let devices = (0..n)
            .map(|i| {
                if i + 1 == n {
                    Device::Cpu
                } else {
                    Device::SmartNic
                }
            })
            .collect();
        (chain, Placement::from_devices(devices))
    }

    proptest! {
        /// Three invariants of the PAM planner, over random chains and loads:
        /// (1) it only ever migrates NIC→CPU and each vNF at most once;
        /// (2) executing the plan never increases the PCIe crossing count;
        /// (3) if it returns a plan, the CPU is not overloaded afterwards
        ///     under the linear model and the NIC is relieved.
        #[test]
        fn pam_invariants(
            len in 2usize..9,
            offered in 0.5f64..4.0,
            caps in proptest::collection::vec((1.0f64..12.0, 1.0f64..12.0, 0.1f64..1.0), 1..6),
        ) {
            let (chain, placement) = arbitrary_chain(len, &caps);
            let decision = PamPlanner::new().plan(&chain, &placement, Gbps::new(offered));
            if let Decision::Migrate(plan) = decision {
                // (1) moves are NIC → CPU, no duplicates.
                let mut seen = std::collections::HashSet::new();
                for mv in &plan.moves {
                    prop_assert_eq!(mv.from, Device::SmartNic);
                    prop_assert_eq!(mv.to, Device::Cpu);
                    prop_assert!(seen.insert(mv.nf), "vNF migrated twice");
                }
                // (2) crossings never increase.
                let before = placement.pcie_crossings(&chain);
                let mut after = placement.clone();
                for mv in &plan.moves {
                    after.set(mv.nf, mv.to).unwrap();
                }
                prop_assert!(after.pcie_crossings(&chain) <= before);
                // (3) post-plan feasibility under the model.
                let model = ResourceModel::new(&chain, &after, Gbps::new(offered));
                prop_assert!(!model.is_overloaded(Device::SmartNic, 1.0));
                prop_assert!(model.device_utilisation(Device::Cpu).value() < 1.0 + 1e-9);
            }
        }
    }
}
