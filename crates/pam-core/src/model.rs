//! The linear resource model of poster §2.
//!
//! Following CoCo \[5\], the poster assumes that a vNF's resource utilisation
//! on either device grows linearly with its throughput: a vNF whose capacity
//! on the SmartNIC is `θ^S` consumes a fraction `θ_cur / θ^S` of the NIC when
//! it carries `θ_cur`. A device is overloaded when the sum of those fractions
//! over resident vNFs exceeds one. That is the entire analytical machinery
//! PAM needs; this module provides it over three small types:
//!
//! * [`VnfDescriptor`] — one vNF's capacities, load factor and fixed per-hop
//!   latencies.
//! * [`ChainModel`] — the ordered chain of descriptors between two endpoints.
//! * [`Placement`] — which device each chain position currently runs on.
//!
//! [`ResourceModel`] bundles a chain, a placement and an offered load and
//! answers the utilisation/feasibility questions (including Eq. 2 and Eq. 3).

use pam_types::{Device, Endpoint, Gbps, Hop, NfId, PamError, Ratio, Result, SimDuration};
use serde::{Deserialize, Serialize};

/// The description of one vNF position the planner reasons about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VnfDescriptor {
    /// Which chain position this describes.
    pub id: NfId,
    /// Human-readable name (used in plans and reports).
    pub name: String,
    /// Maximum throughput on the SmartNIC (`θ^S`).
    pub nic_capacity: Gbps,
    /// Maximum throughput on the CPU (`θ^C`).
    pub cpu_capacity: Gbps,
    /// Fraction of chain traffic this vNF actually processes.
    pub load_factor: f64,
    /// Fixed per-packet latency when running on the SmartNIC.
    pub nic_latency: SimDuration,
    /// Fixed per-packet latency when running on the CPU.
    pub cpu_latency: SimDuration,
}

impl VnfDescriptor {
    /// A descriptor with unit load factor and default per-hop latencies.
    pub fn new(id: NfId, name: &str, nic_capacity: Gbps, cpu_capacity: Gbps) -> Self {
        VnfDescriptor {
            id,
            name: name.to_string(),
            nic_capacity,
            cpu_capacity,
            load_factor: 1.0,
            nic_latency: SimDuration::from_micros(32),
            cpu_latency: SimDuration::from_micros(40),
        }
    }

    /// Overrides the load factor.
    pub fn with_load_factor(mut self, load_factor: f64) -> Self {
        self.load_factor = load_factor;
        self
    }

    /// Overrides the per-hop latencies.
    pub fn with_latencies(mut self, nic: SimDuration, cpu: SimDuration) -> Self {
        self.nic_latency = nic;
        self.cpu_latency = cpu;
        self
    }

    /// The capacity on a device.
    pub fn capacity_on(&self, device: Device) -> Gbps {
        match device {
            Device::SmartNic => self.nic_capacity,
            Device::Cpu => self.cpu_capacity,
        }
    }

    /// The fixed per-hop latency on a device.
    pub fn latency_on(&self, device: Device) -> SimDuration {
        match device {
            Device::SmartNic => self.nic_latency,
            Device::Cpu => self.cpu_latency,
        }
    }

    /// The utilisation this vNF adds to `device` when the chain carries
    /// `offered` (`load_factor × θ_cur / θ_capacity`).
    pub fn utilisation_on(&self, device: Device, offered: Gbps) -> Ratio {
        let effective = offered * self.load_factor;
        effective.utilisation_of(self.capacity_on(device))
    }
}

/// The logical service chain the planner reasons about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainModel {
    /// Chain name used in reports.
    pub name: String,
    /// Where traffic enters the chain.
    pub ingress: Endpoint,
    /// Where traffic leaves the chain.
    pub egress: Endpoint,
    vnfs: Vec<VnfDescriptor>,
}

impl ChainModel {
    /// Creates a chain model; descriptor ids are rewritten to match their
    /// position so the two can never disagree.
    pub fn new(
        name: &str,
        ingress: Endpoint,
        egress: Endpoint,
        mut vnfs: Vec<VnfDescriptor>,
    ) -> Self {
        for (index, vnf) in vnfs.iter_mut().enumerate() {
            vnf.id = NfId::from(index);
        }
        ChainModel {
            name: name.to_string(),
            ingress,
            egress,
            vnfs,
        }
    }

    /// The poster's Figure 1 chain with the Table 1 capacities:
    /// host → Firewall → Monitor → Logger (sampling, load factor 0.25) →
    /// Load Balancer → wire. The `>10 Gbps` load-balancer NIC capacity is
    /// modelled as 14 Gbps.
    pub fn figure1_example() -> Self {
        ChainModel::new(
            "figure1",
            Endpoint::Host,
            Endpoint::Wire,
            vec![
                VnfDescriptor::new(NfId::new(0), "Firewall", Gbps::new(10.0), Gbps::new(4.0)),
                VnfDescriptor::new(NfId::new(1), "Monitor", Gbps::new(3.2), Gbps::new(10.0)),
                VnfDescriptor::new(NfId::new(2), "Logger", Gbps::new(2.0), Gbps::new(4.0))
                    .with_load_factor(0.25),
                VnfDescriptor::new(
                    NfId::new(3),
                    "Load Balancer",
                    Gbps::new(14.0),
                    Gbps::new(4.0),
                ),
            ],
        )
    }

    /// The vNF descriptors in chain order.
    pub fn vnfs(&self) -> &[VnfDescriptor] {
        &self.vnfs
    }

    /// Number of vNF positions.
    pub fn len(&self) -> usize {
        self.vnfs.len()
    }

    /// True when the chain has no vNFs.
    pub fn is_empty(&self) -> bool {
        self.vnfs.is_empty()
    }

    /// The descriptor at a position.
    pub fn vnf(&self, id: NfId) -> Result<&VnfDescriptor> {
        self.vnfs.get(id.index()).ok_or(PamError::UnknownNf(id))
    }

    /// All position ids in chain order.
    pub fn ids(&self) -> impl Iterator<Item = NfId> + '_ {
        (0..self.vnfs.len()).map(NfId::from)
    }
}

/// Which device each chain position runs on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    devices: Vec<Device>,
}

impl Placement {
    /// Every position on the same device.
    pub fn all_on(device: Device, len: usize) -> Self {
        Placement {
            devices: vec![device; len],
        }
    }

    /// A placement from an explicit per-position list.
    pub fn from_devices(devices: Vec<Device>) -> Self {
        Placement { devices }
    }

    /// The initial placement of the poster's Figure 1(a): Firewall, Monitor
    /// and Logger on the SmartNIC, the Load Balancer on the CPU.
    pub fn figure1_initial() -> Self {
        Placement::from_devices(vec![
            Device::SmartNic,
            Device::SmartNic,
            Device::SmartNic,
            Device::Cpu,
        ])
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the placement covers no positions.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device a position runs on.
    pub fn device_of(&self, id: NfId) -> Result<Device> {
        self.devices
            .get(id.index())
            .copied()
            .ok_or(PamError::UnknownNf(id))
    }

    /// Moves a position to a device.
    pub fn set(&mut self, id: NfId, device: Device) -> Result<()> {
        let slot = self
            .devices
            .get_mut(id.index())
            .ok_or(PamError::UnknownNf(id))?;
        *slot = device;
        Ok(())
    }

    /// The ids currently placed on `device`, in chain order.
    pub fn on_device(&self, device: Device) -> Vec<NfId> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == device)
            .map(|(i, _)| NfId::from(i))
            .collect()
    }

    /// The packet path through the server for a chain under this placement:
    /// ingress endpoint, one hop per vNF, egress endpoint.
    pub fn path(&self, chain: &ChainModel) -> Vec<Hop> {
        let mut hops = Vec::with_capacity(self.devices.len() + 2);
        hops.push(Hop::Endpoint(chain.ingress));
        for (index, device) in self.devices.iter().enumerate() {
            hops.push(Hop::Vnf {
                nf: NfId::from(index),
                device: *device,
            });
        }
        hops.push(Hop::Endpoint(chain.egress));
        hops
    }

    /// The number of PCIe crossings a packet pays under this placement.
    pub fn pcie_crossings(&self, chain: &ChainModel) -> usize {
        pam_types::device::pcie_crossings(&self.path(chain))
    }
}

/// A chain, a placement and an offered load, bundled with the utilisation
/// queries the PAM algorithm needs.
#[derive(Debug, Clone)]
pub struct ResourceModel<'a> {
    chain: &'a ChainModel,
    placement: &'a Placement,
    offered: Gbps,
}

impl<'a> ResourceModel<'a> {
    /// Creates a resource model for a chain under a placement carrying
    /// `offered` Gbps.
    pub fn new(chain: &'a ChainModel, placement: &'a Placement, offered: Gbps) -> Self {
        ResourceModel {
            chain,
            placement,
            offered,
        }
    }

    /// The offered load the model evaluates.
    pub fn offered(&self) -> Gbps {
        self.offered
    }

    /// The utilisation of `device`: the sum of `θ_cur/θ_i` over resident vNFs.
    pub fn device_utilisation(&self, device: Device) -> Ratio {
        self.placement
            .on_device(device)
            .into_iter()
            .filter_map(|id| self.chain.vnf(id).ok())
            .map(|vnf| vnf.utilisation_on(device, self.offered))
            .sum()
    }

    /// The utilisation of `device` if the positions in `excluding` were
    /// removed from it — the left-hand side of Eq. 3.
    pub fn device_utilisation_excluding(&self, device: Device, excluding: &[NfId]) -> Ratio {
        self.placement
            .on_device(device)
            .into_iter()
            .filter(|id| !excluding.contains(id))
            .filter_map(|id| self.chain.vnf(id).ok())
            .map(|vnf| vnf.utilisation_on(device, self.offered))
            .sum()
    }

    /// True when `device` is overloaded against `threshold` (the paper uses
    /// a threshold of exactly one).
    pub fn is_overloaded(&self, device: Device, threshold: f64) -> bool {
        self.device_utilisation(device).value() > threshold
    }

    /// Eq. 2: would moving `candidate` onto the CPU keep the CPU feasible?
    /// (`Σ_{i on CPU} θ_cur/θ^C_i + θ_cur/θ^C_candidate < 1`)
    pub fn cpu_accepts(&self, candidate: NfId) -> Result<bool> {
        let candidate_vnf = self.chain.vnf(candidate)?;
        let existing = self.device_utilisation(Device::Cpu);
        let added = candidate_vnf.utilisation_on(Device::Cpu, self.offered);
        Ok((existing + added).is_feasible())
    }

    /// Eq. 3: is the SmartNIC feasible once the positions in `migrated` have
    /// left it? (`Σ_{i on S, i ∉ migrated} θ_cur/θ^S_i < 1`)
    pub fn nic_relieved_excluding(&self, migrated: &[NfId]) -> bool {
        self.device_utilisation_excluding(Device::SmartNic, migrated)
            .is_feasible()
    }

    /// The vNF on `device` with the highest individual utilisation — the
    /// "bottleneck"/hot-spot vNF the naive strategy targets.
    pub fn hottest_on(&self, device: Device) -> Option<NfId> {
        self.placement
            .on_device(device)
            .into_iter()
            .filter_map(|id| {
                self.chain
                    .vnf(id)
                    .ok()
                    .map(|vnf| (id, vnf.utilisation_on(device, self.offered)))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(id, _)| id)
    }

    /// The maximum chain throughput this placement can sustain: the load at
    /// which the most loaded device reaches utilisation 1.
    pub fn sustainable_throughput(&self) -> Gbps {
        let mut limit = f64::INFINITY;
        for device in Device::ALL {
            let per_gbps: f64 = self
                .placement
                .on_device(device)
                .into_iter()
                .filter_map(|id| self.chain.vnf(id).ok())
                .map(|vnf| vnf.utilisation_on(device, Gbps::new(1.0)).value())
                .sum();
            if per_gbps > 0.0 {
                limit = limit.min(1.0 / per_gbps);
            }
        }
        if limit.is_finite() {
            Gbps::new(limit)
        } else {
            Gbps::new(f64::MAX)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> (ChainModel, Placement) {
        (ChainModel::figure1_example(), Placement::figure1_initial())
    }

    #[test]
    fn figure1_example_matches_table1() {
        let chain = ChainModel::figure1_example();
        assert_eq!(chain.len(), 4);
        assert_eq!(
            chain.vnf(NfId::new(0)).unwrap().nic_capacity,
            Gbps::new(10.0)
        );
        assert_eq!(
            chain.vnf(NfId::new(1)).unwrap().cpu_capacity,
            Gbps::new(10.0)
        );
        assert_eq!(
            chain.vnf(NfId::new(2)).unwrap().nic_capacity,
            Gbps::new(2.0)
        );
        assert_eq!(chain.vnf(NfId::new(2)).unwrap().load_factor, 0.25);
        assert!(chain.vnf(NfId::new(3)).unwrap().nic_capacity > Gbps::new(10.0));
        assert!(chain.vnf(NfId::new(9)).is_err());
        assert!(!chain.is_empty());
        assert_eq!(chain.ids().count(), 4);
    }

    #[test]
    fn descriptor_ids_are_rewritten_to_match_positions() {
        let chain = ChainModel::new(
            "c",
            Endpoint::Wire,
            Endpoint::Wire,
            vec![
                VnfDescriptor::new(NfId::new(9), "a", Gbps::new(1.0), Gbps::new(1.0)),
                VnfDescriptor::new(NfId::new(9), "b", Gbps::new(1.0), Gbps::new(1.0)),
            ],
        );
        assert_eq!(chain.vnfs()[0].id, NfId::new(0));
        assert_eq!(chain.vnfs()[1].id, NfId::new(1));
    }

    #[test]
    fn placement_accessors() {
        let (chain, mut placement) = figure1();
        assert_eq!(placement.len(), 4);
        assert!(!placement.is_empty());
        assert_eq!(placement.device_of(NfId::new(0)).unwrap(), Device::SmartNic);
        assert_eq!(placement.device_of(NfId::new(3)).unwrap(), Device::Cpu);
        assert_eq!(
            placement.on_device(Device::SmartNic),
            vec![NfId::new(0), NfId::new(1), NfId::new(2)]
        );
        placement.set(NfId::new(2), Device::Cpu).unwrap();
        assert_eq!(
            placement.on_device(Device::Cpu),
            vec![NfId::new(2), NfId::new(3)]
        );
        assert!(placement.set(NfId::new(9), Device::Cpu).is_err());
        assert!(placement.device_of(NfId::new(9)).is_err());
        let _ = chain;
    }

    #[test]
    fn figure1_crossing_counts_match_the_poster_figures() {
        let (chain, original) = figure1();
        assert_eq!(original.pcie_crossings(&chain), 3);

        // Naive migration (Figure 1b): Monitor to the CPU adds two crossings.
        let mut naive = original.clone();
        naive.set(NfId::new(1), Device::Cpu).unwrap();
        assert_eq!(naive.pcie_crossings(&chain), 5);

        // PAM migration (Figure 1c): Logger to the CPU adds none.
        let mut pam = original.clone();
        pam.set(NfId::new(2), Device::Cpu).unwrap();
        assert_eq!(pam.pcie_crossings(&chain), 3);
    }

    #[test]
    fn utilisation_matches_hand_computation() {
        let (chain, placement) = figure1();
        let model = ResourceModel::new(&chain, &placement, Gbps::new(2.2));
        // NIC: FW 2.2/10 + Monitor 2.2/3.2 + Logger 0.25·2.2/2 = 0.22 + 0.6875 + 0.275.
        let nic = model.device_utilisation(Device::SmartNic).value();
        assert!((nic - 1.1825).abs() < 1e-9, "nic utilisation {nic}");
        // CPU: LB 2.2/4 = 0.55.
        let cpu = model.device_utilisation(Device::Cpu).value();
        assert!((cpu - 0.55).abs() < 1e-9, "cpu utilisation {cpu}");
        assert!(model.is_overloaded(Device::SmartNic, 1.0));
        assert!(!model.is_overloaded(Device::Cpu, 1.0));
        assert_eq!(model.offered(), Gbps::new(2.2));
    }

    #[test]
    fn eq2_cpu_acceptance() {
        let (chain, placement) = figure1();
        let model = ResourceModel::new(&chain, &placement, Gbps::new(2.2));
        // Logger on the CPU: 0.55 + 0.25·2.2/4 = 0.6875 < 1 → accepted.
        assert!(model.cpu_accepts(NfId::new(2)).unwrap());
        // Firewall on the CPU: 0.55 + 2.2/4 = 1.1 ≥ 1 → rejected.
        assert!(!model.cpu_accepts(NfId::new(0)).unwrap());
        assert!(model.cpu_accepts(NfId::new(9)).is_err());
    }

    #[test]
    fn eq3_nic_relief() {
        let (chain, placement) = figure1();
        let model = ResourceModel::new(&chain, &placement, Gbps::new(2.2));
        // Removing the Logger leaves 0.9075 < 1 → relieved.
        assert!(model.nic_relieved_excluding(&[NfId::new(2)]));
        // Removing nothing leaves 1.1825 ≥ 1 → still overloaded.
        assert!(!model.nic_relieved_excluding(&[]));
        // Removing only the Firewall leaves 0.9625 < 1 → relieved as well
        // (but PAM would not pick it: Eq. 1 prefers the smaller capacity).
        assert!(model.nic_relieved_excluding(&[NfId::new(0)]));
    }

    #[test]
    fn hottest_vnf_is_the_monitor_in_the_figure1_scenario() {
        let (chain, placement) = figure1();
        let model = ResourceModel::new(&chain, &placement, Gbps::new(2.2));
        assert_eq!(model.hottest_on(Device::SmartNic), Some(NfId::new(1)));
        assert_eq!(model.hottest_on(Device::Cpu), Some(NfId::new(3)));
    }

    #[test]
    fn sustainable_throughput_is_the_binding_constraint() {
        let (chain, placement) = figure1();
        let model = ResourceModel::new(&chain, &placement, Gbps::new(1.0));
        // NIC binds: 1/(0.1 + 0.3125 + 0.125) ≈ 1.860 Gbps.
        let cap = model.sustainable_throughput().as_gbps();
        assert!((cap - 1.0 / 0.5375).abs() < 1e-9, "capacity {cap}");

        // After PAM migrates the Logger, the NIC constraint loosens.
        let mut migrated = placement.clone();
        migrated.set(NfId::new(2), Device::Cpu).unwrap();
        let model = ResourceModel::new(&chain, &migrated, Gbps::new(1.0));
        let cap_after = model.sustainable_throughput().as_gbps();
        assert!(cap_after > cap);
        // Now the NIC allows 1/(0.1+0.3125) ≈ 2.424 and the CPU 1/(0.25+0.0625) = 3.2.
        assert!(
            (cap_after - 1.0 / 0.4125).abs() < 1e-9,
            "capacity {cap_after}"
        );
    }

    #[test]
    fn empty_chain_has_unbounded_throughput() {
        let chain = ChainModel::new("empty", Endpoint::Wire, Endpoint::Host, vec![]);
        let placement = Placement::all_on(Device::SmartNic, 0);
        let model = ResourceModel::new(&chain, &placement, Gbps::new(1.0));
        assert!(model.sustainable_throughput() > Gbps::new(1e9));
        assert_eq!(model.device_utilisation(Device::SmartNic), Ratio::ZERO);
        assert_eq!(model.hottest_on(Device::SmartNic), None);
        assert_eq!(placement.pcie_crossings(&chain), 1);
    }

    #[test]
    fn path_includes_endpoints_and_every_hop() {
        let (chain, placement) = figure1();
        let path = placement.path(&chain);
        assert_eq!(path.len(), 6);
        assert_eq!(path[0], Hop::Endpoint(Endpoint::Host));
        assert_eq!(path[5], Hop::Endpoint(Endpoint::Wire));
        assert_eq!(path[1].nf(), Some(NfId::new(0)));
    }

    #[test]
    fn descriptor_builders() {
        let v = VnfDescriptor::new(NfId::new(0), "x", Gbps::new(2.0), Gbps::new(4.0))
            .with_load_factor(0.5)
            .with_latencies(SimDuration::from_micros(10), SimDuration::from_micros(20));
        assert_eq!(v.capacity_on(Device::SmartNic), Gbps::new(2.0));
        assert_eq!(v.capacity_on(Device::Cpu), Gbps::new(4.0));
        assert_eq!(v.latency_on(Device::SmartNic), SimDuration::from_micros(10));
        assert_eq!(v.latency_on(Device::Cpu), SimDuration::from_micros(20));
        let util = v.utilisation_on(Device::SmartNic, Gbps::new(2.0));
        assert!((util.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let chain = ChainModel::figure1_example();
        let placement = Placement::figure1_initial();
        let chain_json = serde_json::to_string(&chain).unwrap();
        let placement_json = serde_json::to_string(&placement).unwrap();
        assert_eq!(
            serde_json::from_str::<ChainModel>(&chain_json).unwrap(),
            chain
        );
        assert_eq!(
            serde_json::from_str::<Placement>(&placement_json).unwrap(),
            placement
        );
    }
}
