//! Measuring a vNF's saturation throughput — the Table 1 reproduction.
//!
//! The paper measures each vNF's capacity on the SmartNIC and on the CPU by
//! loading it until it saturates. The probe does the same against the
//! simulated devices: it runs a single-vNF chain at increasing offered loads
//! and reports the highest load the vNF still delivers (within a small loss
//! tolerance). Because the simulator derives service times from the
//! configured capacities, the probe recovering the Table 1 numbers is an
//! end-to-end consistency check of the whole data path — generator, devices
//! and measurement — rather than a tautology about one lookup table.

use pam_core::Placement;
use pam_nf::{NfKind, ProfileCatalog, ServiceChainSpec};
use pam_traffic::{
    ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TraceConfig, TraceSynthesizer,
    TrafficSchedule,
};
use pam_types::{ByteSize, Device, Endpoint, Gbps, SimDuration};

use crate::chain::ChainRuntime;
use crate::config::RuntimeConfig;

/// The result of probing one vNF kind on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityProbeResult {
    /// The probed vNF kind.
    pub kind: NfKind,
    /// The probed device.
    pub device: Device,
    /// The measured saturation throughput.
    pub measured: Gbps,
    /// The configured (Table 1) capacity for comparison.
    pub configured: Gbps,
}

impl CapacityProbeResult {
    /// Relative error of the measurement against the configured capacity.
    pub fn relative_error(&self) -> f64 {
        if self.configured.as_gbps() <= 0.0 {
            return 0.0;
        }
        (self.measured.as_gbps() - self.configured.as_gbps()).abs() / self.configured.as_gbps()
    }
}

/// Offered-load fraction delivered before a load level counts as saturated.
const LOSS_TOLERANCE: f64 = 0.995;

fn delivered_fraction(kind: NfKind, device: Device, load: Gbps, catalog: &ProfileCatalog) -> f64 {
    let spec = ServiceChainSpec::new("probe", Endpoint::Wire, Endpoint::Wire, vec![kind]);
    let placement = Placement::all_on(device, 1);
    // Tight backlog bounds make saturation visible quickly, which keeps the
    // binary search both fast and accurate.
    let mut nic = pam_sim::DeviceConfig::smartnic();
    nic.max_backlog = SimDuration::from_micros(50);
    let mut cpu = pam_sim::DeviceConfig::cpu();
    cpu.max_backlog = SimDuration::from_micros(50);
    let config = RuntimeConfig {
        catalog: catalog.clone(),
        nic,
        cpu,
        ..RuntimeConfig::evaluation_default()
    };
    let Ok(mut runtime) = ChainRuntime::new(spec, &placement, config) else {
        unreachable!("the fixed single-NF probe chain always builds");
    };
    let mut trace = TraceSynthesizer::new(TraceConfig {
        sizes: PacketSizeProfile::Fixed(ByteSize::bytes(512)),
        flows: FlowGeneratorConfig {
            flow_count: 128,
            zipf_exponent: 0.0,
            tcp_fraction: 1.0,
        },
        arrival: ArrivalProcess::Cbr,
        schedule: TrafficSchedule::constant(load, SimDuration::from_millis(10)),
        seed: 0x7ab1e1,
    });
    runtime.run_to_completion(&mut trace);
    let outcome = runtime.outcome();
    if outcome.injected == 0 {
        return 0.0;
    }
    // Policy drops are not capacity loss; only overload drops count.
    let lost = outcome.drops_overload;
    1.0 - lost as f64 / outcome.injected as f64
}

/// Probes the saturation throughput of `kind` on `device` by binary search
/// over the offered load.
///
/// Fails with [`pam_types::PamError::MissingProfile`] when the catalog has no
/// profile for `kind`, so a misconfigured experiment is reported instead of
/// aborting the process.
pub fn probe_capacity(
    kind: NfKind,
    device: Device,
    catalog: &ProfileCatalog,
) -> pam_types::Result<CapacityProbeResult> {
    let configured = catalog.require(kind)?.capacity_on(device);
    // The load factor scales the effective capacity seen from the chain's
    // point of view (a sampling logger saturates later than its raw capacity).
    let mut low = Gbps::new(0.05);
    let mut high = Gbps::new(32.0);
    // The answer lies in [low, high]; 22 iterations give < 1% resolution.
    for _ in 0..22 {
        let mid = (low + high) / 2.0;
        if delivered_fraction(kind, device, mid, catalog) >= LOSS_TOLERANCE {
            low = mid;
        } else {
            high = mid;
        }
    }
    Ok(CapacityProbeResult {
        kind,
        device,
        measured: low,
        configured,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_recovers_the_monitor_capacities_within_tolerance() {
        let catalog = ProfileCatalog::table1();
        let nic = probe_capacity(NfKind::Monitor, Device::SmartNic, &catalog).unwrap();
        assert!(
            nic.relative_error() < 0.08,
            "NIC capacity measured {} vs configured {}",
            nic.measured,
            nic.configured
        );
        let cpu = probe_capacity(NfKind::Monitor, Device::Cpu, &catalog).unwrap();
        assert!(
            cpu.relative_error() < 0.08,
            "CPU capacity measured {} vs configured {}",
            cpu.measured,
            cpu.configured
        );
        assert!(cpu.measured > nic.measured, "monitor is faster on the CPU");
    }

    #[test]
    fn probe_recovers_the_logger_nic_capacity() {
        let catalog = ProfileCatalog::table1();
        let result = probe_capacity(NfKind::Logger, Device::SmartNic, &catalog).unwrap();
        assert!(
            result.relative_error() < 0.08,
            "measured {} vs configured {}",
            result.measured,
            result.configured
        );
    }

    #[test]
    fn probing_an_unregistered_kind_is_a_recoverable_error() {
        let empty = ProfileCatalog::new();
        let err = probe_capacity(NfKind::Monitor, Device::SmartNic, &empty).unwrap_err();
        assert_eq!(err, pam_types::PamError::missing_profile("Monitor"));
    }

    #[test]
    fn relative_error_handles_zero_configured_capacity() {
        let result = CapacityProbeResult {
            kind: NfKind::Firewall,
            device: Device::SmartNic,
            measured: Gbps::new(1.0),
            configured: Gbps::ZERO,
        };
        assert_eq!(result.relative_error(), 0.0);
    }
}
