//! A placed, running vNF instance.

use pam_nf::{CapacityProfile, NetworkFunction, NfKind};
use pam_types::{Device, Gbps, InstanceId, NfId, SimDuration, SimTime};

/// One vNF instance: the processing object plus where it currently runs and
/// the timing parameters the simulator derives from its capacity profile.
pub struct VnfInstance {
    /// Unique instance id.
    pub id: InstanceId,
    /// The chain position this instance serves.
    pub nf_id: NfId,
    /// The vNF kind.
    pub kind: NfKind,
    /// The packet-processing implementation.
    pub nf: Box<dyn NetworkFunction>,
    /// The device the instance currently runs on.
    pub device: Device,
    /// The instance's capacity profile (Table 1 values + load factor).
    pub profile: CapacityProfile,
    /// If a live migration is in progress, traffic for this instance is held
    /// until this instant (the blackout end).
    pub paused_until: Option<SimTime>,
    /// Packets processed by this instance.
    pub processed: u64,
    /// Packets dropped by this instance's own verdicts (policy drops).
    pub policy_drops: u64,
}

impl std::fmt::Debug for VnfInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VnfInstance")
            .field("id", &self.id)
            .field("nf_id", &self.nf_id)
            .field("kind", &self.kind)
            .field("device", &self.device)
            .field("paused_until", &self.paused_until)
            .field("processed", &self.processed)
            .finish()
    }
}

impl VnfInstance {
    /// Creates an instance of `kind` at chain position `nf_id` on `device`.
    pub fn new(
        id: InstanceId,
        nf_id: NfId,
        kind: NfKind,
        nf: Box<dyn NetworkFunction>,
        device: Device,
        profile: CapacityProfile,
    ) -> Self {
        VnfInstance {
            id,
            nf_id,
            kind,
            nf,
            device,
            profile,
            paused_until: None,
            processed: 0,
            policy_drops: 0,
        }
    }

    /// The throughput capacity on the instance's current device.
    pub fn capacity(&self) -> Gbps {
        self.profile.capacity_on(self.device)
    }

    /// The fixed pipeline latency on the instance's current device.
    pub fn pipeline_latency(&self) -> SimDuration {
        self.profile.latency_on(self.device)
    }

    /// The service time a packet of `size` occupies the device's shared
    /// processor for.
    pub fn service_time(&self, size: pam_types::ByteSize) -> SimDuration {
        pam_sim::ComputeDevice::service_time(size, self.capacity(), self.profile.load_factor)
    }

    /// True when the instance is paused for migration at `now`.
    pub fn is_paused(&self, now: SimTime) -> bool {
        matches!(self.paused_until, Some(until) if now < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_nf::{build_kind, ProfileCatalog};
    use pam_types::ByteSize;

    fn monitor_instance(device: Device) -> VnfInstance {
        let catalog = ProfileCatalog::table1();
        VnfInstance::new(
            InstanceId::new(1),
            NfId::new(1),
            NfKind::Monitor,
            build_kind(NfKind::Monitor),
            device,
            *catalog.require(NfKind::Monitor).unwrap(),
        )
    }

    #[test]
    fn capacity_and_latency_follow_the_device() {
        let on_nic = monitor_instance(Device::SmartNic);
        assert_eq!(on_nic.capacity(), Gbps::new(3.2));
        let on_cpu = monitor_instance(Device::Cpu);
        assert_eq!(on_cpu.capacity(), Gbps::new(10.0));
        assert!(on_cpu.pipeline_latency() > on_nic.pipeline_latency());
        // Service time is shorter where capacity is higher.
        assert!(
            on_cpu.service_time(ByteSize::bytes(512)) < on_nic.service_time(ByteSize::bytes(512))
        );
    }

    #[test]
    fn pause_window_logic() {
        let mut inst = monitor_instance(Device::SmartNic);
        assert!(!inst.is_paused(SimTime::ZERO));
        inst.paused_until = Some(SimTime::from_micros(100));
        assert!(inst.is_paused(SimTime::from_micros(50)));
        assert!(!inst.is_paused(SimTime::from_micros(100)));
        assert!(!inst.is_paused(SimTime::from_micros(200)));
    }

    #[test]
    fn debug_format_is_compact() {
        let inst = monitor_instance(Device::SmartNic);
        let text = format!("{inst:?}");
        assert!(text.contains("Monitor"));
        assert!(text.contains("SmartNic"));
    }
}
