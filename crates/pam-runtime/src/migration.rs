//! Live-migration reporting.

use pam_types::{ByteSize, Device, NfId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What one live migration cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// The chain position that moved.
    pub nf: NfId,
    /// The device it left.
    pub from: Device,
    /// The device it now runs on.
    pub to: Device,
    /// When the migration started.
    pub started_at: SimTime,
    /// When the instance resumed on the target device.
    pub completed_at: SimTime,
    /// Size of the serialised state transferred over PCIe.
    pub state_size: ByteSize,
    /// Number of per-flow entries transferred.
    pub flows_transferred: usize,
    /// Packets dropped because the staging buffer overflowed during the
    /// blackout window.
    pub packets_dropped: u64,
}

impl MigrationReport {
    /// The blackout duration (time the vNF was unavailable).
    pub fn blackout(&self) -> SimDuration {
        self.completed_at.duration_since(self.started_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackout_is_the_pause_window() {
        let report = MigrationReport {
            nf: NfId::new(2),
            from: Device::SmartNic,
            to: Device::Cpu,
            started_at: SimTime::from_millis(10),
            completed_at: SimTime::from_millis(12),
            state_size: ByteSize::kib(128),
            flows_transferred: 1000,
            packets_dropped: 3,
        };
        assert_eq!(report.blackout(), SimDuration::from_millis(2));
        let json = serde_json::to_string(&report).unwrap();
        let back: MigrationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
