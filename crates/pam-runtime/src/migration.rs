//! Live-migration configuration, per-round accounting and reports.
//!
//! Two transfer mechanisms are modelled (selected by [`MigrationMode`] in
//! [`MigrationConfig`]):
//!
//! * **stop-and-copy** — the classic OpenNF transfer: pause the vNF, ship
//!   its whole serialised state across the link, resume on the target. The
//!   blackout covers the entire transfer, so it grows linearly with the
//!   flow-table size.
//! * **iterative pre-copy** — a snapshot round copies *all* flows while the
//!   source keeps serving; each later round copies only the flows dirtied
//!   since the previous round; once the dirty set is small enough (or the
//!   round cap is hit) a short stop-and-copy freezes just the residual dirty
//!   set. The blackout covers only that final round, which is why pre-copy
//!   turns migration blackouts into a near-zero tail.
//!
//! Every round is recorded in the [`MigrationReport`] so experiments can
//! attribute bytes and time to the snapshot, the dirty rounds, and the final
//! freeze separately.

use pam_types::{ByteSize, Device, Gbps, NfId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

pub use pam_protocol::DivergencePolicy;
use pam_protocol::ProtocolConfig;

/// How a vNF's state is transferred during live migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationMode {
    /// Pause, copy everything, resume: the whole transfer is blackout.
    StopAndCopy,
    /// Iterative pre-copy: copy while serving, freeze only the residual
    /// dirty set.
    PreCopy,
}

impl MigrationMode {
    /// Both modes, in report order.
    pub const ALL: [MigrationMode; 2] = [MigrationMode::StopAndCopy, MigrationMode::PreCopy];

    /// The machine-readable name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            MigrationMode::StopAndCopy => "stop_and_copy",
            MigrationMode::PreCopy => "pre_copy",
        }
    }

    /// Parses a CLI mode name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == name)
    }
}

impl std::fmt::Display for MigrationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Knobs of the live-migration engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Which transfer mechanism to use.
    pub mode: MigrationMode,
    /// Maximum number of non-blocking pre-copy rounds (the snapshot round
    /// counts) before the final freeze is forced regardless of convergence.
    pub max_precopy_rounds: usize,
    /// Convergence bound: once a round leaves at most this many dirty flows,
    /// the engine freezes the residual set and hands over.
    pub convergence_flows: usize,
    /// What happens when pre-copy hits the round cap without converging:
    /// [`DivergencePolicy::ForceFreeze`] (the classic fallback: freeze the
    /// whole residual dirty set, eating an unbounded blackout) or
    /// [`DivergencePolicy::Abort`] (roll the migration back — the staged
    /// target is discarded, the source keeps serving, and blackouts stay
    /// bounded by the convergence knob). Ignored under stop-and-copy.
    pub on_divergence: DivergencePolicy,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            mode: MigrationMode::StopAndCopy,
            max_precopy_rounds: 8,
            convergence_flows: 64,
            on_divergence: DivergencePolicy::ForceFreeze,
        }
    }
}

impl MigrationConfig {
    /// The default knobs running the given mode.
    pub fn with_mode(mode: MigrationMode) -> Self {
        MigrationConfig {
            mode,
            ..Default::default()
        }
    }

    /// The knobs as the protocol machine's configuration: the runtime drives
    /// `pam-protocol`'s model-checked [`pam_protocol::HandoverState`] with
    /// exactly these bounds, so the checked model and the executing engine
    /// cannot drift apart.
    pub fn protocol(&self) -> ProtocolConfig {
        match self.mode {
            MigrationMode::StopAndCopy => ProtocolConfig::stop_and_copy(),
            MigrationMode::PreCopy => ProtocolConfig::pre_copy(
                self.max_precopy_rounds,
                self.convergence_flows,
                self.on_divergence,
            ),
        }
    }
}

/// One round of a live migration's state transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationRound {
    /// 1-based round number (round 1 is the full snapshot).
    pub round: u32,
    /// Flow entries carried by this round.
    pub flows: usize,
    /// Bytes shipped over the link (serialised state + per-flow overhead).
    pub bytes: ByteSize,
    /// Wall-clock duration of the round's transfer (including link queueing).
    pub duration: SimDuration,
}

/// The modelled size of one state transfer: the serialised payload plus the
/// OpenNF-style per-entry marshalling overhead. All arithmetic saturates so
/// absurd sizes clamp instead of wrapping.
pub fn state_transfer_size(payload: ByteSize, per_flow: ByteSize, flows: usize) -> ByteSize {
    payload.saturating_add(per_flow.saturating_mul(flows as u64))
}

/// A pre-execution estimate of what migrating one vNF would cost, produced by
/// [`crate::ChainRuntime::estimate_migration`]. Under [`MigrationMode::PreCopy`]
/// the estimate is based on the *expected residual dirty set* (bounded by the
/// convergence knob), not the total flow count — only the residual is frozen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationEstimate {
    /// The mode the estimate assumes.
    pub mode: MigrationMode,
    /// Flow entries currently held by the vNF.
    pub flows: usize,
    /// Flow entries expected in the blackout-critical (final) transfer.
    pub frozen_flows: usize,
    /// Bytes expected in the blackout-critical transfer.
    pub frozen_bytes: ByteSize,
    /// Expected blackout (final transfer + control overhead).
    pub blackout: SimDuration,
}

impl MigrationEstimate {
    /// Builds an estimate from the flow counts and the link/overhead model.
    pub fn new(
        mode: MigrationMode,
        flows: usize,
        frozen_flows: usize,
        per_flow: ByteSize,
        link_bandwidth: Gbps,
        crossing_latency: SimDuration,
        control_overhead: SimDuration,
    ) -> Self {
        let frozen_bytes = state_transfer_size(ByteSize::ZERO, per_flow, frozen_flows);
        let blackout = SimDuration::transmission(frozen_bytes, link_bandwidth)
            + crossing_latency
            + control_overhead;
        MigrationEstimate {
            mode,
            flows,
            frozen_flows,
            frozen_bytes,
            blackout,
        }
    }
}

/// What one live migration cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// The chain position that moved.
    pub nf: NfId,
    /// The device it left.
    pub from: Device,
    /// The device it now runs on.
    pub to: Device,
    /// The transfer mechanism used.
    pub mode: MigrationMode,
    /// When the migration started (the snapshot export under pre-copy).
    pub started_at: SimTime,
    /// When the source was frozen for the final transfer. Equal to
    /// `started_at` under stop-and-copy; under pre-copy everything before
    /// this instant was copied while traffic kept flowing.
    pub paused_at: SimTime,
    /// When the instance resumed on the target device.
    pub completed_at: SimTime,
    /// Total serialised state transferred over the link, all rounds.
    pub state_size: ByteSize,
    /// Total per-flow entries transferred, all rounds (a flow dirtied in `n`
    /// rounds counts `n` times).
    pub flows_transferred: usize,
    /// Flow entries still dirty at the freeze — what the final blackout
    /// round had to carry.
    pub residual_dirty_flows: usize,
    /// Per-round transfer accounting (one entry under stop-and-copy).
    pub rounds: Vec<MigrationRound>,
    /// Packets dropped because the staging buffer overflowed during the
    /// blackout window.
    pub packets_dropped: u64,
}

impl MigrationReport {
    /// The blackout duration: the window the vNF was actually unavailable
    /// (freeze → resume). Pre-copy rounds before the freeze do not count —
    /// the source kept serving through them.
    pub fn blackout(&self) -> SimDuration {
        self.completed_at.duration_since(self.paused_at)
    }

    /// The whole migration's duration, including non-blocking rounds.
    pub fn total_duration(&self) -> SimDuration {
        self.completed_at.duration_since(self.started_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackout_is_the_pause_window() {
        let report = MigrationReport {
            nf: NfId::new(2),
            from: Device::SmartNic,
            to: Device::Cpu,
            mode: MigrationMode::StopAndCopy,
            started_at: SimTime::from_millis(10),
            paused_at: SimTime::from_millis(10),
            completed_at: SimTime::from_millis(12),
            state_size: ByteSize::kib(128),
            flows_transferred: 1000,
            residual_dirty_flows: 1000,
            rounds: vec![MigrationRound {
                round: 1,
                flows: 1000,
                bytes: ByteSize::kib(128),
                duration: SimDuration::from_millis(2),
            }],
            packets_dropped: 3,
        };
        assert_eq!(report.blackout(), SimDuration::from_millis(2));
        assert_eq!(report.total_duration(), SimDuration::from_millis(2));
        let json = serde_json::to_string(&report).unwrap();
        let back: MigrationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn pre_copy_blackout_excludes_the_serving_rounds() {
        let report = MigrationReport {
            nf: NfId::new(1),
            from: Device::SmartNic,
            to: Device::Cpu,
            mode: MigrationMode::PreCopy,
            started_at: SimTime::from_millis(10),
            paused_at: SimTime::from_millis(14),
            completed_at: SimTime::from_millis(15),
            state_size: ByteSize::kib(200),
            flows_transferred: 1200,
            residual_dirty_flows: 40,
            rounds: Vec::new(),
            packets_dropped: 0,
        };
        assert_eq!(report.blackout(), SimDuration::from_millis(1));
        assert_eq!(report.total_duration(), SimDuration::from_millis(5));
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in MigrationMode::ALL {
            assert_eq!(MigrationMode::from_name(mode.name()), Some(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
        assert_eq!(MigrationMode::from_name("hot_potato"), None);
        let json = serde_json::to_string(&MigrationMode::PreCopy).unwrap();
        let back: MigrationMode = serde_json::from_str(&json).unwrap();
        assert_eq!(back, MigrationMode::PreCopy);
    }

    #[test]
    fn transfer_size_saturates_at_u64_adjacent_inputs() {
        // Regression for the former unchecked `per_flow * flows` multiply.
        assert_eq!(
            state_transfer_size(ByteSize::bytes(100), ByteSize::bytes(64), 10),
            ByteSize::bytes(740)
        );
        assert_eq!(
            state_transfer_size(ByteSize::bytes(1), ByteSize::bytes(u64::MAX / 2), 3),
            ByteSize::bytes(u64::MAX)
        );
        assert_eq!(
            state_transfer_size(
                ByteSize::bytes(u64::MAX),
                ByteSize::bytes(u64::MAX),
                usize::MAX
            ),
            ByteSize::bytes(u64::MAX)
        );
    }

    #[test]
    fn estimate_charges_only_the_frozen_set() {
        let full = MigrationEstimate::new(
            MigrationMode::StopAndCopy,
            10_000,
            10_000,
            ByteSize::bytes(64),
            Gbps::new(63.0),
            SimDuration::from_micros(22),
            SimDuration::from_micros(150),
        );
        let residual = MigrationEstimate::new(
            MigrationMode::PreCopy,
            10_000,
            64,
            ByteSize::bytes(64),
            Gbps::new(63.0),
            SimDuration::from_micros(22),
            SimDuration::from_micros(150),
        );
        assert!(residual.frozen_bytes < full.frozen_bytes);
        assert!(residual.blackout < full.blackout);
        assert_eq!(residual.flows, full.flows);
        let json = serde_json::to_string(&residual).unwrap();
        let back: MigrationEstimate = serde_json::from_str(&json).unwrap();
        assert_eq!(back, residual);
    }

    #[test]
    fn config_defaults_and_mode_builder() {
        let config = MigrationConfig::default();
        assert_eq!(config.mode, MigrationMode::StopAndCopy);
        assert!(config.max_precopy_rounds >= 2);
        assert!(config.convergence_flows > 0);
        assert_eq!(config.on_divergence, DivergencePolicy::ForceFreeze);
        let pre = MigrationConfig::with_mode(MigrationMode::PreCopy);
        assert_eq!(pre.mode, MigrationMode::PreCopy);
        assert_eq!(pre.max_precopy_rounds, config.max_precopy_rounds);
    }

    #[test]
    fn protocol_config_mirrors_the_knobs() {
        use pam_protocol::HandoverKind;
        let config = MigrationConfig {
            mode: MigrationMode::PreCopy,
            max_precopy_rounds: 5,
            convergence_flows: 10,
            on_divergence: DivergencePolicy::Abort,
        };
        let protocol = config.protocol();
        assert_eq!(protocol.kind, HandoverKind::PreCopy);
        assert_eq!(protocol.max_rounds, 5);
        assert_eq!(protocol.convergence_flows, 10);
        assert_eq!(protocol.on_divergence, DivergencePolicy::Abort);
        let stop = MigrationConfig::default().protocol();
        assert_eq!(stop.kind, HandoverKind::StopAndCopy);
    }
}
