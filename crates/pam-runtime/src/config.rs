//! Runtime configuration.

use pam_nf::ProfileCatalog;
use pam_sim::{DeviceConfig, LinkModel, PcieLinkConfig};
use pam_types::{ByteSize, SimDuration};
use serde::value::{Map, Value};
use serde::{Deserialize, Error, Serialize};

use crate::migration::{DivergencePolicy, MigrationConfig, MigrationMode};

/// Doorbell batching knobs of the [`crate::ChainRuntime`] datapath.
///
/// Each chain hop stages arriving packets into an open batch and rings the
/// device's doorbell — one batch service event, one coalesced PCIe DMA burst
/// towards the next hop — when either bound is hit:
///
/// * **size**: the batch reaches [`BatchConfig::max_batch`] packets, or
/// * **timeout**: [`BatchConfig::max_wait`] elapses after the first packet of
///   the batch arrived (so a lone packet is never held hostage).
///
/// `max_batch = 1` (the default) disables staging entirely: every packet is
/// serviced the instant it arrives and crosses PCIe alone, reproducing the
/// unbatched datapath event-for-event — the committed `BENCH_baseline.json`
/// is pinned to this setting. `max_batch > 1` trades a bounded added wait
/// (≤ `max_wait` per hop) for `1/batch` of the per-packet DMA setups (see
/// [`pam_sim::PcieLink::propagate_burst`]) and amortised vNF work (see
/// [`pam_nf::NetworkFunction::process_batch`]), which is also what makes the
/// simulator itself measurably faster on heavy small-packet workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum packets per batch; the doorbell rings when a hop's open batch
    /// reaches this size. `1` disables batching (and is the baseline mode).
    pub max_batch: usize,
    /// Maximum time the first packet of a batch may wait before the doorbell
    /// rings regardless of batch size (the latency bound of batching).
    pub max_wait: SimDuration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::unbatched()
    }
}

impl BatchConfig {
    /// The unbatched datapath: one packet per service event, one DMA per
    /// packet. This is the configuration every baseline number is pinned to.
    pub const fn unbatched() -> Self {
        BatchConfig {
            max_batch: 1,
            max_wait: SimDuration::ZERO,
        }
    }

    /// A batched datapath closing at `max_batch` packets or after the
    /// default 5 µs doorbell timeout, whichever comes first.
    pub fn of(max_batch: usize) -> Self {
        BatchConfig {
            max_batch: max_batch.max(1),
            max_wait: SimDuration::from_micros(5),
        }
    }

    /// Overrides the doorbell timeout.
    pub const fn with_max_wait(mut self, max_wait: SimDuration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// True when staging is enabled (`max_batch > 1`).
    pub fn is_batched(&self) -> bool {
        self.max_batch > 1
    }
}

/// Configuration of a [`crate::ChainRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Capacity/latency profiles of the vNF kinds in use.
    pub catalog: ProfileCatalog,
    /// SmartNIC device model.
    pub nic: DeviceConfig,
    /// CPU device model.
    pub cpu: DeviceConfig,
    /// PCIe link model.
    pub pcie: PcieLinkConfig,
    /// How often the runtime publishes a metrics snapshot to the registry.
    pub metrics_interval: SimDuration,
    /// Fixed control-plane overhead added to every live migration on top of
    /// the state-transfer time (ring reconfiguration, rule updates).
    pub migration_control_overhead: SimDuration,
    /// Maximum amount of traffic-time a migrating vNF may hold packets back;
    /// packets that would wait longer than this during the blackout are
    /// dropped (models a bounded staging buffer).
    pub migration_buffer_bound: SimDuration,
    /// Per-flow serialisation overhead charged when exporting vNF state
    /// (models OpenNF's per-entry marshalling cost).
    pub state_overhead_per_flow: ByteSize,
    /// Live-migration engine knobs: transfer mode, pre-copy round cap and
    /// convergence bound.
    pub migration: MigrationConfig,
    /// Datapath doorbell-batching knobs (defaults to unbatched).
    pub batch: BatchConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            catalog: ProfileCatalog::figure1_scenario(),
            nic: DeviceConfig::smartnic(),
            cpu: DeviceConfig::cpu(),
            pcie: PcieLinkConfig::default(),
            metrics_interval: SimDuration::from_millis(1),
            migration_control_overhead: SimDuration::from_micros(150),
            migration_buffer_bound: SimDuration::from_millis(2),
            state_overhead_per_flow: ByteSize::bytes(64),
            migration: MigrationConfig::default(),
            batch: BatchConfig::default(),
        }
    }
}

impl RuntimeConfig {
    /// The configuration used by the paper-reproduction experiments.
    pub fn evaluation_default() -> Self {
        Self::default()
    }

    /// Overrides the capacity catalogue.
    pub fn with_catalog(mut self, catalog: ProfileCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Overrides the PCIe link model (used by the PCIe-latency ablation).
    pub fn with_pcie(mut self, pcie: PcieLinkConfig) -> Self {
        self.pcie = pcie;
        self
    }

    /// Selects the PCIe link throughput model (FIFO-fixed baseline or
    /// contention-aware fair sharing), keeping the other link knobs.
    #[deprecated(
        since = "0.6.0",
        note = "use `tuned(RuntimeTuning::default().with_link_model(..))` — \
                one builder path for every experiment dimension"
    )]
    pub fn with_link_model(self, link_model: LinkModel) -> Self {
        self.tuned(&RuntimeTuning::default().with_link_model(link_model))
    }

    /// Overrides the live-migration engine configuration.
    pub fn with_migration(mut self, migration: MigrationConfig) -> Self {
        self.migration = migration;
        self
    }

    /// Selects the live-migration transfer mode, keeping the other engine
    /// knobs at their current values.
    pub fn with_migration_mode(mut self, mode: MigrationMode) -> Self {
        self.migration.mode = mode;
        self
    }

    /// Selects what pre-copy does at the round cap without convergence
    /// (force the freeze, or roll the migration back), keeping the other
    /// engine knobs at their current values.
    #[deprecated(
        since = "0.6.0",
        note = "use `tuned(RuntimeTuning::default().with_divergence(..))` — \
                one builder path for every experiment dimension"
    )]
    pub fn with_divergence_policy(self, policy: DivergencePolicy) -> Self {
        self.tuned(&RuntimeTuning::default().with_divergence(policy))
    }

    /// Overrides the datapath batching knobs.
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Selects a doorbell batch size with the default timeout, keeping every
    /// other knob at its current value (`1` restores the unbatched baseline).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.batch = if max_batch <= 1 {
            BatchConfig::unbatched()
        } else {
            BatchConfig::of(max_batch)
        };
        self
    }

    /// Applies an experiment tuning bundle: every `Some` dimension
    /// overrides the corresponding knob, every `None` keeps the baseline.
    /// The single builder path for experiment dimensions — new dimensions
    /// extend [`RuntimeTuning`] instead of adding parallel `with_*` setters.
    pub fn tuned(mut self, tuning: &RuntimeTuning) -> Self {
        if let Some(link_model) = tuning.link_model {
            self.pcie = self.pcie.with_link_model(link_model);
        }
        if let Some(mode) = tuning.migration_mode {
            self.migration.mode = mode;
        }
        if let Some(policy) = tuning.divergence {
            self.migration.on_divergence = policy;
        }
        if let Some(max_batch) = tuning.max_batch {
            self = self.with_max_batch(max_batch);
        }
        self
    }
}

/// The experiment dimensions of a [`RuntimeConfig`], bundled.
///
/// Every field is optional: `None` keeps the committed-baseline knob, `Some`
/// overrides it — so a tuning serialises to exactly the dimensions it moves
/// and an empty object is the baseline. This is the consolidation target for
/// the historical one-setter-per-dimension sprawl (`with_link_model`,
/// `with_divergence_policy`, ...): ablations build one `RuntimeTuning` and
/// apply it with [`RuntimeConfig::tuned`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RuntimeTuning {
    /// PCIe link throughput model (`None` = FIFO-fixed baseline).
    pub link_model: Option<LinkModel>,
    /// Live-migration transfer mode (`None` = stop-and-copy baseline).
    pub migration_mode: Option<MigrationMode>,
    /// Pre-copy divergence policy (`None` = force-freeze baseline).
    pub divergence: Option<DivergencePolicy>,
    /// Doorbell batch size (`None` = unbatched baseline).
    pub max_batch: Option<usize>,
}

impl RuntimeTuning {
    /// Overrides the PCIe link throughput model.
    pub fn with_link_model(mut self, link_model: LinkModel) -> Self {
        self.link_model = Some(link_model);
        self
    }

    /// Overrides the live-migration transfer mode.
    pub fn with_migration_mode(mut self, mode: MigrationMode) -> Self {
        self.migration_mode = Some(mode);
        self
    }

    /// Overrides the pre-copy divergence policy.
    pub fn with_divergence(mut self, policy: DivergencePolicy) -> Self {
        self.divergence = Some(policy);
        self
    }

    /// Overrides the doorbell batch size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = Some(max_batch);
        self
    }
}

// Hand-serialised: only the overridden dimensions appear as keys, and every
// missing key deserialises to `None` (the baseline), so tunings written
// before a dimension existed keep parsing (the vendored serde derive has no
// `#[serde(default)]` and no `Option` support).
impl Serialize for RuntimeTuning {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        if let Some(link_model) = &self.link_model {
            map.insert("link_model".to_owned(), link_model.to_value());
        }
        if let Some(mode) = &self.migration_mode {
            map.insert("migration_mode".to_owned(), mode.to_value());
        }
        if let Some(policy) = &self.divergence {
            map.insert("divergence".to_owned(), policy.to_value());
        }
        if let Some(max_batch) = &self.max_batch {
            map.insert("max_batch".to_owned(), max_batch.to_value());
        }
        Value::Object(map)
    }
}

impl Deserialize for RuntimeTuning {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = match value {
            Value::Object(map) => map,
            _ => return Err(Error::custom("RuntimeTuning must be an object")),
        };
        Ok(RuntimeTuning {
            link_model: match map.get("link_model") {
                Some(value) => Some(LinkModel::from_value(value)?),
                None => None,
            },
            migration_mode: match map.get("migration_mode") {
                Some(value) => Some(MigrationMode::from_value(value)?),
                None => None,
            },
            divergence: match map.get("divergence") {
                Some(value) => Some(DivergencePolicy::from_value(value)?),
                None => None,
            },
            max_batch: match map.get("max_batch") {
                Some(value) => Some(usize::from_value(value)?),
                None => None,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::SimDuration;

    #[test]
    fn defaults_are_sane() {
        let config = RuntimeConfig::default();
        assert_eq!(config.nic.device, pam_types::Device::SmartNic);
        assert_eq!(config.cpu.device, pam_types::Device::Cpu);
        assert!(config.metrics_interval > SimDuration::ZERO);
        assert!(config.migration_buffer_bound > config.migration_control_overhead);
        assert!(config.catalog.get(pam_nf::NfKind::Monitor).is_some());
    }

    #[test]
    fn builders_override_fields() {
        let pcie = PcieLinkConfig::with_crossing_latency(SimDuration::from_micros(5));
        let config = RuntimeConfig::evaluation_default()
            .with_pcie(pcie)
            .with_catalog(ProfileCatalog::table1());
        assert_eq!(config.pcie.crossing_latency, SimDuration::from_micros(5));
        assert_eq!(
            config
                .catalog
                .require(pam_nf::NfKind::Logger)
                .unwrap()
                .load_factor,
            1.0
        );
    }

    #[test]
    fn batch_builders_and_defaults() {
        let config = RuntimeConfig::default();
        assert_eq!(config.batch, BatchConfig::unbatched());
        assert!(!config.batch.is_batched());
        assert_eq!(config.batch.max_batch, 1);

        let batched = RuntimeConfig::default().with_max_batch(8);
        assert!(batched.batch.is_batched());
        assert_eq!(batched.batch.max_batch, 8);
        assert_eq!(batched.batch.max_wait, SimDuration::from_micros(5));

        // Degenerate sizes collapse to the unbatched baseline.
        assert_eq!(
            RuntimeConfig::default().with_max_batch(0).batch,
            BatchConfig::unbatched()
        );
        assert_eq!(BatchConfig::of(0).max_batch, 1);

        let tuned = BatchConfig::of(16).with_max_wait(SimDuration::from_micros(50));
        assert_eq!(tuned.max_wait, SimDuration::from_micros(50));
        let config = RuntimeConfig::default().with_batch(tuned);
        assert_eq!(config.batch, tuned);
    }

    #[test]
    fn tuning_bundle_overrides_only_some_dimensions() {
        let tuning = RuntimeTuning::default()
            .with_link_model(LinkModel::fair_share())
            .with_migration_mode(MigrationMode::PreCopy)
            .with_divergence(DivergencePolicy::Abort)
            .with_max_batch(8);
        let config = RuntimeConfig::evaluation_default().tuned(&tuning);
        assert_eq!(config.pcie.link_model, LinkModel::fair_share());
        assert_eq!(config.migration.mode, MigrationMode::PreCopy);
        assert_eq!(config.migration.on_divergence, DivergencePolicy::Abort);
        assert_eq!(config.batch.max_batch, 8);

        // An empty tuning is the identity: every knob keeps its baseline.
        let baseline = RuntimeConfig::evaluation_default().tuned(&RuntimeTuning::default());
        assert_eq!(baseline.pcie, RuntimeConfig::evaluation_default().pcie);
        assert_eq!(baseline.batch, BatchConfig::unbatched());
        assert_eq!(baseline.migration.mode, MigrationMode::StopAndCopy);
    }

    #[test]
    fn tuning_serde_round_trips_and_defaults_missing_keys() {
        let tuning = RuntimeTuning::default()
            .with_link_model(LinkModel::fair_share())
            .with_max_batch(4);
        let value = tuning.to_value();
        assert_eq!(RuntimeTuning::from_value(&value).unwrap(), tuning);
        // Unset dimensions serialise to no key at all...
        if let Value::Object(map) = &value {
            assert!(map.get("migration_mode").is_none());
            assert!(map.get("divergence").is_none());
        } else {
            panic!("tuning serialises to an object");
        }
        // ...and an empty object is the all-baseline tuning.
        let empty = RuntimeTuning::from_value(&Value::Object(Map::new())).unwrap();
        assert_eq!(empty, RuntimeTuning::default());
        assert!(RuntimeTuning::from_value(&Value::Null).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_setters_are_thin_tuning_shims() {
        // Pins the one-release compatibility shims: the old setters must
        // produce exactly what the tuning path produces.
        assert_eq!(
            RuntimeConfig::evaluation_default()
                .with_link_model(LinkModel::fair_share())
                .pcie,
            RuntimeConfig::evaluation_default()
                .tuned(&RuntimeTuning::default().with_link_model(LinkModel::fair_share()))
                .pcie
        );
        assert_eq!(
            RuntimeConfig::evaluation_default()
                .with_divergence_policy(DivergencePolicy::Abort)
                .migration,
            RuntimeConfig::evaluation_default()
                .tuned(&RuntimeTuning::default().with_divergence(DivergencePolicy::Abort))
                .migration
        );
    }

    #[test]
    #[allow(deprecated)]
    fn migration_builders_select_mode_and_knobs() {
        let config = RuntimeConfig::default();
        assert_eq!(config.migration.mode, MigrationMode::StopAndCopy);
        let pre = RuntimeConfig::default().with_migration_mode(MigrationMode::PreCopy);
        assert_eq!(pre.migration.mode, MigrationMode::PreCopy);
        let custom = RuntimeConfig::default().with_migration(MigrationConfig {
            mode: MigrationMode::PreCopy,
            max_precopy_rounds: 3,
            convergence_flows: 8,
            ..MigrationConfig::default()
        });
        assert_eq!(custom.migration.max_precopy_rounds, 3);
        assert_eq!(custom.migration.convergence_flows, 8);
        assert_eq!(
            custom.migration.on_divergence,
            DivergencePolicy::ForceFreeze
        );
        let aborting = RuntimeConfig::default()
            .with_migration_mode(MigrationMode::PreCopy)
            .with_divergence_policy(DivergencePolicy::Abort);
        assert_eq!(aborting.migration.on_divergence, DivergencePolicy::Abort);
        assert_eq!(aborting.migration.mode, MigrationMode::PreCopy);
    }
}
