//! Runtime configuration.

use pam_nf::ProfileCatalog;
use pam_sim::{DeviceConfig, PcieLinkConfig};
use pam_types::{ByteSize, SimDuration};

use crate::migration::{DivergencePolicy, MigrationConfig, MigrationMode};

/// Doorbell batching knobs of the [`crate::ChainRuntime`] datapath.
///
/// Each chain hop stages arriving packets into an open batch and rings the
/// device's doorbell — one batch service event, one coalesced PCIe DMA burst
/// towards the next hop — when either bound is hit:
///
/// * **size**: the batch reaches [`BatchConfig::max_batch`] packets, or
/// * **timeout**: [`BatchConfig::max_wait`] elapses after the first packet of
///   the batch arrived (so a lone packet is never held hostage).
///
/// `max_batch = 1` (the default) disables staging entirely: every packet is
/// serviced the instant it arrives and crosses PCIe alone, reproducing the
/// unbatched datapath event-for-event — the committed `BENCH_baseline.json`
/// is pinned to this setting. `max_batch > 1` trades a bounded added wait
/// (≤ `max_wait` per hop) for `1/batch` of the per-packet DMA setups (see
/// [`pam_sim::PcieLink::propagate_burst`]) and amortised vNF work (see
/// [`pam_nf::NetworkFunction::process_batch`]), which is also what makes the
/// simulator itself measurably faster on heavy small-packet workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum packets per batch; the doorbell rings when a hop's open batch
    /// reaches this size. `1` disables batching (and is the baseline mode).
    pub max_batch: usize,
    /// Maximum time the first packet of a batch may wait before the doorbell
    /// rings regardless of batch size (the latency bound of batching).
    pub max_wait: SimDuration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::unbatched()
    }
}

impl BatchConfig {
    /// The unbatched datapath: one packet per service event, one DMA per
    /// packet. This is the configuration every baseline number is pinned to.
    pub const fn unbatched() -> Self {
        BatchConfig {
            max_batch: 1,
            max_wait: SimDuration::ZERO,
        }
    }

    /// A batched datapath closing at `max_batch` packets or after the
    /// default 5 µs doorbell timeout, whichever comes first.
    pub fn of(max_batch: usize) -> Self {
        BatchConfig {
            max_batch: max_batch.max(1),
            max_wait: SimDuration::from_micros(5),
        }
    }

    /// Overrides the doorbell timeout.
    pub const fn with_max_wait(mut self, max_wait: SimDuration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// True when staging is enabled (`max_batch > 1`).
    pub fn is_batched(&self) -> bool {
        self.max_batch > 1
    }
}

/// Configuration of a [`crate::ChainRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Capacity/latency profiles of the vNF kinds in use.
    pub catalog: ProfileCatalog,
    /// SmartNIC device model.
    pub nic: DeviceConfig,
    /// CPU device model.
    pub cpu: DeviceConfig,
    /// PCIe link model.
    pub pcie: PcieLinkConfig,
    /// How often the runtime publishes a metrics snapshot to the registry.
    pub metrics_interval: SimDuration,
    /// Fixed control-plane overhead added to every live migration on top of
    /// the state-transfer time (ring reconfiguration, rule updates).
    pub migration_control_overhead: SimDuration,
    /// Maximum amount of traffic-time a migrating vNF may hold packets back;
    /// packets that would wait longer than this during the blackout are
    /// dropped (models a bounded staging buffer).
    pub migration_buffer_bound: SimDuration,
    /// Per-flow serialisation overhead charged when exporting vNF state
    /// (models OpenNF's per-entry marshalling cost).
    pub state_overhead_per_flow: ByteSize,
    /// Live-migration engine knobs: transfer mode, pre-copy round cap and
    /// convergence bound.
    pub migration: MigrationConfig,
    /// Datapath doorbell-batching knobs (defaults to unbatched).
    pub batch: BatchConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            catalog: ProfileCatalog::figure1_scenario(),
            nic: DeviceConfig::smartnic(),
            cpu: DeviceConfig::cpu(),
            pcie: PcieLinkConfig::default(),
            metrics_interval: SimDuration::from_millis(1),
            migration_control_overhead: SimDuration::from_micros(150),
            migration_buffer_bound: SimDuration::from_millis(2),
            state_overhead_per_flow: ByteSize::bytes(64),
            migration: MigrationConfig::default(),
            batch: BatchConfig::default(),
        }
    }
}

impl RuntimeConfig {
    /// The configuration used by the paper-reproduction experiments.
    pub fn evaluation_default() -> Self {
        Self::default()
    }

    /// Overrides the capacity catalogue.
    pub fn with_catalog(mut self, catalog: ProfileCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Overrides the PCIe link model (used by the PCIe-latency ablation).
    pub fn with_pcie(mut self, pcie: PcieLinkConfig) -> Self {
        self.pcie = pcie;
        self
    }

    /// Selects the PCIe link throughput model (FIFO-fixed baseline or
    /// contention-aware fair sharing), keeping the other link knobs.
    pub fn with_link_model(mut self, link_model: pam_sim::LinkModel) -> Self {
        self.pcie = self.pcie.with_link_model(link_model);
        self
    }

    /// Overrides the live-migration engine configuration.
    pub fn with_migration(mut self, migration: MigrationConfig) -> Self {
        self.migration = migration;
        self
    }

    /// Selects the live-migration transfer mode, keeping the other engine
    /// knobs at their current values.
    pub fn with_migration_mode(mut self, mode: MigrationMode) -> Self {
        self.migration.mode = mode;
        self
    }

    /// Selects what pre-copy does at the round cap without convergence
    /// (force the freeze, or roll the migration back), keeping the other
    /// engine knobs at their current values.
    pub fn with_divergence_policy(mut self, policy: DivergencePolicy) -> Self {
        self.migration.on_divergence = policy;
        self
    }

    /// Overrides the datapath batching knobs.
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Selects a doorbell batch size with the default timeout, keeping every
    /// other knob at its current value (`1` restores the unbatched baseline).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.batch = if max_batch <= 1 {
            BatchConfig::unbatched()
        } else {
            BatchConfig::of(max_batch)
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::SimDuration;

    #[test]
    fn defaults_are_sane() {
        let config = RuntimeConfig::default();
        assert_eq!(config.nic.device, pam_types::Device::SmartNic);
        assert_eq!(config.cpu.device, pam_types::Device::Cpu);
        assert!(config.metrics_interval > SimDuration::ZERO);
        assert!(config.migration_buffer_bound > config.migration_control_overhead);
        assert!(config.catalog.get(pam_nf::NfKind::Monitor).is_some());
    }

    #[test]
    fn builders_override_fields() {
        let pcie = PcieLinkConfig::with_crossing_latency(SimDuration::from_micros(5));
        let config = RuntimeConfig::evaluation_default()
            .with_pcie(pcie)
            .with_catalog(ProfileCatalog::table1());
        assert_eq!(config.pcie.crossing_latency, SimDuration::from_micros(5));
        assert_eq!(
            config
                .catalog
                .require(pam_nf::NfKind::Logger)
                .unwrap()
                .load_factor,
            1.0
        );
    }

    #[test]
    fn batch_builders_and_defaults() {
        let config = RuntimeConfig::default();
        assert_eq!(config.batch, BatchConfig::unbatched());
        assert!(!config.batch.is_batched());
        assert_eq!(config.batch.max_batch, 1);

        let batched = RuntimeConfig::default().with_max_batch(8);
        assert!(batched.batch.is_batched());
        assert_eq!(batched.batch.max_batch, 8);
        assert_eq!(batched.batch.max_wait, SimDuration::from_micros(5));

        // Degenerate sizes collapse to the unbatched baseline.
        assert_eq!(
            RuntimeConfig::default().with_max_batch(0).batch,
            BatchConfig::unbatched()
        );
        assert_eq!(BatchConfig::of(0).max_batch, 1);

        let tuned = BatchConfig::of(16).with_max_wait(SimDuration::from_micros(50));
        assert_eq!(tuned.max_wait, SimDuration::from_micros(50));
        let config = RuntimeConfig::default().with_batch(tuned);
        assert_eq!(config.batch, tuned);
    }

    #[test]
    fn migration_builders_select_mode_and_knobs() {
        let config = RuntimeConfig::default();
        assert_eq!(config.migration.mode, MigrationMode::StopAndCopy);
        let pre = RuntimeConfig::default().with_migration_mode(MigrationMode::PreCopy);
        assert_eq!(pre.migration.mode, MigrationMode::PreCopy);
        let custom = RuntimeConfig::default().with_migration(MigrationConfig {
            mode: MigrationMode::PreCopy,
            max_precopy_rounds: 3,
            convergence_flows: 8,
            ..MigrationConfig::default()
        });
        assert_eq!(custom.migration.max_precopy_rounds, 3);
        assert_eq!(custom.migration.convergence_flows, 8);
        assert_eq!(
            custom.migration.on_divergence,
            DivergencePolicy::ForceFreeze
        );
        let aborting = RuntimeConfig::default()
            .with_migration_mode(MigrationMode::PreCopy)
            .with_divergence_policy(DivergencePolicy::Abort);
        assert_eq!(aborting.migration.on_divergence, DivergencePolicy::Abort);
        assert_eq!(aborting.migration.mode, MigrationMode::PreCopy);
    }
}
