//! Runtime configuration.

use pam_nf::ProfileCatalog;
use pam_sim::{DeviceConfig, PcieLinkConfig};
use pam_types::{ByteSize, SimDuration};

use crate::migration::{MigrationConfig, MigrationMode};

/// Configuration of a [`crate::ChainRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Capacity/latency profiles of the vNF kinds in use.
    pub catalog: ProfileCatalog,
    /// SmartNIC device model.
    pub nic: DeviceConfig,
    /// CPU device model.
    pub cpu: DeviceConfig,
    /// PCIe link model.
    pub pcie: PcieLinkConfig,
    /// How often the runtime publishes a metrics snapshot to the registry.
    pub metrics_interval: SimDuration,
    /// Fixed control-plane overhead added to every live migration on top of
    /// the state-transfer time (ring reconfiguration, rule updates).
    pub migration_control_overhead: SimDuration,
    /// Maximum amount of traffic-time a migrating vNF may hold packets back;
    /// packets that would wait longer than this during the blackout are
    /// dropped (models a bounded staging buffer).
    pub migration_buffer_bound: SimDuration,
    /// Per-flow serialisation overhead charged when exporting vNF state
    /// (models OpenNF's per-entry marshalling cost).
    pub state_overhead_per_flow: ByteSize,
    /// Live-migration engine knobs: transfer mode, pre-copy round cap and
    /// convergence bound.
    pub migration: MigrationConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            catalog: ProfileCatalog::figure1_scenario(),
            nic: DeviceConfig::smartnic(),
            cpu: DeviceConfig::cpu(),
            pcie: PcieLinkConfig::default(),
            metrics_interval: SimDuration::from_millis(1),
            migration_control_overhead: SimDuration::from_micros(150),
            migration_buffer_bound: SimDuration::from_millis(2),
            state_overhead_per_flow: ByteSize::bytes(64),
            migration: MigrationConfig::default(),
        }
    }
}

impl RuntimeConfig {
    /// The configuration used by the paper-reproduction experiments.
    pub fn evaluation_default() -> Self {
        Self::default()
    }

    /// Overrides the capacity catalogue.
    pub fn with_catalog(mut self, catalog: ProfileCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Overrides the PCIe link model (used by the PCIe-latency ablation).
    pub fn with_pcie(mut self, pcie: PcieLinkConfig) -> Self {
        self.pcie = pcie;
        self
    }

    /// Overrides the live-migration engine configuration.
    pub fn with_migration(mut self, migration: MigrationConfig) -> Self {
        self.migration = migration;
        self
    }

    /// Selects the live-migration transfer mode, keeping the other engine
    /// knobs at their current values.
    pub fn with_migration_mode(mut self, mode: MigrationMode) -> Self {
        self.migration.mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_types::SimDuration;

    #[test]
    fn defaults_are_sane() {
        let config = RuntimeConfig::default();
        assert_eq!(config.nic.device, pam_types::Device::SmartNic);
        assert_eq!(config.cpu.device, pam_types::Device::Cpu);
        assert!(config.metrics_interval > SimDuration::ZERO);
        assert!(config.migration_buffer_bound > config.migration_control_overhead);
        assert!(config.catalog.get(pam_nf::NfKind::Monitor).is_some());
    }

    #[test]
    fn builders_override_fields() {
        let pcie = PcieLinkConfig::with_crossing_latency(SimDuration::from_micros(5));
        let config = RuntimeConfig::evaluation_default()
            .with_pcie(pcie)
            .with_catalog(ProfileCatalog::table1());
        assert_eq!(config.pcie.crossing_latency, SimDuration::from_micros(5));
        assert_eq!(
            config
                .catalog
                .require(pam_nf::NfKind::Logger)
                .unwrap()
                .load_factor,
            1.0
        );
    }

    #[test]
    fn migration_builders_select_mode_and_knobs() {
        let config = RuntimeConfig::default();
        assert_eq!(config.migration.mode, MigrationMode::StopAndCopy);
        let pre = RuntimeConfig::default().with_migration_mode(MigrationMode::PreCopy);
        assert_eq!(pre.migration.mode, MigrationMode::PreCopy);
        let custom = RuntimeConfig::default().with_migration(MigrationConfig {
            mode: MigrationMode::PreCopy,
            max_precopy_rounds: 3,
            convergence_flows: 8,
        });
        assert_eq!(custom.migration.max_precopy_rounds, 3);
        assert_eq!(custom.migration.convergence_flows, 8);
    }
}
