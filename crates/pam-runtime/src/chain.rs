//! The packet-level chain runtime.
//!
//! Packets travel in ingress order through the hops of the chain. At each
//! hop, arrivals are staged into a *doorbell batch* (see
//! [`crate::BatchConfig`]): the batch closes — and becomes one service event —
//! when it reaches `max_batch` packets or when `max_wait` elapses after its
//! first packet arrived. With `max_batch = 1` (the default) staging is
//! degenerate and every packet is serviced the instant it arrives, exactly
//! reproducing the unbatched datapath. Each batch charges:
//!
//! 1. queueing + service on the hop's device for every packet of the batch —
//!    the device is a shared work-conserving processor whose per-packet
//!    service time is derived from the vNF's Table 1 capacity, so aggregate
//!    device utilisation matches the analytical model of `pam-core`,
//! 2. the vNF's fixed pipeline latency (which adds delay without consuming
//!    device capacity),
//! 3. the vNF's own processing logic on the real packet bytes — the whole
//!    batch via [`pam_nf::NetworkFunction::process_batch`], whose per-packet
//!    verdicts may drop packets — and
//! 4. a *single coalesced PCIe DMA burst* towards the next hop whenever it
//!    sits on the other side of the link (one setup cost for the whole
//!    batch: [`pam_sim::PcieLink::propagate_burst`]).
//!
//! Live migration comes in two flavours (see [`crate::migration`]):
//! stop-and-copy pauses one vNF while its whole serialised state crosses
//! PCIe; iterative pre-copy ships the state in rounds while the source keeps
//! serving and freezes only the residual dirty set. During any blackout,
//! packets that would have to wait longer than the staging-buffer bound are
//! dropped, every other packet simply waits it out.

use pam_core::{ChainModel, Placement, VnfDescriptor};
use pam_nf::{build_nf, NetworkFunction, NfContext, NfVerdict, Packet, ServiceChainSpec};
use pam_sim::{
    ComputeDevice, EventQueue, LinkDirection, PcieLink, ProcessOutcome, TransferStatus,
    TransferToken,
};
use pam_telemetry::{ChainMetrics, LatencyHistogram, MetricsRegistry, ThroughputMeter};
use pam_traffic::TraceSynthesizer;
use pam_types::{
    ByteSize, Device, Gbps, InstanceIdGen, NfId, PamError, Result, Side, SimDuration, SimTime,
};

use crate::config::RuntimeConfig;
use crate::instance::VnfInstance;
use crate::migration::{
    state_transfer_size, MigrationEstimate, MigrationMode, MigrationReport, MigrationRound,
};
use pam_protocol::{Action as HandoverAction, Event as HandoverEvent, HandoverState, Phase};

/// What happened to one injected packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketOutcome {
    /// The packet traversed the whole chain; its end-to-end latency is given.
    Delivered {
        /// End-to-end latency from ingress to egress.
        latency: SimDuration,
    },
    /// Dropped because a device queue exceeded its backlog bound (overload).
    DroppedOverload,
    /// Dropped by a vNF's own verdict (firewall rule, rate limit, ...).
    DroppedPolicy,
    /// Dropped because it arrived during a migration blackout and the staging
    /// buffer bound was exceeded.
    DroppedMigration,
}

impl PacketOutcome {
    /// True when the packet was delivered.
    pub fn is_delivered(&self) -> bool {
        matches!(self, PacketOutcome::Delivered { .. })
    }
}

/// Aggregate results of a run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Packets injected at the ingress.
    pub injected: u64,
    /// Packets delivered at the egress.
    pub delivered: u64,
    /// Packets dropped due to device overload.
    pub drops_overload: u64,
    /// Packets dropped by vNF policy verdicts.
    pub drops_policy: u64,
    /// Packets dropped during migration blackouts.
    pub drops_migration: u64,
    /// Mean end-to-end latency of delivered packets.
    pub mean_latency: SimDuration,
    /// Median end-to-end latency.
    pub p50_latency: SimDuration,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: SimDuration,
    /// Delivered throughput over the whole run.
    pub delivered_throughput: Gbps,
    /// Total PCIe crossings paid by all packets.
    pub pcie_crossings: u64,
    /// Every live migration performed during the run.
    pub migrations: Vec<MigrationReport>,
    /// Migrations rolled back before handover (operator aborts, corrupt
    /// deltas, or the [`crate::migration::DivergencePolicy::Abort`] policy at
    /// the round cap). The source kept serving through each of these.
    pub aborted_migrations: u64,
}

/// A measurement over an explicit window (see
/// [`ChainRuntime::start_measurement`]).
#[derive(Debug, Clone, Copy)]
pub struct WindowReport {
    /// Mean end-to-end latency of packets delivered in the window.
    pub mean_latency: SimDuration,
    /// 99th-percentile latency in the window.
    pub p99_latency: SimDuration,
    /// Delivered throughput over the window.
    pub delivered: Gbps,
    /// Offered throughput over the window.
    pub offered: Gbps,
    /// Packets delivered in the window.
    pub delivered_packets: u64,
}

/// A packet travelling the chain: the event payload of the runtime's
/// discrete-event loop. The event's firing time is the packet's arrival at
/// the device hosting hop `hop`.
#[derive(Debug, Clone)]
struct InFlight {
    packet: Packet,
    hop: usize,
    pipeline: SimDuration,
}

/// Everything the runtime's single deterministic event queue carries.
///
/// Batches travel in struct-of-arrays form (`packets` + parallel
/// `pipelines`): the vNF batch API operates on `&mut [Packet]` *in place*,
/// and forwarding a batch to the next hop moves two `Vec`s (pointer swaps)
/// instead of copying every packet through an intermediate representation.
#[derive(Debug)]
enum RuntimeEvent {
    /// A packet arriving at the device of its current hop.
    Packet(InFlight),
    /// A closed batch whose packets arrive together (in batch order) at the
    /// device of their shared hop. `pipelines[i]` is the accumulated
    /// pipeline latency of `packets[i]`.
    Batch {
        hop: usize,
        packets: Vec<Packet>,
        pipelines: Vec<SimDuration>,
    },
    /// The doorbell timeout of hop `hop`'s open batch `seq`: if that batch
    /// is still open when this fires, it closes regardless of size.
    Doorbell { hop: usize, seq: u64 },
    /// A pre-copy round's transfer finished; export the next delta (or
    /// freeze and hand over).
    MigrationRound,
}

/// The doorbell staging buffer of one chain hop (struct-of-arrays, see
/// [`RuntimeEvent::Batch`]).
#[derive(Debug, Default)]
struct HopStage {
    /// Packets of the currently open batch, in arrival order.
    packets: Vec<Packet>,
    /// Accumulated pipeline latency of each staged packet.
    pipelines: Vec<SimDuration>,
    /// Identity of the open batch; bumped on every close so a doorbell
    /// carrying a stale seq (its batch already closed on size) is a no-op.
    seq: u64,
}

/// A free list of recycled batch buffers. Staging buffers and in-flight
/// [`RuntimeEvent::Batch`] payloads draw from and return to this pool, so
/// once the pool and the per-buffer capacities are warm, steady-state batch
/// service performs zero heap allocations (pinned by the counting-allocator
/// test in `tests/zero_alloc.rs`).
#[derive(Debug, Default)]
struct BatchPool {
    packet_buffers: Vec<Vec<Packet>>,
    pipeline_buffers: Vec<Vec<SimDuration>>,
    /// Every pooled buffer is topped up to this capacity on `put`, so a
    /// buffer that first grew under a small partial batch converges to full
    /// batch capacity the first time it returns — afterwards no buffer in
    /// circulation can reallocate mid-service.
    batch_capacity: usize,
}

impl BatchPool {
    /// Upper bound on pooled buffers per kind: enough for every hop's stage
    /// plus the batches in flight between hops; beyond that, buffers drop.
    const MAX_FREE: usize = 64;

    /// Takes a (cleared) packet buffer from the pool, or a fresh one.
    fn take_packets(&mut self) -> Vec<Packet> {
        self.packet_buffers.pop().unwrap_or_default()
    }

    /// Takes a (cleared) pipeline buffer from the pool, or a fresh one.
    fn take_pipelines(&mut self) -> Vec<SimDuration> {
        self.pipeline_buffers.pop().unwrap_or_default()
    }

    /// Clears both buffers of a batch and returns them to the pool.
    fn put(&mut self, mut packets: Vec<Packet>, mut pipelines: Vec<SimDuration>) {
        packets.clear();
        pipelines.clear();
        if self.packet_buffers.len() < Self::MAX_FREE {
            if packets.capacity() < self.batch_capacity {
                packets.reserve_exact(self.batch_capacity);
            }
            self.packet_buffers.push(packets);
        }
        if self.pipeline_buffers.len() < Self::MAX_FREE {
            if pipelines.capacity() < self.batch_capacity {
                pipelines.reserve_exact(self.batch_capacity);
            }
            self.pipeline_buffers.push(pipelines);
        }
    }
}

/// An iterative pre-copy migration in flight: the staged target instance is
/// warmed round by round while the source keeps serving.
struct PreCopyInFlight {
    /// The model-checked protocol machine this migration is an execution of.
    /// Every phase change below goes through [`HandoverState::step`], so the
    /// engine cannot drift from the exhaustively checked transition relation
    /// (see `pam-protocol`).
    protocol: HandoverState,
    nf_index: usize,
    from: Device,
    to: Device,
    started_at: SimTime,
    /// The target-side instance accumulating snapshot + deltas.
    target: Box<dyn NetworkFunction>,
    rounds: Vec<MigrationRound>,
    total_bytes: ByteSize,
    total_flows: usize,
    /// Link-level handle of the round transfer currently in flight. Under
    /// the fair-sharing link model the round's arrival is re-planned when
    /// foreground DMA traffic steals bandwidth; under FIFO-fixed the poll
    /// always confirms the provisional arrival, byte-identically.
    transfer: TransferToken,
    /// When the in-flight round's transfer was admitted, so the recorded
    /// round duration reflects the *actual* (possibly contended) span.
    round_booked_at: SimTime,
}

/// The packet-level service-chain runtime.
///
/// The `Debug` representation is intentionally shallow (placement, counters
/// and clock) — the full state includes boxed vNFs and histograms.
pub struct ChainRuntime {
    config: RuntimeConfig,
    spec: ServiceChainSpec,
    instances: Vec<VnfInstance>,
    /// One doorbell staging buffer per chain hop.
    stages: Vec<HopStage>,
    /// Recycled batch buffers (zero-allocation steady state).
    pool: BatchPool,
    /// Scratch: per-packet verdicts of the batch being serviced.
    verdict_scratch: Vec<NfVerdict>,
    nic: ComputeDevice,
    cpu: ComputeDevice,
    pcie: PcieLink,
    registry: MetricsRegistry,
    id_gen: InstanceIdGen,
    events: EventQueue<RuntimeEvent>,

    now: SimTime,
    pending: Option<(SimTime, Packet)>,
    /// At most one pre-copy migration runs at a time.
    pre_copy: Option<PreCopyInFlight>,
    /// When set, every delivered packet's `(id, egress flow)` is appended in
    /// delivery order (tests use this to check per-flow ordering).
    egress_log: Option<Vec<(u64, u64)>>,

    // Whole-run accounting.
    injected: u64,
    delivered: u64,
    delivered_bytes: u64,
    drops_overload: u64,
    drops_policy: u64,
    drops_migration: u64,
    latency_total: LatencyHistogram,
    migrations: Vec<MigrationReport>,
    aborted_migrations: u64,
    /// Subset of `aborted_migrations` rolled back because the *target*
    /// crashed mid-copy (fault injection drives this arc).
    target_crashes: u64,

    // Explicit measurement window (experiments).
    latency_window: LatencyHistogram,
    delivered_meter: ThroughputMeter,
    offered_meter: ThroughputMeter,

    // Metrics-publication window (control plane).
    next_metrics_at: SimTime,
    bytes_injected_since_publish: u64,
    bytes_delivered_since_publish: u64,
    last_publish_at: SimTime,
}

impl std::fmt::Debug for ChainRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainRuntime")
            .field("chain", &self.spec.name)
            .field("now", &self.now)
            .field("placement", &self.placement())
            .field("injected", &self.injected)
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl ChainRuntime {
    /// Builds a runtime for `spec`, placing each position according to
    /// `placement` and deriving timing from the profiles in `config`.
    pub fn new(
        spec: ServiceChainSpec,
        placement: &Placement,
        config: RuntimeConfig,
    ) -> Result<Self> {
        if placement.len() != spec.len() {
            return Err(PamError::config(format!(
                "placement covers {} positions but the chain has {}",
                placement.len(),
                spec.len()
            )));
        }
        let id_gen = InstanceIdGen::new();
        let mut instances = Vec::with_capacity(spec.len());
        for position in spec.positions() {
            let kind = position.spec.kind;
            let profile = *config.catalog.require(kind)?;
            let device = placement.device_of(position.id)?;
            instances.push(VnfInstance::new(
                id_gen.next_id(),
                position.id,
                kind,
                build_nf(&position.spec),
                device,
                profile,
            ));
        }
        let metrics_interval = config.metrics_interval;
        let stages = (0..instances.len()).map(|_| HopStage::default()).collect();
        // Pre-warm the batch pool to its full depth, each buffer sized to the
        // doorbell batch bound, so the steady state never has to grow a fresh
        // one (a pool miss hands out an empty Vec that would reallocate as it
        // fills; the in-flight peak — stages plus batches queued on the event
        // queue — can exceed any smaller stock late in a run). ~40 KiB per
        // runtime at the default batch bound.
        let mut pool = BatchPool {
            batch_capacity: config.batch.max_batch.max(1),
            ..BatchPool::default()
        };
        let batch_capacity = pool.batch_capacity;
        for _ in 0..BatchPool::MAX_FREE {
            pool.put(
                Vec::with_capacity(batch_capacity),
                Vec::with_capacity(batch_capacity),
            );
        }
        Ok(ChainRuntime {
            stages,
            pool,
            verdict_scratch: Vec::new(),
            nic: ComputeDevice::new(config.nic),
            cpu: ComputeDevice::new(config.cpu),
            pcie: PcieLink::new(config.pcie),
            registry: MetricsRegistry::new(),
            id_gen,
            events: EventQueue::new(),
            config,
            spec,
            instances,
            now: SimTime::ZERO,
            pending: None,
            pre_copy: None,
            egress_log: None,
            injected: 0,
            delivered: 0,
            delivered_bytes: 0,
            drops_overload: 0,
            drops_policy: 0,
            drops_migration: 0,
            latency_total: LatencyHistogram::new(),
            migrations: Vec::new(),
            aborted_migrations: 0,
            target_crashes: 0,
            latency_window: LatencyHistogram::new(),
            delivered_meter: ThroughputMeter::new(),
            offered_meter: ThroughputMeter::new(),
            next_metrics_at: SimTime::ZERO + metrics_interval,
            bytes_injected_since_publish: 0,
            bytes_delivered_since_publish: 0,
            last_publish_at: SimTime::ZERO,
        })
    }

    /// The chain specification this runtime executes.
    pub fn spec(&self) -> &ServiceChainSpec {
        &self.spec
    }

    /// The configuration this runtime was built from.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Total per-flow state entries currently held across all instances
    /// (drives cross-server state-handoff sizing in the fleet layer).
    pub fn stateful_flow_entries(&self) -> usize {
        self.instances.iter().map(|i| i.nf.flow_count()).sum()
    }

    /// The metrics registry the control plane polls.
    pub fn registry(&self) -> MetricsRegistry {
        self.registry.clone()
    }

    /// The current simulation time (the ingress time of the last packet).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events ever scheduled on this runtime's queue (packet arrivals,
    /// batches, doorbells, migration rounds) — the denominator of the
    /// simulator's events/second throughput figure.
    pub fn events_scheduled(&self) -> u64 {
        self.events.scheduled_total()
    }

    /// The current placement of every chain position.
    pub fn placement(&self) -> Placement {
        Placement::from_devices(self.instances.iter().map(|i| i.device).collect())
    }

    /// The analytical chain model corresponding to this runtime (descriptor
    /// per position, built from the same capacity profiles), so planners in
    /// `pam-core` reason about exactly the chain being simulated.
    pub fn chain_model(&self) -> ChainModel {
        let vnfs = self
            .instances
            .iter()
            .map(|inst| {
                VnfDescriptor::new(
                    inst.nf_id,
                    inst.kind.name(),
                    inst.profile.nic_capacity,
                    inst.profile.cpu_capacity,
                )
                .with_load_factor(inst.profile.load_factor)
                .with_latencies(inst.profile.nic_latency, inst.profile.cpu_latency)
            })
            .collect();
        ChainModel::new(&self.spec.name, self.spec.ingress, self.spec.egress, vnfs)
    }

    /// Per-instance views (for reporting).
    pub fn instances(&self) -> &[VnfInstance] {
        &self.instances
    }

    /// Submits one packet at its ingress time: the packet is accounted as
    /// offered and its first hop is scheduled. Call [`ChainRuntime::drain_until`]
    /// (or one of the `run_*` helpers) to actually advance the data plane.
    pub fn submit(&mut self, send_time: SimTime, packet: Packet) {
        self.injected += 1;
        let size = packet.size();
        self.offered_meter.record(size);
        self.bytes_injected_since_publish += size.as_bytes();

        // The first device arrival happens after the ingress-side PCIe
        // crossing, if the first hop lives on the other side of the link.
        let mut packet = packet;
        let mut arrival = send_time;
        if let Some(first) = self.instances.first() {
            let ingress_side = self.spec.ingress.side();
            let target_side = first.device.side();
            if ingress_side != target_side {
                arrival = self.cross(arrival, size, target_side);
                packet.record_crossing();
            }
        }
        self.events.schedule(
            arrival,
            RuntimeEvent::Packet(InFlight {
                packet,
                hop: 0,
                pipeline: SimDuration::ZERO,
            }),
        );
    }

    /// Processes every scheduled hop event up to and including `until`,
    /// advancing the simulated clock. Events are handled in global time
    /// order, so the shared device processors see arrivals exactly as the
    /// real hardware would.
    pub fn drain_until(&mut self, until: SimTime) {
        while let Some(next) = self.events.peek_time() {
            if next > until {
                break;
            }
            let Some((now, event)) = self.events.pop() else {
                unreachable!("peeked event must pop");
            };
            self.now = self.now.max(now);
            match event {
                RuntimeEvent::Packet(in_flight) => self.handle_arrival(now, in_flight),
                RuntimeEvent::Batch {
                    hop,
                    mut packets,
                    mut pipelines,
                } => {
                    for (packet, pipeline) in packets.drain(..).zip(pipelines.drain(..)) {
                        self.handle_arrival(
                            now,
                            InFlight {
                                packet,
                                hop,
                                pipeline,
                            },
                        );
                    }
                    self.pool.put(packets, pipelines);
                }
                RuntimeEvent::Doorbell { hop, seq } => {
                    if self.stages[hop].seq == seq && !self.stages[hop].packets.is_empty() {
                        self.close_batch(now, hop);
                    }
                }
                RuntimeEvent::MigrationRound => self.on_migration_round(now),
            }
            if self.now >= self.next_metrics_at {
                self.publish_metrics();
            }
        }
    }

    /// Counts one packet dropped during the blackout ending at `until` and
    /// attributes it to the migration that owns that blackout. Usually the
    /// most recent report, but a multi-move stop-and-copy plan pauses several
    /// instances with overlapping windows, so scan backwards for the report
    /// whose pause this is.
    fn drop_for_blackout(&mut self, until: SimTime) {
        self.drops_migration += 1;
        if let Some(migration) = self
            .migrations
            .iter_mut()
            .rev()
            .find(|m| m.completed_at == until)
        {
            migration.packets_dropped += 1;
        }
    }

    /// Handles one packet arriving at the device of chain hop
    /// `in_flight.hop` at time `now`: the packet either waits out (or is
    /// dropped by) a migration blackout, or joins the hop's open doorbell
    /// batch.
    fn handle_arrival(&mut self, now: SimTime, in_flight: InFlight) {
        let index = in_flight.hop;

        // Migration blackout: wait (bounded) for the instance to resume by
        // re-scheduling the arrival at the blackout end.
        if let Some(until) = self.instances[index].paused_until {
            if now < until {
                let wait = until.duration_since(now);
                if wait > self.config.migration_buffer_bound {
                    self.drop_for_blackout(until);
                    return;
                }
                // Held packets re-fire at the blackout end; equal-time events
                // pop in scheduling order, so per-flow ordering is preserved
                // across the handover.
                self.events.schedule(until, RuntimeEvent::Packet(in_flight));
                return;
            }
        }

        // Stage into the hop's open batch; the doorbell rings (the batch is
        // serviced) on size or on timeout, whichever comes first. With
        // `max_batch = 1` the batch closes right here and the packet is
        // serviced at its arrival instant, exactly like the unbatched
        // datapath.
        let stage = &mut self.stages[index];
        stage.packets.push(in_flight.packet);
        stage.pipelines.push(in_flight.pipeline);
        if stage.packets.len() >= self.config.batch.max_batch.max(1) {
            self.close_batch(now, index);
        } else if stage.packets.len() == 1 {
            let seq = stage.seq;
            self.events.schedule(
                now + self.config.batch.max_wait,
                RuntimeEvent::Doorbell { hop: index, seq },
            );
        }
    }

    /// Applies the blackout policy to packets awaiting service at a paused
    /// hop: each packet waits out the blackout — re-firing at its end, in the
    /// order the packets are given — or is dropped when the wait exceeds the
    /// staging-buffer bound.
    fn hold_or_drop_for_blackout(
        &mut self,
        hop: usize,
        mut packets: Vec<Packet>,
        mut pipelines: Vec<SimDuration>,
        now: SimTime,
        until: SimTime,
    ) {
        if until.duration_since(now) > self.config.migration_buffer_bound {
            for _ in &packets {
                self.drop_for_blackout(until);
            }
        } else {
            for (packet, pipeline) in packets.drain(..).zip(pipelines.drain(..)) {
                self.events.schedule(
                    until,
                    RuntimeEvent::Packet(InFlight {
                        packet,
                        hop,
                        pipeline,
                    }),
                );
            }
        }
        self.pool.put(packets, pipelines);
    }

    /// Flushes hop `index`'s open batch into the blackout policy the moment
    /// its instance pauses (both migration paths call this right after
    /// setting `paused_until`). Staged packets arrived *before* the pause, so
    /// they must keep their arrival-order priority over packets that arrive
    /// during the blackout — letting the doorbell fire mid-blackout instead
    /// would re-queue them at the blackout end *behind* later same-flow
    /// arrivals and reorder the flow.
    fn flush_stage_for_pause(&mut self, index: usize, now: SimTime, until: SimTime) {
        if self.stages[index].packets.is_empty() {
            return;
        }
        let (packets, pipelines) = self.take_stage(index);
        self.hold_or_drop_for_blackout(index, packets, pipelines, now, until);
    }

    /// Swaps hop `index`'s staged batch out against fresh pool buffers and
    /// bumps the stage's batch identity. The two parallel arrays (packets
    /// and their accumulated pipeline latencies) must always move together —
    /// this is the only place that detaches them from the stage.
    fn take_stage(&mut self, index: usize) -> (Vec<Packet>, Vec<SimDuration>) {
        let fresh_packets = self.pool.take_packets();
        let fresh_pipelines = self.pool.take_pipelines();
        let packets = std::mem::replace(&mut self.stages[index].packets, fresh_packets);
        let pipelines = std::mem::replace(&mut self.stages[index].pipelines, fresh_pipelines);
        self.stages[index].seq += 1;
        (packets, pipelines)
    }

    /// Rings the doorbell of hop `index`: services the staged batch on the
    /// hop's device, runs the vNF over the whole batch, and forwards the
    /// survivors together (one coalesced DMA burst when the next hop sits on
    /// the other side of the PCIe link).
    fn close_batch(&mut self, now: SimTime, index: usize) {
        let (mut packets, mut pipelines) = self.take_stage(index);
        if packets.is_empty() {
            self.pool.put(packets, pipelines);
            return;
        }

        // Defensive: migrations flush a hop's open batch the moment they
        // pause it (see [`ChainRuntime::flush_stage_for_pause`]), so a batch
        // can only close on a paused instance if a future pause path forgets
        // that flush. Apply the blackout policy rather than servicing a
        // paused vNF.
        if let Some(until) = self.instances[index].paused_until {
            if now < until {
                self.hold_or_drop_for_blackout(index, packets, pipelines, now, until);
                return;
            }
        }

        // Device queueing + service on the hop's shared processor: the whole
        // batch is offered back-to-back at the doorbell instant and the batch
        // completes when its last accepted packet does. Fixed pipeline
        // latency is experienced by each packet but does not occupy the
        // device (deep pipelines keep serving other packets), so it
        // accumulates on the packet rather than delaying later hops'
        // queueing. Rejected packets are compacted out in place (two-pointer
        // swap, order-preserving for the accepted ones).
        let device_kind = self.instances[index].device;
        let pipeline_latency = self.instances[index].pipeline_latency();
        let mut batch_finish = now;
        let mut keep = 0;
        for i in 0..packets.len() {
            let size = packets[i].size();
            let service = self.instances[index].service_time(size);
            let device = match device_kind {
                Device::SmartNic => &mut self.nic,
                Device::Cpu => &mut self.cpu,
            };
            match device.process(now, size, service) {
                ProcessOutcome::Rejected => self.drops_overload += 1,
                ProcessOutcome::Accepted { finish, .. } => {
                    batch_finish = batch_finish.max(finish);
                    if keep != i {
                        packets.swap(keep, i);
                        pipelines.swap(keep, i);
                    }
                    pipelines[keep] += pipeline_latency;
                    keep += 1;
                }
            }
        }
        packets.truncate(keep);
        pipelines.truncate(keep);
        if packets.is_empty() {
            self.pool.put(packets, pipelines);
            return;
        }

        // The vNF's own logic on the real packet bytes, over the whole batch,
        // in place. This is the datapath's single NfContext construction:
        // `now` is the device clock at batch service completion, shared by
        // every packet of the batch (for a batch of one it is that packet's
        // service finish). The verdicts land in a reused scratch buffer and
        // policy drops are compacted out in place, so the whole service path
        // stays inside recycled capacity.
        let ctx = NfContext::at(batch_finish);
        self.verdict_scratch.clear();
        self.instances[index]
            .nf
            .process_batch_into(&mut packets, &ctx, &mut self.verdict_scratch);
        self.instances[index].processed += packets.len() as u64;
        let mut policy_drops = 0u64;
        let mut keep = 0;
        for i in 0..packets.len() {
            packets[i].record_hop();
            if self.verdict_scratch[i] == NfVerdict::Drop {
                policy_drops += 1;
            } else {
                if keep != i {
                    packets.swap(keep, i);
                    pipelines.swap(keep, i);
                }
                keep += 1;
            }
        }
        packets.truncate(keep);
        pipelines.truncate(keep);
        self.instances[index].policy_drops += policy_drops;
        self.drops_policy += policy_drops;
        if packets.is_empty() {
            self.pool.put(packets, pipelines);
            return;
        }

        let current_side = device_kind.side();
        if index + 1 < self.instances.len() {
            // Forward the surviving batch to the next hop, paying a single
            // coalesced DMA burst if it changes sides.
            let next_side = self.instances[index + 1].device.side();
            let mut arrival = batch_finish;
            if current_side != next_side {
                arrival = self.cross_burst(batch_finish, &mut packets, next_side);
            }
            self.events.schedule(
                arrival,
                RuntimeEvent::Batch {
                    hop: index + 1,
                    packets,
                    pipelines,
                },
            );
        } else {
            // Egress: pay a final burst crossing if the egress endpoint is on
            // the other side, then record deliveries in batch order.
            let egress_side = self.spec.egress.side();
            let mut done = batch_finish;
            if current_side != egress_side {
                done = self.cross_burst(batch_finish, &mut packets, egress_side);
            }
            for (packet, pipeline) in packets.drain(..).zip(pipelines.drain(..)) {
                let size = packet.size();
                let latency = done.duration_since(packet.ingress_time) + pipeline;
                if let Some(log) = &mut self.egress_log {
                    log.push((packet.id, packet.flow_id().raw()));
                }
                self.delivered += 1;
                self.delivered_bytes += size.as_bytes();
                self.bytes_delivered_since_publish += size.as_bytes();
                self.latency_total.record(latency);
                self.latency_window.record(latency);
                self.delivered_meter.record(size);
                self.registry.record_latency(latency);
            }
            self.pool.put(packets, pipelines);
        }
    }

    /// Performs a PCIe crossing towards `target_side` starting at `now` and
    /// returns the arrival time on the far side.
    fn cross(&mut self, now: SimTime, size: pam_types::ByteSize, target_side: Side) -> SimTime {
        let direction = if target_side == Side::Host {
            LinkDirection::NicToCpu
        } else {
            LinkDirection::CpuToNic
        };
        self.pcie.propagate(now, size, direction)
    }

    /// Crosses a whole batch towards `target_side` as one coalesced DMA
    /// burst starting at `now`, recording the crossing on every packet, and
    /// returns the burst's arrival time on the far side.
    fn cross_burst(&mut self, now: SimTime, batch: &mut [Packet], target_side: Side) -> SimTime {
        let direction = if target_side == Side::Host {
            LinkDirection::NicToCpu
        } else {
            LinkDirection::CpuToNic
        };
        let mut total = 0u64;
        for packet in batch.iter_mut() {
            total += packet.size().as_bytes();
            packet.record_crossing();
        }
        self.pcie.propagate_burst(
            now,
            batch.len() as u64,
            pam_types::ByteSize::bytes(total),
            direction,
        )
    }

    /// Convenience for tests and examples: submits a single packet and runs
    /// the data plane until it has fully left the chain, returning what
    /// happened to it. (With other packets still in flight the attribution is
    /// by counter difference, so this is intended for one-packet-at-a-time
    /// use.)
    pub fn inject(&mut self, send_time: SimTime, packet: Packet) -> PacketOutcome {
        let delivered_before = self.delivered;
        let overload_before = self.drops_overload;
        let policy_before = self.drops_policy;
        let migration_before = self.drops_migration;
        let latency_count_before = self.latency_total.count();
        let mean_before = self.latency_total.mean();

        self.submit(send_time, packet);
        self.drain_until(SimTime::MAX);

        if self.delivered > delivered_before {
            // Recover this packet's latency from the histogram delta.
            let count = self.latency_total.count();
            let total_after = self.latency_total.mean().as_nanos() as u128 * u128::from(count);
            let total_before = mean_before.as_nanos() as u128 * u128::from(latency_count_before);
            let latency = SimDuration::from_nanos(
                (total_after.saturating_sub(total_before)
                    / u128::from(count - latency_count_before)) as u64,
            );
            PacketOutcome::Delivered { latency }
        } else if self.drops_policy > policy_before {
            PacketOutcome::DroppedPolicy
        } else if self.drops_overload > overload_before {
            PacketOutcome::DroppedOverload
        } else if self.drops_migration > migration_before {
            PacketOutcome::DroppedMigration
        } else {
            // The packet is still waiting on a paused instance; treat it as
            // in flight (it will complete on the next drain).
            PacketOutcome::DroppedMigration
        }
    }

    /// Runs the trace until (and including) packets sent at `until`,
    /// interleaving packet submission with hop processing in time order.
    /// Returns the number of packets submitted.
    pub fn run_until(&mut self, trace: &mut TraceSynthesizer, until: SimTime) -> u64 {
        let mut submitted = 0;
        loop {
            if self.pending.is_none() {
                self.pending = trace.next_packet();
            }
            match &self.pending {
                Some((send_time, _)) if *send_time <= until => {
                    let send_time = *send_time;
                    // Process everything scheduled before this packet enters.
                    self.drain_until(send_time);
                    let Some((send_time, packet)) = self.pending.take() else {
                        unreachable!("pending checked");
                    };
                    self.now = self.now.max(send_time);
                    self.submit(send_time, packet);
                    submitted += 1;
                }
                _ => break,
            }
        }
        self.drain_until(until);
        submitted
    }

    /// Runs the trace to exhaustion and drains every in-flight packet.
    pub fn run_to_completion(&mut self, trace: &mut TraceSynthesizer) -> u64 {
        self.run_until(trace, SimTime::MAX)
    }

    /// Live-migrates the vNF at `nf` to `device` using the configured
    /// [`MigrationMode`].
    ///
    /// * **Stop-and-copy** completes synchronously: pause, export state,
    ///   transfer it over PCIe, import on the target, resume. The returned
    ///   report is final and also recorded in [`RunOutcome::migrations`].
    /// * **Pre-copy** only *starts* here: the snapshot round is booked on the
    ///   link and later rounds run as events interleaved with the data plane,
    ///   so the source keeps serving. The returned report describes the
    ///   initiation (`completed_at == started_at`, zero blackout); the
    ///   authoritative completed report is appended to
    ///   [`RunOutcome::migrations`] when the handover finishes.
    ///
    /// Traffic arriving during any blackout waits (bounded) or is dropped.
    pub fn live_migrate(
        &mut self,
        nf: NfId,
        device: Device,
        now: SimTime,
    ) -> Result<MigrationReport> {
        match self.config.migration.mode {
            MigrationMode::StopAndCopy => self.stop_and_copy_migrate(nf, device, now),
            MigrationMode::PreCopy => self.start_pre_copy(nf, device, now),
        }
    }

    /// Validates that position `nf` exists and may start migrating to
    /// `device` at `now`; returns its index.
    fn check_migratable(&self, nf: NfId, device: Device, now: SimTime) -> Result<usize> {
        let index = nf.index();
        if index >= self.instances.len() {
            return Err(PamError::UnknownNf(nf));
        }
        if let Some(pre_copy) = &self.pre_copy {
            return Err(PamError::state(format!(
                "{} is still pre-copying; only one migration may run at a time",
                self.instances[pre_copy.nf_index].nf_id
            )));
        }
        let instance = &self.instances[index];
        if instance.device == device {
            return Err(PamError::state(format!("{nf} already runs on {device}")));
        }
        if instance.is_paused(now) {
            return Err(PamError::state(format!("{nf} is already migrating")));
        }
        Ok(index)
    }

    /// The link direction a transfer towards `device` takes.
    fn transfer_direction(device: Device) -> LinkDirection {
        match device {
            Device::Cpu => LinkDirection::NicToCpu,
            Device::SmartNic => LinkDirection::CpuToNic,
        }
    }

    /// The classic OpenNF stop-and-copy transfer (see [`ChainRuntime::live_migrate`]).
    ///
    /// The whole handover happens within this call, but every phase change
    /// still goes through the model-checked machine: `Start` must yield the
    /// freeze (export-everything + pause) and `FreezeDelivered` must yield
    /// the activation, or the engine refuses to proceed.
    fn stop_and_copy_migrate(
        &mut self,
        nf: NfId,
        device: Device,
        now: SimTime,
    ) -> Result<MigrationReport> {
        let index = self.check_migratable(nf, device, now)?;
        let protocol = HandoverState::new(self.config.migration.protocol());
        let (protocol, actions) = protocol
            .step(HandoverEvent::Start)
            .map_err(|e| PamError::state(e.to_string()))?;
        debug_assert!(actions.contains(HandoverAction::ExportFull));
        debug_assert!(actions.contains(HandoverAction::PauseSource));
        let (from, kind, state, flows) = {
            let instance = &self.instances[index];
            (
                instance.device,
                instance.kind,
                instance.nf.export_state(),
                instance.nf.flow_count(),
            )
        };

        let state_size = state_transfer_size(
            state.estimated_size,
            self.config.state_overhead_per_flow,
            flows,
        );

        // Restore the target instance before booking the PCIe transfer: a
        // rejected state blob must abort the migration without leaving a
        // phantom transfer on the link.
        let mut target_nf = match pam_nf::restore_kind(kind, state) {
            Ok(target_nf) => target_nf,
            Err(error) => {
                // The machine's rollback arc: a rejected blob during the
                // freeze discards the target and resumes the source (which,
                // here, was never visibly paused — the freeze is atomic
                // within this call).
                let (aborted, rollback) = protocol
                    .step(HandoverEvent::DeltaRejected)
                    .map_err(|e| PamError::state(e.to_string()))?;
                debug_assert_eq!(aborted.phase, Phase::Aborted);
                debug_assert!(rollback.contains(HandoverAction::ResumeSource));
                self.aborted_migrations += 1;
                return Err(error);
            }
        };
        target_nf.clear_dirty();

        let transfer_done = self
            .pcie
            .transfer(now, state_size, Self::transfer_direction(device));
        let completed_at = transfer_done + self.config.migration_control_overhead;

        // The freeze payload "arrives" at `completed_at`; the activation is
        // modelled by installing the target now and keeping the instance
        // paused until then.
        let (protocol, actions) = protocol
            .step(HandoverEvent::FreezeDelivered)
            .map_err(|e| PamError::state(e.to_string()))?;
        debug_assert_eq!(protocol.phase, Phase::Done);
        debug_assert!(actions.contains(HandoverAction::ActivateTarget));

        let instance = &mut self.instances[index];
        instance.nf = target_nf;
        instance.device = device;
        instance.id = self.id_gen.next_id();
        instance.paused_until = Some(completed_at);

        let report = MigrationReport {
            nf,
            from,
            to: device,
            mode: MigrationMode::StopAndCopy,
            started_at: now,
            paused_at: now,
            completed_at,
            state_size,
            flows_transferred: flows,
            residual_dirty_flows: flows,
            rounds: vec![MigrationRound {
                round: 1,
                flows,
                bytes: state_size,
                duration: transfer_done.duration_since(now),
            }],
            packets_dropped: 0,
        };
        self.migrations.push(report.clone());
        // After the report is recorded, so flushed-batch drops attribute to it.
        self.flush_stage_for_pause(index, now, completed_at);
        Ok(report)
    }

    /// Starts an iterative pre-copy migration: books the snapshot round on
    /// the link and schedules the first round-completion event. The source
    /// keeps serving until the final freeze (see
    /// [`ChainRuntime::on_migration_round`]).
    fn start_pre_copy(
        &mut self,
        nf: NfId,
        device: Device,
        now: SimTime,
    ) -> Result<MigrationReport> {
        let index = self.check_migratable(nf, device, now)?;
        let protocol = HandoverState::new(self.config.migration.protocol());
        let (protocol, actions) = protocol
            .step(HandoverEvent::Start)
            .map_err(|e| PamError::state(e.to_string()))?;
        debug_assert_eq!(protocol.phase, Phase::Snapshot);
        debug_assert!(actions.contains(HandoverAction::ExportFull));
        // The source keeps serving through the snapshot: the machine must
        // not have asked for a pause.
        debug_assert!(!actions.contains(HandoverAction::PauseSource));
        let (from, kind, state, flows) = {
            let instance = &self.instances[index];
            (
                instance.device,
                instance.kind,
                instance.nf.export_state(),
                instance.nf.flow_count(),
            )
        };

        let bytes = state_transfer_size(
            state.estimated_size,
            self.config.state_overhead_per_flow,
            flows,
        );

        // Stage the target instance from the snapshot before booking the
        // transfer, so a rejected blob aborts cleanly (as in stop-and-copy).
        let mut target = match pam_nf::restore_kind(kind, state) {
            Ok(target) => target,
            Err(error) => {
                let (aborted, rollback) = protocol
                    .step(HandoverEvent::DeltaRejected)
                    .map_err(|e| PamError::state(e.to_string()))?;
                debug_assert_eq!(aborted.phase, Phase::Aborted);
                debug_assert!(rollback.contains(HandoverAction::DiscardTarget));
                self.aborted_migrations += 1;
                return Err(error);
            }
        };
        target.clear_dirty();
        // Every mutation from here on belongs to the next round's delta.
        self.instances[index].nf.clear_dirty();

        let (transfer, transfer_done) =
            self.pcie
                .begin_transfer(now, bytes, Self::transfer_direction(device));
        let snapshot_round = MigrationRound {
            round: 1,
            flows,
            bytes,
            duration: transfer_done.duration_since(now),
        };
        self.events
            .schedule(transfer_done, RuntimeEvent::MigrationRound);
        self.pre_copy = Some(PreCopyInFlight {
            protocol,
            nf_index: index,
            from,
            to: device,
            started_at: now,
            target,
            rounds: vec![snapshot_round],
            total_bytes: bytes,
            total_flows: flows,
            transfer,
            round_booked_at: now,
        });

        // Initiation record: no blackout yet, nothing frozen. The completed
        // report (with rounds, residual and real blackout) lands in
        // `RunOutcome::migrations` at handover.
        Ok(MigrationReport {
            nf,
            from,
            to: device,
            mode: MigrationMode::PreCopy,
            started_at: now,
            paused_at: now,
            completed_at: now,
            state_size: bytes,
            flows_transferred: flows,
            residual_dirty_flows: flows,
            rounds: vec![snapshot_round],
            packets_dropped: 0,
        })
    }

    /// One pre-copy round finished its transfer at `now`. The machine
    /// decides what happens next from the dirty count: export another round
    /// ([`Phase::DirtyRound`]), freeze the residual and hand over
    /// ([`Phase::Freeze`]), or — at the round cap under
    /// [`crate::migration::DivergencePolicy::Abort`] — roll the whole
    /// migration back ([`Phase::Aborted`]). This function only interprets
    /// the machine's actions; the transition logic itself lives in
    /// `pam-protocol`, where it is exhaustively model-checked.
    fn on_migration_round(&mut self, now: SimTime) {
        let Some(mut pre_copy) = self.pre_copy.take() else {
            // The migration was aborted; the stale round event is a no-op.
            return;
        };
        match self.pcie.poll_transfer(pre_copy.transfer, now) {
            TransferStatus::InFlight(eta) => {
                // Foreground DMA traffic stole link bandwidth since the round
                // was admitted (fair-sharing model only): the provisional
                // arrival this event fired at is stale. Re-plan the round's
                // completion at the link's revised arrival instant.
                self.events.schedule(eta, RuntimeEvent::MigrationRound);
                self.pre_copy = Some(pre_copy);
                return;
            }
            TransferStatus::Complete => {
                // The round really delivered at `now`. Under fair sharing the
                // datapath may have stretched it past the duration booked at
                // admission; under FIFO-fixed this rewrite is the identity.
                if let Some(round) = pre_copy.rounds.last_mut() {
                    round.duration = now.duration_since(pre_copy.round_booked_at);
                }
            }
        }
        let index = pre_copy.nf_index;
        let dirty = self.instances[index].nf.dirty_flow_count();
        let Ok((protocol, actions)) = pre_copy
            .protocol
            .step(HandoverEvent::RoundDelivered { dirty })
        else {
            // Unreachable while `pre_copy` is only stored in a serving-round
            // phase; dropping it (= abort) is the safe response regardless.
            self.aborted_migrations += 1;
            return;
        };
        pre_copy.protocol = protocol;

        if actions.contains(HandoverAction::DiscardTarget) {
            // Round cap without convergence under the abort policy: discard
            // the staged target. The source never paused and stays
            // authoritative, so the blackout bound survives divergence.
            debug_assert_eq!(protocol.phase, Phase::Aborted);
            self.aborted_migrations += 1;
            return;
        }

        debug_assert!(actions.contains(HandoverAction::ExportDirty));
        let delta = self.instances[index].nf.export_dirty_state();
        self.instances[index].nf.clear_dirty();
        let bytes = state_transfer_size(
            delta.estimated_size,
            self.config.state_overhead_per_flow,
            dirty,
        );
        if pre_copy.target.import_dirty_state(delta).is_err() {
            // A corrupt delta aborts the migration: the source was never
            // paused and stays authoritative; the staged target is dropped.
            let rollback = pre_copy.protocol.step(HandoverEvent::DeltaRejected);
            debug_assert!(matches!(
                rollback,
                Ok((
                    HandoverState {
                        phase: Phase::Aborted,
                        ..
                    },
                    _
                ))
            ));
            self.aborted_migrations += 1;
            return;
        }
        // The freeze round keeps this arrival as committed (the contention
        // known now is priced in; the source is paused, so re-planning it
        // would only trade blackout accounting for event churn). A dirty
        // round's token is polled — and re-planned — when the event fires.
        let (transfer, transfer_done) =
            self.pcie
                .begin_transfer(now, bytes, Self::transfer_direction(pre_copy.to));
        pre_copy.transfer = transfer;
        pre_copy.round_booked_at = now;
        pre_copy.rounds.push(MigrationRound {
            round: pre_copy.rounds.len() as u32 + 1,
            flows: dirty,
            bytes,
            duration: transfer_done.duration_since(now),
        });
        pre_copy.total_bytes = pre_copy.total_bytes.saturating_add(bytes);
        pre_copy.total_flows += dirty;

        if !actions.contains(HandoverAction::PauseSource) {
            // Another serving round: the machine stayed in a dirty round.
            debug_assert!(matches!(pre_copy.protocol.phase, Phase::DirtyRound(_)));
            self.events
                .schedule(transfer_done, RuntimeEvent::MigrationRound);
            self.pre_copy = Some(pre_copy);
            return;
        }

        // Final freeze: the residual delta exported above is the last state
        // to move; the source pauses from `now` until the transfer (plus the
        // control-plane overhead) completes, then the target takes over.
        debug_assert_eq!(pre_copy.protocol.phase, Phase::Freeze);
        let completed_at = transfer_done + self.config.migration_control_overhead;
        let (protocol, actions) = match pre_copy.protocol.step(HandoverEvent::FreezeDelivered) {
            Ok(ok) => ok,
            Err(_) => {
                // Unreachable: `Freeze` always accepts `FreezeDelivered`.
                self.aborted_migrations += 1;
                return;
            }
        };
        debug_assert_eq!(protocol.phase, Phase::Done);
        debug_assert!(actions.contains(HandoverAction::ActivateTarget));
        let instance = &mut self.instances[index];
        let mut target = pre_copy.target;
        target.clear_dirty();
        instance.nf = target;
        instance.device = pre_copy.to;
        instance.id = self.id_gen.next_id();
        instance.paused_until = Some(completed_at);

        self.migrations.push(MigrationReport {
            nf: instance.nf_id,
            from: pre_copy.from,
            to: pre_copy.to,
            mode: MigrationMode::PreCopy,
            started_at: pre_copy.started_at,
            paused_at: now,
            completed_at,
            state_size: pre_copy.total_bytes,
            flows_transferred: pre_copy.total_flows,
            residual_dirty_flows: dirty,
            rounds: pre_copy.rounds,
            packets_dropped: 0,
        });
        // After the report is recorded, so flushed-batch drops attribute to it.
        self.flush_stage_for_pause(index, now, completed_at);
    }

    /// Aborts the in-flight pre-copy migration, if any: the staged target
    /// and every copied round are discarded and the source — which never
    /// stopped serving — stays authoritative. This is the machine's
    /// voluntary-abort arc, legal in any serving-round phase; once the
    /// engine freezes (which happens atomically with the handover here) the
    /// migration can no longer be aborted. Returns the position that was
    /// migrating, or an error when nothing is in flight.
    pub fn abort_migration(&mut self, _now: SimTime) -> Result<NfId> {
        let Some(pre_copy) = self.pre_copy.take() else {
            return Err(PamError::state(
                "no pre-copy migration is in flight".to_owned(),
            ));
        };
        let nf = self.instances[pre_copy.nf_index].nf_id;
        let (protocol, actions) = pre_copy
            .protocol
            .step(HandoverEvent::Abort)
            .map_err(|e| PamError::state(e.to_string()))?;
        debug_assert_eq!(protocol.phase, Phase::Aborted);
        debug_assert!(actions.contains(HandoverAction::DiscardTarget));
        // Dropping `pre_copy` discards the staged target; the already
        // scheduled MigrationRound event becomes a stale no-op.
        self.aborted_migrations += 1;
        Ok(nf)
    }

    /// Injects a *target crash* into the in-flight pre-copy migration, if
    /// any: the machine takes its [`HandoverEvent::TargetCrash`] arc, the
    /// staged target and every copied round are discarded, and the source —
    /// which never stopped serving, since `pre_copy` is only parked in the
    /// serving-round phases (`Snapshot`/`DirtyRound`) — stays authoritative
    /// with every acked flow intact. Fault injection calls this when the
    /// server hosting the staged target dies mid-copy. Returns the position
    /// that was migrating, or an error when nothing is in flight.
    pub fn crash_target(&mut self, _now: SimTime) -> Result<NfId> {
        let Some(pre_copy) = self.pre_copy.take() else {
            return Err(PamError::state(
                "no pre-copy migration is in flight".to_owned(),
            ));
        };
        let nf = self.instances[pre_copy.nf_index].nf_id;
        let (protocol, actions) = pre_copy
            .protocol
            .step(HandoverEvent::TargetCrash)
            .map_err(|e| PamError::state(e.to_string()))?;
        debug_assert_eq!(protocol.phase, Phase::Aborted);
        debug_assert!(actions.contains(HandoverAction::DiscardTarget));
        // The source was never frozen in these phases, so no ResumeSource is
        // required: the freeze/stop-and-copy path runs inline and atomically.
        debug_assert!(!actions.contains(HandoverAction::ResumeSource));
        self.aborted_migrations += 1;
        self.target_crashes += 1;
        Ok(nf)
    }

    /// Migrations aborted specifically by [`ChainRuntime::crash_target`]
    /// (a subset of [`RunOutcome::aborted_migrations`]).
    pub fn target_crashes(&self) -> u64 {
        self.target_crashes
    }

    /// Fault injection: takes this runtime's PCIe link down for `down_for`
    /// starting at `now`. See [`PcieLink::flap`].
    pub fn link_flap(&mut self, now: SimTime, down_for: SimDuration) {
        self.pcie.flap(now, down_for);
    }

    /// Fault injection: brings this runtime's PCIe link back from a flap at
    /// `now` without the pre-flap FIFO watermark. See
    /// [`PcieLink::recover_transport`].
    pub fn link_recover(&mut self, now: SimTime) {
        self.pcie.recover_transport(now);
    }

    /// Fault injection: scales this runtime's PCIe bandwidth by `factor`
    /// from `now` on (`1.0` restores nominal). See
    /// [`PcieLink::set_capacity_factor`].
    pub fn link_set_capacity_factor(&mut self, now: SimTime, factor: f64) {
        self.pcie.set_capacity_factor(now, factor);
    }

    /// The instant this runtime's PCIe link finishes its current flap
    /// (`SimTime::ZERO` when the link is up). Overlapping flaps extend it,
    /// so a recovery scheduled by an earlier flap can check whether a later
    /// flap superseded it. See [`PcieLink::down_until`].
    pub fn link_down_until(&self) -> SimTime {
        self.pcie.down_until()
    }

    /// True while a pre-copy migration is still iterating or any instance is
    /// paused in a blackout at `now`.
    pub fn migration_in_progress(&self, now: SimTime) -> bool {
        self.pre_copy.is_some() || self.instances.iter().any(|i| i.is_paused(now))
    }

    /// True while the pre-copy engine is iterating (its one-at-a-time rule
    /// refuses every other migration until the handover lands). A pending
    /// stop-and-copy blackout does *not* set this: stop-and-copy moves of
    /// other instances may still proceed.
    pub fn pre_copy_in_progress(&self) -> bool {
        self.pre_copy.is_some()
    }

    /// The protocol phase of the in-flight pre-copy migration, if any. Fault
    /// injection uses this to tell which crash arc a kill at `now` exercises
    /// (only the serving-round phases — `Snapshot` and `DirtyRound` — are
    /// ever parked here; freeze and handover run atomically inline).
    pub fn pre_copy_phase(&self) -> Option<Phase> {
        self.pre_copy.as_ref().map(|p| p.protocol.phase)
    }

    /// Estimates what migrating `nf` to `device` would cost under the
    /// configured mode *without* performing it. Under pre-copy the
    /// blackout-critical set is the expected residual dirty set (bounded by
    /// the convergence knob), not the total flow count — the orchestrator's
    /// cost model uses exactly this.
    pub fn estimate_migration(&self, nf: NfId, device: Device) -> Result<MigrationEstimate> {
        let index = nf.index();
        if index >= self.instances.len() {
            return Err(PamError::UnknownNf(nf));
        }
        let instance = &self.instances[index];
        if instance.device == device {
            return Err(PamError::state(format!("{nf} already runs on {device}")));
        }
        let flows = instance.nf.flow_count();
        let mode = self.config.migration.mode;
        let frozen_flows = match mode {
            MigrationMode::StopAndCopy => flows,
            MigrationMode::PreCopy => flows.min(self.config.migration.convergence_flows),
        };
        Ok(MigrationEstimate::new(
            mode,
            flows,
            frozen_flows,
            self.config.state_overhead_per_flow,
            self.pcie.config().bandwidth,
            self.pcie.crossing_latency(),
            self.config.migration_control_overhead,
        ))
    }

    /// Starts recording every delivered packet's `(id, egress flow)` pair in
    /// delivery order (see [`ChainRuntime::egress_log`]).
    pub fn record_egress(&mut self) {
        self.egress_log = Some(Vec::new());
    }

    /// The recorded egress log (empty unless [`ChainRuntime::record_egress`]
    /// was called).
    pub fn egress_log(&self) -> &[(u64, u64)] {
        self.egress_log.as_deref().unwrap_or(&[])
    }

    /// Publishes a metrics snapshot to the registry (also called
    /// automatically every `metrics_interval` of packet time).
    pub fn publish_metrics(&mut self) {
        let now = self.now;
        let elapsed = now.duration_since(self.last_publish_at).as_secs_f64();
        let (offered, delivered) = if elapsed > 0.0 {
            (
                Gbps::from_bytes_per_sec(self.bytes_injected_since_publish as f64 / elapsed),
                Gbps::from_bytes_per_sec(self.bytes_delivered_since_publish as f64 / elapsed),
            )
        } else {
            (Gbps::ZERO, Gbps::ZERO)
        };

        let mut metrics = ChainMetrics {
            updated_at: now,
            offered_load: offered,
            delivered_load: delivered,
            mean_latency: self.latency_window.mean(),
            total_drops: self.drops_overload + self.drops_policy + self.drops_migration,
            total_delivered: self.delivered,
            ..ChainMetrics::default()
        };
        metrics.set_utilisation(Device::SmartNic, self.nic.utilisation(now));
        metrics.set_utilisation(Device::Cpu, self.cpu.utilisation(now));
        self.registry.publish(metrics);

        self.bytes_injected_since_publish = 0;
        self.bytes_delivered_since_publish = 0;
        self.last_publish_at = now;
        self.nic.start_window(now);
        self.cpu.start_window(now);
        self.next_metrics_at = now + self.config.metrics_interval;
    }

    /// Starts a fresh measurement window at `now` (latency and throughput
    /// figures reported by [`ChainRuntime::measure`] cover only this window).
    pub fn start_measurement(&mut self, now: SimTime) {
        self.latency_window.reset();
        self.delivered_meter.start_window(now);
        self.offered_meter.start_window(now);
    }

    /// Reports the current measurement window, ending at `now`.
    pub fn measure(&self, now: SimTime) -> WindowReport {
        WindowReport {
            mean_latency: self.latency_window.mean(),
            p99_latency: self.latency_window.p99(),
            delivered: self.delivered_meter.throughput(now),
            offered: self.offered_meter.throughput(now),
            delivered_packets: self.delivered_meter.packets(),
        }
    }

    /// Aggregate results over the whole run so far.
    pub fn outcome(&self) -> RunOutcome {
        let elapsed = self.now.as_secs_f64();
        let delivered_throughput = if elapsed > 0.0 {
            Gbps::from_bytes_per_sec(self.delivered_bytes as f64 / elapsed)
        } else {
            Gbps::ZERO
        };
        RunOutcome {
            injected: self.injected,
            delivered: self.delivered,
            drops_overload: self.drops_overload,
            drops_policy: self.drops_policy,
            drops_migration: self.drops_migration,
            mean_latency: self.latency_total.mean(),
            p50_latency: self.latency_total.p50(),
            p99_latency: self.latency_total.p99(),
            delivered_throughput,
            pcie_crossings: self.pcie.stats().total_crossings(),
            migrations: self.migrations.clone(),
            aborted_migrations: self.aborted_migrations,
        }
    }

    /// The PCIe link statistics (crossings per direction, bytes).
    pub fn pcie_stats(&self) -> pam_sim::PcieLinkStats {
        self.pcie.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_core::StrategyKind;
    use pam_traffic::{
        ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TraceConfig, TrafficSchedule,
    };
    use pam_types::{ByteSize, Endpoint};

    fn figure1_runtime(placement: &Placement) -> ChainRuntime {
        ChainRuntime::new(
            ServiceChainSpec::figure1(),
            placement,
            RuntimeConfig::evaluation_default(),
        )
        .unwrap()
    }

    fn trace(load: f64, millis: u64, seed: u64) -> TraceSynthesizer {
        TraceSynthesizer::new(TraceConfig {
            sizes: PacketSizeProfile::Fixed(ByteSize::bytes(512)),
            flows: FlowGeneratorConfig {
                flow_count: 500,
                zipf_exponent: 1.0,
                tcp_fraction: 0.8,
            },
            arrival: ArrivalProcess::Cbr,
            schedule: TrafficSchedule::constant(Gbps::new(load), SimDuration::from_millis(millis)),
            seed,
        })
    }

    #[test]
    fn placement_and_spec_length_must_agree() {
        let placement = Placement::all_on(Device::SmartNic, 2);
        let err = ChainRuntime::new(
            ServiceChainSpec::figure1(),
            &placement,
            RuntimeConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PamError::InvalidConfig(_)));
    }

    #[test]
    fn light_load_delivers_everything_with_stable_latency() {
        let placement = Placement::figure1_initial();
        let mut runtime = figure1_runtime(&placement);
        let mut t = trace(1.0, 5, 1);
        runtime.run_to_completion(&mut t);
        let outcome = runtime.outcome();
        assert_eq!(outcome.injected, outcome.delivered);
        assert_eq!(outcome.drops_overload, 0);
        // Latency is in the expected few-hundred-microsecond band:
        // 4 hops of ~32-41 us plus 3 crossings of 22 us.
        let mean = outcome.mean_latency.as_micros_f64();
        assert!((150.0..350.0).contains(&mean), "mean latency {mean} us");
        // Delivered throughput tracks the offered 1 Gbps.
        assert!((outcome.delivered_throughput.as_gbps() - 1.0).abs() < 0.1);
        // Three crossings per packet.
        assert_eq!(outcome.pcie_crossings, 3 * outcome.delivered);
    }

    #[test]
    fn measured_utilisation_matches_the_analytical_model() {
        let placement = Placement::figure1_initial();
        let mut runtime = figure1_runtime(&placement);
        let mut t = trace(1.5, 10, 2);
        runtime.run_to_completion(&mut t);
        runtime.publish_metrics();
        let registry = runtime.registry();
        // Average the published NIC utilisation over the run.
        let history = registry.utilisation_history(Device::SmartNic);
        let measured: f64 =
            history.iter().map(|(_, u)| *u).sum::<f64>() / history.len().max(1) as f64;
        // Analytical: 1.5 × (1/10 + 1/3.2 + 0.25/2) = 0.806.
        let chain = runtime.chain_model();
        let analytical = pam_core::ResourceModel::new(&chain, &placement, Gbps::new(1.5))
            .device_utilisation(Device::SmartNic)
            .value();
        assert!(
            (measured - analytical).abs() < 0.08,
            "measured {measured:.3} vs analytical {analytical:.3}"
        );
    }

    #[test]
    fn overload_causes_drops_and_caps_delivered_throughput() {
        let placement = Placement::figure1_initial();
        let mut runtime = figure1_runtime(&placement);
        let mut t = trace(2.6, 10, 3);
        runtime.run_to_completion(&mut t);
        let outcome = runtime.outcome();
        assert!(outcome.drops_overload > 0, "expected overload drops");
        // The NIC sustains at most ~1.86 Gbps under the figure-1 profiles.
        let delivered = outcome.delivered_throughput.as_gbps();
        assert!(delivered < 2.1, "delivered {delivered}");
        assert!(delivered > 1.5, "delivered {delivered}");
    }

    #[test]
    fn live_migration_moves_state_and_preserves_traffic() {
        let placement = Placement::figure1_initial();
        let mut runtime = figure1_runtime(&placement);
        let mut t = trace(1.5, 20, 4);
        // Warm up so the monitor has flow state.
        runtime.run_until(&mut t, SimTime::from_millis(5));
        let flows_before = runtime.instances()[1].nf.flow_count();
        assert!(flows_before > 0);

        let report = runtime
            .live_migrate(NfId::new(2), Device::Cpu, runtime.now())
            .unwrap();
        assert_eq!(report.from, Device::SmartNic);
        assert_eq!(report.to, Device::Cpu);
        assert!(report.blackout() > SimDuration::ZERO);

        // The placement reflects the move and traffic keeps flowing.
        assert_eq!(
            runtime.placement().device_of(NfId::new(2)).unwrap(),
            Device::Cpu
        );
        runtime.run_to_completion(&mut t);
        let outcome = runtime.outcome();
        assert!(outcome.delivered > 0);
        assert_eq!(outcome.migrations.len(), 1);

        // Migrating to the same device or an unknown position is refused.
        assert!(runtime
            .live_migrate(NfId::new(2), Device::Cpu, runtime.now())
            .is_err());
        assert!(runtime
            .live_migrate(NfId::new(9), Device::Cpu, runtime.now())
            .is_err());
    }

    #[test]
    fn pre_copy_migration_converges_and_shrinks_the_blackout() {
        use crate::migration::{MigrationConfig, MigrationMode};

        let run = |mode: MigrationMode| {
            let config = RuntimeConfig::evaluation_default().with_migration(MigrationConfig {
                mode,
                max_precopy_rounds: 8,
                convergence_flows: 16,
                ..MigrationConfig::default()
            });
            let mut runtime = ChainRuntime::new(
                ServiceChainSpec::figure1(),
                &Placement::figure1_initial(),
                config,
            )
            .unwrap();
            let mut t = trace(1.5, 20, 4);
            runtime.run_until(&mut t, SimTime::from_millis(5));
            runtime
                .live_migrate(NfId::new(2), Device::Cpu, runtime.now())
                .unwrap();
            runtime.run_to_completion(&mut t);
            runtime.outcome()
        };

        let stop = run(MigrationMode::StopAndCopy);
        let pre = run(MigrationMode::PreCopy);
        assert_eq!(stop.migrations.len(), 1);
        assert_eq!(pre.migrations.len(), 1, "pre-copy handover completed");

        let stop_report = &stop.migrations[0];
        let pre_report = &pre.migrations[0];
        assert_eq!(pre_report.mode, MigrationMode::PreCopy);
        assert_eq!(pre_report.to, Device::Cpu);
        assert!(
            pre_report.rounds.len() >= 2,
            "snapshot + at least one delta"
        );
        assert!(
            pre_report.residual_dirty_flows <= 16,
            "converged to the configured bound: {} flows frozen",
            pre_report.residual_dirty_flows
        );
        assert!(
            pre_report.blackout() < stop_report.blackout(),
            "pre-copy blackout {} must beat stop-and-copy {}",
            pre_report.blackout(),
            stop_report.blackout()
        );
        assert!(pre_report.total_duration() >= pre_report.blackout());
        // The paused window starts strictly after the snapshot round.
        assert!(pre_report.paused_at > pre_report.started_at);
        // Both runs deliver traffic after the handover.
        assert!(pre.delivered > 0);
    }

    #[test]
    fn divergence_abort_rolls_back_instead_of_force_freezing() {
        use crate::migration::{DivergencePolicy, MigrationConfig, MigrationMode};

        // Convergence is unreachable (bound 0 under live traffic), so the
        // round cap decides: ForceFreeze hands over anyway, Abort rolls the
        // migration back. The model checker proves the abort arc keeps the
        // blackout bounded; this pins the engine to the same behaviour.
        let run = |policy: DivergencePolicy| {
            let config = RuntimeConfig::evaluation_default().with_migration(MigrationConfig {
                mode: MigrationMode::PreCopy,
                max_precopy_rounds: 2,
                convergence_flows: 0,
                on_divergence: policy,
            });
            let mut runtime = ChainRuntime::new(
                ServiceChainSpec::figure1(),
                &Placement::figure1_initial(),
                config,
            )
            .unwrap();
            let mut t = trace(1.5, 20, 4);
            runtime.run_until(&mut t, SimTime::from_millis(5));
            runtime
                .live_migrate(NfId::new(2), Device::Cpu, runtime.now())
                .unwrap();
            runtime.run_to_completion(&mut t);
            let device = runtime.instances()[2].device;
            (runtime.outcome(), device)
        };

        let (forced, forced_device) = run(DivergencePolicy::ForceFreeze);
        assert_eq!(forced.migrations.len(), 1, "force-freeze hands over");
        assert_eq!(forced.aborted_migrations, 0);
        assert_eq!(forced_device, Device::Cpu);

        let (aborted, aborted_device) = run(DivergencePolicy::Abort);
        assert_eq!(aborted.migrations.len(), 0, "abort never hands over");
        assert_eq!(aborted.aborted_migrations, 1);
        assert_eq!(aborted_device, Device::SmartNic, "source stays put");
        // The source never paused: no packet ever saw a blackout.
        assert_eq!(aborted.drops_migration, 0);
        // Rollback does not disturb the data plane: the aborted run delivers
        // exactly what it injected minus policy/overload drops.
        assert!(aborted.delivered > 0);
    }

    #[test]
    fn abort_migration_discards_the_staged_target_and_frees_the_engine() {
        use crate::migration::{MigrationConfig, MigrationMode};

        let config = RuntimeConfig::evaluation_default().with_migration(MigrationConfig {
            mode: MigrationMode::PreCopy,
            max_precopy_rounds: 8,
            convergence_flows: 0,
            ..MigrationConfig::default()
        });
        let mut runtime = ChainRuntime::new(
            ServiceChainSpec::figure1(),
            &Placement::figure1_initial(),
            config,
        )
        .unwrap();
        // Nothing in flight yet: abort must refuse.
        assert!(runtime.abort_migration(runtime.now()).is_err());

        let mut t = trace(1.5, 20, 4);
        runtime.run_until(&mut t, SimTime::from_millis(5));
        runtime
            .live_migrate(NfId::new(2), Device::Cpu, runtime.now())
            .unwrap();
        assert!(runtime.pre_copy_in_progress());

        let nf = runtime.abort_migration(runtime.now()).unwrap();
        assert_eq!(nf, NfId::new(2));
        assert!(!runtime.pre_copy_in_progress());

        // The stale MigrationRound event must be a no-op, and the engine is
        // free for a fresh migration immediately.
        runtime
            .live_migrate(NfId::new(2), Device::Cpu, runtime.now())
            .unwrap();
        runtime.run_to_completion(&mut t);
        let outcome = runtime.outcome();
        assert_eq!(outcome.aborted_migrations, 1);
        assert_eq!(outcome.migrations.len(), 1, "the retry handed over");
        assert_eq!(runtime.instances()[2].device, Device::Cpu);
    }

    #[test]
    fn target_crash_in_snapshot_phase_rolls_back_with_no_lost_state() {
        use crate::migration::{MigrationConfig, MigrationMode};
        use pam_protocol::Phase;

        let config = RuntimeConfig::evaluation_default().with_migration(MigrationConfig {
            mode: MigrationMode::PreCopy,
            max_precopy_rounds: 8,
            convergence_flows: 0,
            ..MigrationConfig::default()
        });
        let mut runtime = ChainRuntime::new(
            ServiceChainSpec::figure1(),
            &Placement::figure1_initial(),
            config,
        )
        .unwrap();
        // Nothing in flight yet: a crash injection must refuse.
        assert!(runtime.crash_target(runtime.now()).is_err());

        let mut t = trace(1.5, 20, 4);
        runtime.run_until(&mut t, SimTime::from_millis(5));
        let before = runtime.stateful_flow_entries();
        runtime
            .live_migrate(NfId::new(2), Device::Cpu, runtime.now())
            .unwrap();
        // Immediately after live_migrate the snapshot round is in flight.
        assert_eq!(runtime.pre_copy_phase(), Some(Phase::Snapshot));

        let nf = runtime.crash_target(runtime.now()).unwrap();
        assert_eq!(nf, NfId::new(2));
        assert!(!runtime.pre_copy_in_progress());
        assert_eq!(runtime.target_crashes(), 1);
        // The source never paused and keeps every acked flow entry.
        assert_eq!(runtime.stateful_flow_entries(), before);
        assert_eq!(runtime.instances()[2].device, Device::SmartNic);

        runtime.run_to_completion(&mut t);
        let outcome = runtime.outcome();
        assert_eq!(outcome.aborted_migrations, 1);
        assert_eq!(outcome.migrations.len(), 0, "no handover ever landed");
        assert_eq!(outcome.drops_migration, 0, "no blackout from the crash");
    }

    #[test]
    fn target_crash_in_dirty_round_phase_rolls_back_and_frees_the_engine() {
        use crate::migration::{MigrationConfig, MigrationMode};
        use pam_protocol::Phase;

        let config = RuntimeConfig::evaluation_default().with_migration(MigrationConfig {
            mode: MigrationMode::PreCopy,
            max_precopy_rounds: 64,
            convergence_flows: 0,
            ..MigrationConfig::default()
        });
        let mut runtime = ChainRuntime::new(
            ServiceChainSpec::figure1(),
            &Placement::figure1_initial(),
            config,
        )
        .unwrap();
        let mut t = trace(1.5, 20, 4);
        runtime.run_until(&mut t, SimTime::from_millis(5));
        runtime
            .live_migrate(NfId::new(2), Device::Cpu, runtime.now())
            .unwrap();
        // Drive the engine past the snapshot round: live traffic with a
        // convergence bound of 0 keeps it iterating dirty rounds.
        let mut probe = runtime.now();
        while runtime.pre_copy_phase() == Some(Phase::Snapshot) {
            probe += SimDuration::from_micros(50);
            runtime.run_until(&mut t, probe);
        }
        assert!(
            matches!(runtime.pre_copy_phase(), Some(Phase::DirtyRound(_))),
            "expected a dirty round, got {:?}",
            runtime.pre_copy_phase()
        );
        let before = runtime.stateful_flow_entries();

        let nf = runtime.crash_target(runtime.now()).unwrap();
        assert_eq!(nf, NfId::new(2));
        assert_eq!(runtime.target_crashes(), 1);
        assert_eq!(runtime.stateful_flow_entries(), before, "no lost state");

        // The stale MigrationRound event is a no-op and the engine is free:
        // a fresh migration succeeds right away.
        runtime
            .live_migrate(NfId::new(2), Device::Cpu, runtime.now())
            .unwrap();
        runtime.run_to_completion(&mut t);
        let outcome = runtime.outcome();
        assert_eq!(outcome.aborted_migrations, 1);
        assert_eq!(runtime.target_crashes(), 1, "the retry was crash-free");
    }

    #[test]
    fn link_fault_delegates_reach_the_pcie_link() {
        let mut runtime = figure1_runtime(&Placement::figure1_initial());
        runtime.link_flap(SimTime::ZERO, SimDuration::from_micros(100));
        runtime.link_set_capacity_factor(SimTime::ZERO, 0.5);
        let mut t = trace(1.0, 4, 7);
        runtime.run_until(&mut t, SimTime::from_micros(50));
        runtime.link_recover(SimTime::from_micros(100));
        runtime.link_set_capacity_factor(SimTime::from_micros(100), 1.0);
        runtime.run_to_completion(&mut t);
        // The faults only delay traffic; nothing is lost outright.
        let outcome = runtime.outcome();
        assert_eq!(
            outcome.injected,
            outcome.delivered + outcome.drops_overload + outcome.drops_policy
        );
    }

    #[test]
    fn pre_copy_hands_over_the_exact_source_state() {
        use crate::migration::{MigrationConfig, MigrationMode};

        // Two identical runtimes over the same trace; one migrates the
        // monitor with pre-copy, the other never migrates. After draining,
        // the migrated monitor's flow statistics must equal the unmigrated
        // one's (timestamps included: the monitor sees the same packets at
        // the same service-completion times only if nothing was dropped, so
        // compare the mode-invariant packet/byte counters).
        let config = RuntimeConfig::evaluation_default().with_migration(MigrationConfig {
            mode: MigrationMode::PreCopy,
            max_precopy_rounds: 8,
            convergence_flows: 16,
            ..MigrationConfig::default()
        });
        let mut migrated = ChainRuntime::new(
            ServiceChainSpec::figure1(),
            &Placement::figure1_initial(),
            config,
        )
        .unwrap();
        let mut baseline = figure1_runtime(&Placement::figure1_initial());

        let mut t1 = trace(1.2, 10, 9);
        let mut t2 = trace(1.2, 10, 9);
        migrated.run_until(&mut t1, SimTime::from_millis(4));
        baseline.run_until(&mut t2, SimTime::from_millis(4));
        migrated
            .live_migrate(NfId::new(1), Device::Cpu, migrated.now())
            .unwrap();
        migrated.run_to_completion(&mut t1);
        baseline.run_to_completion(&mut t2);

        assert_eq!(migrated.outcome().drops_migration, 0, "no blackout drops");
        let migrated_state = migrated.instances()[1].nf.export_state();
        let baseline_state = baseline.instances()[1].nf.export_state();
        let uint = |value: &serde_json::Value| -> u64 {
            match value {
                serde_json::Value::Number(n) => n.as_u64().expect("non-negative integer"),
                other => panic!("expected a number, got {}", other.kind()),
            }
        };
        let flows = |state: &pam_nf::NfState| -> Vec<(u64, u64, u64)> {
            let object = state.data.as_object().unwrap();
            let mut rows: Vec<(u64, u64, u64)> = object
                .get("flows")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|pair| {
                    let entry = pair.as_array().unwrap();
                    let stats = entry[1].as_object().unwrap();
                    (
                        uint(&entry[0]),
                        uint(stats.get("packets").unwrap()),
                        uint(stats.get("bytes").unwrap()),
                    )
                })
                .collect();
            rows.sort_unstable();
            rows
        };
        assert_eq!(flows(&migrated_state), flows(&baseline_state));
    }

    #[test]
    fn concurrent_migrations_are_refused_while_pre_copy_is_in_flight() {
        use crate::migration::MigrationMode;

        let config =
            RuntimeConfig::evaluation_default().with_migration_mode(MigrationMode::PreCopy);
        let mut runtime = ChainRuntime::new(
            ServiceChainSpec::figure1(),
            &Placement::figure1_initial(),
            config,
        )
        .unwrap();
        let mut t = trace(1.5, 10, 11);
        runtime.run_until(&mut t, SimTime::from_millis(3));
        runtime
            .live_migrate(NfId::new(2), Device::Cpu, runtime.now())
            .unwrap();
        assert!(runtime.migration_in_progress(runtime.now()));
        // Any second migration — same or different position — is refused
        // while the engine is iterating.
        assert!(runtime
            .live_migrate(NfId::new(1), Device::Cpu, runtime.now())
            .is_err());
        runtime.run_to_completion(&mut t);
        assert_eq!(runtime.outcome().migrations.len(), 1);
    }

    #[test]
    fn migration_estimates_follow_the_mode() {
        use crate::migration::MigrationMode;

        let mut stop = figure1_runtime(&Placement::figure1_initial());
        let mut t = trace(1.5, 10, 12);
        stop.run_until(&mut t, SimTime::from_millis(5));
        let full = stop.estimate_migration(NfId::new(1), Device::Cpu).unwrap();
        assert_eq!(full.mode, MigrationMode::StopAndCopy);
        assert_eq!(full.frozen_flows, full.flows);
        assert!(full.flows > 64, "warm-up tracked many flows");

        let config =
            RuntimeConfig::evaluation_default().with_migration_mode(MigrationMode::PreCopy);
        let mut pre = ChainRuntime::new(
            ServiceChainSpec::figure1(),
            &Placement::figure1_initial(),
            config,
        )
        .unwrap();
        let mut t = trace(1.5, 10, 12);
        pre.run_until(&mut t, SimTime::from_millis(5));
        let residual = pre.estimate_migration(NfId::new(1), Device::Cpu).unwrap();
        assert_eq!(residual.mode, MigrationMode::PreCopy);
        assert_eq!(residual.frozen_flows, 64, "bounded by convergence knob");
        assert!(residual.blackout < full.blackout);
        // Estimating an in-place "move" is refused.
        assert!(pre
            .estimate_migration(NfId::new(1), Device::SmartNic)
            .is_err());
        assert!(pre.estimate_migration(NfId::new(9), Device::Cpu).is_err());
    }

    #[test]
    fn naive_migration_adds_two_crossings_per_packet_pam_adds_none() {
        // Run the same light trace under the three placements and compare
        // per-packet crossing counts.
        let original = Placement::figure1_initial();
        let mut naive = original.clone();
        naive.set(NfId::new(1), Device::Cpu).unwrap();
        let mut pam = original.clone();
        pam.set(NfId::new(2), Device::Cpu).unwrap();

        let crossings_per_packet = |placement: &Placement| {
            let mut runtime = figure1_runtime(placement);
            let mut t = trace(1.0, 2, 5);
            runtime.run_to_completion(&mut t);
            let outcome = runtime.outcome();
            outcome.pcie_crossings as f64 / outcome.delivered as f64
        };
        assert_eq!(crossings_per_packet(&original), 3.0);
        assert_eq!(crossings_per_packet(&naive), 5.0);
        assert_eq!(crossings_per_packet(&pam), 3.0);
    }

    #[test]
    fn figure2_latency_ordering_holds_in_the_packet_level_simulation() {
        let original = Placement::figure1_initial();
        let mut naive = original.clone();
        naive.set(NfId::new(1), Device::Cpu).unwrap();
        let mut pam = original.clone();
        pam.set(NfId::new(2), Device::Cpu).unwrap();

        let mean_latency = |placement: &Placement| {
            let mut runtime = figure1_runtime(placement);
            let mut t = trace(1.5, 5, 6);
            runtime.run_to_completion(&mut t);
            runtime.outcome().mean_latency
        };
        let l_orig = mean_latency(&original);
        let l_naive = mean_latency(&naive);
        let l_pam = mean_latency(&pam);
        assert!(l_naive > l_pam, "naive {l_naive} should exceed pam {l_pam}");
        let reduction =
            (l_naive.as_nanos() as f64 - l_pam.as_nanos() as f64) / l_naive.as_nanos() as f64;
        assert!(
            (0.08..0.35).contains(&reduction),
            "latency reduction {reduction}"
        );
        let drift =
            (l_pam.as_nanos() as f64 - l_orig.as_nanos() as f64).abs() / l_orig.as_nanos() as f64;
        assert!(drift < 0.08, "PAM vs original drift {drift}");
    }

    #[test]
    fn metrics_are_published_periodically() {
        let placement = Placement::figure1_initial();
        let mut runtime = figure1_runtime(&placement);
        let registry = runtime.registry();
        let mut t = trace(1.0, 5, 7);
        runtime.run_to_completion(&mut t);
        let snapshot = registry.snapshot();
        assert!(snapshot.updated_at > SimTime::ZERO);
        assert!(snapshot.offered_load.as_gbps() > 0.5);
        assert!(registry.utilisation_history(Device::SmartNic).len() >= 3);
        assert!(registry.latency_histogram().count() > 0);
    }

    #[test]
    fn measurement_windows_isolate_phases() {
        let placement = Placement::figure1_initial();
        let mut runtime = figure1_runtime(&placement);
        let mut t = trace(1.0, 10, 8);
        runtime.run_until(&mut t, SimTime::from_millis(5));
        runtime.start_measurement(runtime.now());
        let start = runtime.now();
        runtime.run_to_completion(&mut t);
        let report = runtime.measure(runtime.now());
        assert!(report.delivered_packets > 0);
        assert!(report.mean_latency > SimDuration::ZERO);
        assert!((report.offered.as_gbps() - 1.0).abs() < 0.15);
        assert!(report.delivered.as_gbps() > 0.8);
        assert!(runtime.now() > start);
        assert!(report.p99_latency >= report.mean_latency);
    }

    #[test]
    fn pam_strategy_on_runtime_model_matches_direct_planning() {
        // The chain model the runtime exposes must produce the same PAM
        // decision as the hand-built figure-1 model.
        let placement = Placement::figure1_initial();
        let runtime = figure1_runtime(&placement);
        let model = runtime.chain_model();
        let decision = StrategyKind::Pam
            .build()
            .decide(&model, &placement, Gbps::new(2.2));
        let direct = StrategyKind::Pam.build().decide(
            &ChainModel::figure1_example(),
            &placement,
            Gbps::new(2.2),
        );
        assert_eq!(decision, direct);
    }

    #[test]
    fn doorbell_timeout_adds_exactly_one_wait_per_hop_to_a_lone_packet() {
        use crate::config::BatchConfig;

        let run_one = |config: RuntimeConfig| {
            let mut runtime = ChainRuntime::new(
                ServiceChainSpec::figure1(),
                &Placement::figure1_initial(),
                config,
            )
            .unwrap();
            let bytes = pam_wire::PacketBuilder::new()
                .ports(1000, 80)
                .transport(pam_wire::TransportKind::Tcp)
                .total_len(512)
                .build();
            let packet = Packet::from_bytes(0, bytes, SimTime::ZERO);
            match runtime.inject(SimTime::ZERO, packet) {
                PacketOutcome::Delivered { latency } => latency,
                other => panic!("expected delivery, got {other:?}"),
            }
        };

        let unbatched = run_one(RuntimeConfig::evaluation_default());
        // A batch that never fills: every hop holds the lone packet for the
        // full doorbell timeout, nothing else changes.
        let wait = SimDuration::from_micros(7);
        let batched = run_one(
            RuntimeConfig::evaluation_default().with_batch(BatchConfig::of(32).with_max_wait(wait)),
        );
        assert_eq!(
            batched,
            unbatched + wait * 4,
            "four hops, one doorbell wait each"
        );
    }

    #[test]
    fn batch_closes_on_size_without_waiting_for_the_doorbell() {
        use crate::config::BatchConfig;

        // Two same-instant packets fill a max_batch=2 stage immediately; with
        // an absurdly long doorbell timeout, low latency proves the size
        // trigger closed the batch, not the timer.
        let config = RuntimeConfig::evaluation_default()
            .with_batch(BatchConfig::of(2).with_max_wait(SimDuration::from_millis(50)));
        let mut runtime = ChainRuntime::new(
            ServiceChainSpec::figure1(),
            &Placement::figure1_initial(),
            config,
        )
        .unwrap();
        let bytes = pam_wire::PacketBuilder::new()
            .ports(1000, 80)
            .transport(pam_wire::TransportKind::Tcp)
            .total_len(512)
            .build();
        for id in 0..2u64 {
            runtime.submit(
                SimTime::ZERO,
                Packet::from_bytes(id, bytes.clone(), SimTime::ZERO),
            );
        }
        runtime.drain_until(SimTime::MAX);
        let outcome = runtime.outcome();
        assert_eq!(outcome.delivered, 2);
        assert!(
            outcome.p99_latency < SimDuration::from_millis(1),
            "size-closed batches must not wait out the 50 ms doorbell: {}",
            outcome.p99_latency
        );
    }

    #[test]
    fn batching_coalesces_crossings_into_fewer_dma_bursts() {
        let run = |max_batch: usize| {
            let mut runtime = ChainRuntime::new(
                ServiceChainSpec::figure1(),
                &Placement::figure1_initial(),
                RuntimeConfig::evaluation_default().with_max_batch(max_batch),
            )
            .unwrap();
            let mut t = trace(1.5, 5, 21);
            runtime.run_to_completion(&mut t);
            (runtime.outcome(), runtime.pcie_stats())
        };

        let (unbatched, single) = run(1);
        let (batched, coalesced) = run(8);
        // Per-packet crossing counts are batch-invariant (three per packet on
        // the figure-1 placement)...
        assert_eq!(unbatched.pcie_crossings, 3 * unbatched.delivered);
        assert_eq!(batched.pcie_crossings, 3 * batched.delivered);
        assert_eq!(single.dma_bursts, single.total_crossings());
        // ...but the batched datapath rings far fewer doorbells.
        assert!(
            coalesced.dma_bursts * 2 < coalesced.total_crossings(),
            "{} bursts for {} crossings",
            coalesced.dma_bursts,
            coalesced.total_crossings()
        );
        // Same traffic delivered (the horizon-tail packets still drain on
        // run_to_completion), per-flow totals checked by the differential
        // integration suite.
        assert_eq!(batched.injected, unbatched.injected);
        assert_eq!(batched.delivered, unbatched.delivered);
        assert_eq!(batched.drops_overload + batched.drops_policy, 0);
    }

    #[test]
    fn pause_flushes_the_open_batch_ahead_of_blackout_arrivals() {
        // A packet staged before the pause and a same-flow packet arriving
        // during the blackout must egress in arrival order: migration
        // flushes the open batch the moment it pauses, so the held packet
        // re-fires at the blackout end *before* the later arrival
        // (equal-time events pop in scheduling order). Letting the doorbell
        // fire mid-blackout instead would re-queue it behind the later
        // packet and reorder the flow.
        let spec = ServiceChainSpec::new(
            "mon-only",
            Endpoint::Wire,
            Endpoint::Host,
            vec![pam_nf::NfKind::Monitor],
        );
        let placement = Placement::all_on(Device::SmartNic, 1);
        let config = RuntimeConfig::evaluation_default().with_max_batch(8);
        let mut runtime = ChainRuntime::new(spec, &placement, config).unwrap();
        runtime.record_egress();
        let bytes = pam_wire::PacketBuilder::new()
            .ports(1000, 80)
            .transport(pam_wire::TransportKind::Tcp)
            .total_len(256)
            .build();
        // Packet 1 arrives at t=0 and stages (its doorbell would ring at the
        // 5 us timeout)...
        runtime.submit(
            SimTime::ZERO,
            Packet::from_bytes(1, bytes.clone(), SimTime::ZERO),
        );
        runtime.drain_until(SimTime::from_micros(2));
        // ...the monitor migrates at t=2 us (the blackout outlives the
        // doorbell timeout by far)...
        runtime
            .live_migrate(NfId::new(0), Device::Cpu, SimTime::from_micros(2))
            .unwrap();
        // ...and packet 2 of the same flow arrives mid-blackout at t=3 us.
        runtime.submit(
            SimTime::from_micros(3),
            Packet::from_bytes(2, bytes, SimTime::from_micros(3)),
        );
        runtime.drain_until(SimTime::MAX);
        let ids: Vec<u64> = runtime.egress_log().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 2], "pre-pause packet must egress first");
        assert_eq!(
            runtime.outcome().drops_migration,
            0,
            "blackout fits the bound"
        );
    }

    #[test]
    fn batched_migration_still_converges_and_preserves_traffic() {
        use crate::migration::{MigrationConfig, MigrationMode};

        let config = RuntimeConfig::evaluation_default()
            .with_max_batch(8)
            .with_migration(MigrationConfig {
                mode: MigrationMode::PreCopy,
                max_precopy_rounds: 8,
                convergence_flows: 16,
                ..MigrationConfig::default()
            });
        let mut runtime = ChainRuntime::new(
            ServiceChainSpec::figure1(),
            &Placement::figure1_initial(),
            config,
        )
        .unwrap();
        let mut t = trace(1.5, 20, 4);
        runtime.run_until(&mut t, SimTime::from_millis(5));
        runtime
            .live_migrate(NfId::new(2), Device::Cpu, runtime.now())
            .unwrap();
        runtime.run_to_completion(&mut t);
        let outcome = runtime.outcome();
        assert_eq!(outcome.migrations.len(), 1, "handover completed");
        assert_eq!(outcome.migrations[0].mode, MigrationMode::PreCopy);
        assert!(outcome.delivered > 0);
        assert_eq!(
            runtime.placement().device_of(NfId::new(2)).unwrap(),
            Device::Cpu
        );
    }

    #[test]
    fn policy_drops_are_counted_separately() {
        // A chain consisting of just a firewall that blocks the traffic's
        // destination port.
        let spec = ServiceChainSpec::new(
            "fw-only",
            Endpoint::Wire,
            Endpoint::Host,
            vec![pam_nf::NfKind::Firewall],
        );
        let placement = Placement::all_on(Device::SmartNic, 1);
        let mut runtime =
            ChainRuntime::new(spec, &placement, RuntimeConfig::evaluation_default()).unwrap();
        // Build packets aimed at the blocked NetBIOS port range.
        let bytes = pam_wire::PacketBuilder::new()
            .ports(1000, 137)
            .transport(pam_wire::TransportKind::Tcp)
            .total_len(128)
            .build();
        for i in 0..10u64 {
            let packet = Packet::from_bytes(i, bytes.clone(), SimTime::from_micros(i));
            let outcome = runtime.inject(SimTime::from_micros(i), packet);
            assert_eq!(outcome, PacketOutcome::DroppedPolicy);
        }
        let outcome = runtime.outcome();
        assert_eq!(outcome.drops_policy, 10);
        assert_eq!(outcome.delivered, 0);
    }
}
