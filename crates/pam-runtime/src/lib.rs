//! The packet-level service-chain runtime.
//!
//! This crate is the simulated data plane the experiments run on: it places
//! the vNFs of a [`pam_nf::ServiceChainSpec`] onto the simulated SmartNIC and
//! CPU of `pam-sim`, drives real packets (from `pam-traffic`) through them
//! hop by hop, pays a PCIe crossing whenever consecutive hops sit on
//! different devices, and supports *live migration* of a vNF between devices
//! with OpenNF/UNO-style state transfer while traffic keeps flowing.
//!
//! * [`RuntimeConfig`] — device, PCIe, measurement, migration-engine
//!   ([`MigrationConfig`]) and doorbell-batching ([`BatchConfig`])
//!   configuration.
//! * [`ChainRuntime`] — the simulation itself (`run_until`, `live_migrate`,
//!   metrics publication), servicing packets in doorbell batches and
//!   coalescing PCIe crossings into DMA bursts when `max_batch > 1`.
//! * [`migration`] — the live-migration engine's types: stop-and-copy vs
//!   iterative pre-copy ([`MigrationMode`]), the divergence policy
//!   ([`DivergencePolicy`]: force-freeze or roll back at the round cap),
//!   per-round accounting ([`MigrationRound`]) and pre-execution cost
//!   estimates ([`MigrationEstimate`]).
//!
//! Every phase change of a migration — snapshot, dirty rounds, freeze,
//! handover, abort/rollback — is driven through the pure state machine in
//! `pam-protocol` (`HandoverState::step`), whose transition relation is
//! exhaustively model-checked. The runtime interprets the machine's actions
//! (export, pause, activate, discard); it never decides a phase on its own.
//! * [`RunOutcome`] / [`MigrationReport`] — what a run / a migration produced.
//! * [`capacity_probe`] — measures a single vNF's saturation throughput on a
//!   device, reproducing the paper's Table 1 from the simulated substrate.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub mod capacity_probe;
pub mod chain;
pub mod config;
pub mod instance;
pub mod migration;

pub use capacity_probe::{probe_capacity, CapacityProbeResult};
pub use chain::{ChainRuntime, PacketOutcome, RunOutcome};
pub use config::{BatchConfig, RuntimeConfig, RuntimeTuning};
pub use instance::VnfInstance;
pub use migration::{
    state_transfer_size, DivergencePolicy, MigrationConfig, MigrationEstimate, MigrationMode,
    MigrationReport, MigrationRound,
};
