//! Pins the zero-allocation steady state of the batched datapath.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase has sized every recycled buffer (doorbell stages, the batch pool,
//! verdict scratch, calendar-queue buckets, flow tables), driving further
//! traffic through the chain must not allocate at all. Deallocations are
//! allowed — delivered packets free their frame bytes at egress — but any
//! `malloc`/`realloc` on the service path is a regression.
//!
//! The chain deliberately excludes the [`pam_nf::Logger`]: its log entries
//! own freshly formatted summary strings, which is *modeled vNF work* (the
//! state that migrates), not simulator overhead. Every other Figure-1 vNF is
//! allocation-free per packet in steady state.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pam_core::Placement;
use pam_nf::{NfKind, ServiceChainSpec};
use pam_runtime::{ChainRuntime, RuntimeConfig};
use pam_traffic::{
    ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TraceConfig, TraceSynthesizer,
    TrafficSchedule,
};
use pam_types::{ByteSize, Endpoint, Gbps, SimDuration, SimTime};

/// Counts every allocation and reallocation (frees are not counted: egress
/// legitimately drops packet buffers).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_batch_service_performs_zero_heap_allocations() {
    // Firewall -> Monitor -> LoadBalancer on the SmartNIC: three of the
    // Figure-1 vNFs, including the two whose per-flow tables dominate the
    // hot path. A small flow population guarantees the warm-up phase visits
    // every flow, so the measured phase performs only re-lookups.
    let spec = ServiceChainSpec::new(
        "zero-alloc",
        Endpoint::Host,
        Endpoint::Wire,
        vec![NfKind::Firewall, NfKind::Monitor, NfKind::LoadBalancer],
    );
    let placement = Placement::all_on(pam_types::Device::SmartNic, 3);
    let mut config = RuntimeConfig::evaluation_default().with_max_batch(8);
    // Keep the periodic metrics publication (it clones device labels into
    // the registry) out of the measured window.
    config.metrics_interval = SimDuration::from_secs(3600);
    let mut runtime = ChainRuntime::new(spec, &placement, config).unwrap();

    // Pre-generate the whole trace: packet *construction* allocates each
    // frame's bytes by design (that allocation is the offered workload, paid
    // by the traffic source), so it happens before the measured window.
    let trace = TraceSynthesizer::new(TraceConfig {
        sizes: PacketSizeProfile::Fixed(ByteSize::bytes(512)),
        flows: FlowGeneratorConfig {
            flow_count: 64,
            zipf_exponent: 1.0,
            tcp_fraction: 0.8,
        },
        arrival: ArrivalProcess::Cbr,
        schedule: TrafficSchedule::constant(Gbps::new(1.2), SimDuration::from_millis(8)),
        seed: 77,
    });
    let packets = trace.collect_all();
    assert!(
        packets.len() > 2_000,
        "trace is long enough to warm and measure"
    );

    // Warm-up: the first half sizes every pool, stage, table and bucket.
    let half = packets.len() / 2;
    let mut iter = packets.into_iter();
    for (send_time, packet) in iter.by_ref().take(half) {
        runtime.drain_until(send_time);
        runtime.submit(send_time, packet);
    }
    runtime.drain_until(SimTime::MAX);

    // Measured window: the steady state must stay off the allocator. The
    // run is deterministic (fixed seed, fixed schedule), so this assertion
    // cannot flake — it either always holds for a build or never does.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for (send_time, packet) in iter {
        runtime.drain_until(send_time);
        runtime.submit(send_time, packet);
    }
    runtime.drain_until(SimTime::MAX);
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;

    let outcome = runtime.outcome();
    assert!(outcome.delivered > 0, "traffic flowed");
    assert_eq!(
        allocations, 0,
        "steady-state batch service must not allocate (saw {allocations} allocations)"
    );
}
