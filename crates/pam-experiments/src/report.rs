//! Plain-text table rendering for experiment output.

/// Renders a table with a header row and aligned columns, in the style used
/// throughout `EXPERIMENTS.md` and the bench output.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}", w = w))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let divider: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|", divider.join("-|-")));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let text = render_table(
            "Table X",
            &["vNF", "value"],
            &[
                vec!["Firewall".into(), "10".into()],
                vec!["Load Balancer".into(), ">10".into()],
            ],
        );
        assert!(text.starts_with("Table X\n"));
        assert!(text.contains("| vNF           | value |"));
        assert!(text.contains("| Firewall      | 10    |"));
        assert!(text.contains("| Load Balancer | >10   |"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn empty_rows_still_render_header() {
        let text = render_table("T", &["a"], &[]);
        assert!(text.contains("| a |"));
    }
}
