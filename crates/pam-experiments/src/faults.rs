//! The failure-scenario suite: deterministic fault injection under
//! invariant pins.
//!
//! Three scenarios exercise the fleet's crash/flap/recovery machinery end
//! to end, each gated by a [`FaultAudit`] that cross-checks the faulted run
//! against a fault-free reference run of the same seeded scenario:
//!
//! | Scenario | Faults | What it pins |
//! |----------|--------|--------------|
//! | `crash_during_precopy` | crash the server mid-pre-copy, recover later | the protocol's `TargetCrash` abort arc: the staged target is discarded, no acked flow state is lost, the migration counts as aborted |
//! | `link_flap_storm` | overlapping link flaps plus a capacity swing on every server, under fair-share contention | faults delay but never lose traffic; the restored link carries no phantom pre-flap watermark |
//! | `correlated_overload_recovery` | two servers crash while the whole fleet is slammed, then recover | failover re-steers every flow to survivors (zero ingress black-holing) and recovery demonstrably restores service |
//!
//! The invariants (checked by [`FaultAudit::check`], violations are hard
//! errors in [`FaultScenario::run`]):
//!
//! 1. **offered-load conservation** — every arrival of the reference run is
//!    accounted for in the faulted run: `injected + fault_drops` equals the
//!    reference injection count exactly;
//! 2. **no lost acked state, no duplicate apply** — per server and
//!    fleet-wide, `injected == delivered + drops` exactly after the drain
//!    margin (a lost packet breaks `==` one way, a duplicated delivery the
//!    other);
//! 3. **bounded blackout** — total migration blackout stays within a fixed
//!    slack of the fault-free reference (faults may abort or defer
//!    migrations, never wedge one open);
//! 4. **eventual service after recovery** — the faulted run delivers
//!    strictly more than a control run whose recovery events are stripped,
//!    so coming back measurably matters;
//! 5. **scenario-specific pins** — `crash_during_precopy` must observe at
//!    least one `TargetCrash` abort, the storm must black-hole nothing, the
//!    correlated scenario must crash and recover both targeted servers.
//!
//! Every run is seeded and every fault is delivered through the fleet's
//! deterministic event queue, so a [`FaultCell`] is byte-identical at any
//! shard or job count — CI's fault matrix diffs `--shards 1/2/8` against
//! each other.

use pam_core::StrategyKind;
use pam_fleet::{Fleet, FleetReport};
use pam_runtime::MigrationMode;
use pam_sim::{FaultEvent, FaultKind, FaultPlan, LinkModel};
use pam_types::{PamError, Result, ServerId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::fleet::{FleetScenario, FleetScenarioKind, FleetTuning};

/// The three failure scenarios, in suite order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultScenarioKind {
    /// Crash a server while one of its pre-copy migrations is in flight,
    /// recover it a few milliseconds later.
    CrashDuringPrecopy,
    /// Overlapping link flaps and a capacity swing on every server, under
    /// fair-share link contention.
    LinkFlapStorm,
    /// Two servers crash while the whole fleet is slammed, then recover
    /// while the overload is still running.
    CorrelatedOverloadRecovery,
}

impl FaultScenarioKind {
    /// Every failure scenario, in suite order.
    pub const ALL: [FaultScenarioKind; 3] = [
        FaultScenarioKind::CrashDuringPrecopy,
        FaultScenarioKind::LinkFlapStorm,
        FaultScenarioKind::CorrelatedOverloadRecovery,
    ];

    /// The machine-readable name used in reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenarioKind::CrashDuringPrecopy => "crash_during_precopy",
            FaultScenarioKind::LinkFlapStorm => "link_flap_storm",
            FaultScenarioKind::CorrelatedOverloadRecovery => "correlated_overload_recovery",
        }
    }

    /// Parses a scenario name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for FaultScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The scenario-specific pins a [`FaultAudit`] enforces on top of the
/// universal conservation/blackout invariants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultExpectations {
    /// Minimum `TargetCrash` protocol aborts the run must observe.
    pub min_target_crashes: u64,
    /// Minimum server crashes the run must record.
    pub min_crashes: u64,
    /// Minimum server recoveries the run must record.
    pub min_recoveries: u64,
    /// When true, the run must black-hole nothing at a dead ingress
    /// (failover re-steered every arrival to a survivor).
    pub zero_fault_drops: bool,
    /// Slack on the faulted run's total blackout over the reference, µs.
    pub blackout_slack_us: f64,
}

/// The invariant checker of one faulted run: cross-checks the faulted
/// report against the fault-free reference (and, when the plan recovers
/// anything, a recovery-stripped control run), collecting every violation
/// as a human-readable string. An unclean audit is a hard error in
/// [`FaultScenario::run`] — the failure scenarios are gates, not dashboards.
#[derive(Debug, Clone, Default)]
pub struct FaultAudit {
    violations: Vec<String>,
}

impl FaultAudit {
    /// Audits `faulted` against `reference` under `expect`.
    ///
    /// `target_crashes` is the fleet-wide sum of the runtimes'
    /// `TargetCrash` abort counters (a side channel, never part of the
    /// report). `control_delivered` is the delivered count of the
    /// recovery-stripped control run, when the plan has recoveries.
    pub fn check(
        faulted: &FleetReport,
        target_crashes: u64,
        reference: &FleetReport,
        control_delivered: Option<u64>,
        expect: &FaultExpectations,
    ) -> Self {
        let mut audit = FaultAudit::default();
        // 1. Offered-load conservation: arrivals are generated by the seeded
        //    traffic schedules, independent of faults, and every arrival is
        //    either submitted (injected) or black-holed at a dead ingress
        //    (fault_drops) — never silently gone.
        let offered = faulted.totals.injected + faulted.totals.fault_drops;
        if offered != reference.totals.injected {
            audit.flag(format!(
                "offered load not conserved: faulted injected {} + fault drops {} != reference injected {}",
                faulted.totals.injected, faulted.totals.fault_drops, reference.totals.injected
            ));
        }
        // 2. Exact per-server packet conservation after the drain margin: a
        //    lost acked packet breaks the equality one way, a duplicate
        //    apply breaks it the other.
        for (label, report) in [("faulted", faulted), ("reference", reference)] {
            for server in &report.servers {
                let accounted = server.delivered
                    + server.drops_overload
                    + server.drops_policy
                    + server.drops_migration;
                if server.injected != accounted {
                    audit.flag(format!(
                        "{label} server {}: injected {} != delivered+drops {}",
                        server.server, server.injected, accounted
                    ));
                }
            }
        }
        // 3. Bounded blackout: faults may abort or defer migrations but must
        //    never leave one wedged open.
        let bound = reference.totals.blackout_us + expect.blackout_slack_us;
        if faulted.totals.blackout_us > bound {
            audit.flag(format!(
                "blackout unbounded: faulted {:.1} µs > reference {:.1} µs + {:.1} µs slack",
                faulted.totals.blackout_us, reference.totals.blackout_us, expect.blackout_slack_us
            ));
        }
        // 4. Recovery restores service: strictly more delivered than the
        //    control run that never recovers.
        if let Some(control) = control_delivered {
            if faulted.totals.delivered <= control {
                audit.flag(format!(
                    "recovery did not restore service: faulted delivered {} <= no-recovery control {}",
                    faulted.totals.delivered, control
                ));
            }
        }
        // 5. Scenario-specific pins.
        if target_crashes < expect.min_target_crashes {
            audit.flag(format!(
                "expected >= {} TargetCrash abort(s), saw {}",
                expect.min_target_crashes, target_crashes
            ));
        }
        if faulted.totals.server_crashes < expect.min_crashes {
            audit.flag(format!(
                "expected >= {} server crash(es), saw {}",
                expect.min_crashes, faulted.totals.server_crashes
            ));
        }
        if faulted.totals.server_recoveries < expect.min_recoveries {
            audit.flag(format!(
                "expected >= {} server recover(ies), saw {}",
                expect.min_recoveries, faulted.totals.server_recoveries
            ));
        }
        if expect.zero_fault_drops && faulted.totals.fault_drops != 0 {
            audit.flag(format!(
                "failover should have re-steered every arrival, yet {} packet(s) were black-holed",
                faulted.totals.fault_drops
            ));
        }
        audit
    }

    fn flag(&mut self, violation: String) {
        self.violations.push(violation);
    }

    /// True when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations, in check order (empty when clean).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

/// One audited failure-scenario run: the faulted run's headline counters
/// next to the fault-free reference. Everything here is deterministic —
/// byte-identical at any shard or job count — which is what CI's fault
/// matrix diffs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCell {
    /// Scenario name (see [`FaultScenarioKind::name`]).
    pub scenario: String,
    /// Strategy name (see [`pam_core::MigrationStrategy::name`]).
    pub strategy: String,
    /// Fleet size the scenario ran at (scenarios clamp small fleets up to
    /// their minimum viable size).
    pub servers: usize,
    /// Scheduled fault events in the plan.
    pub faults: usize,
    /// Packets submitted fleet-wide in the faulted run.
    pub injected: u64,
    /// Packets delivered fleet-wide in the faulted run.
    pub delivered: u64,
    /// Packets black-holed at a crashed server's ingress.
    pub fault_drops: u64,
    /// Server crashes the fault plan landed.
    pub server_crashes: u64,
    /// Server recoveries completed behind the warm-up guard.
    pub server_recoveries: u64,
    /// Migrations rolled back before handover.
    pub aborted_migrations: u64,
    /// `TargetCrash` protocol aborts (staged pre-copy target discarded).
    pub target_crashes: u64,
    /// Total migration blackout of the faulted run, µs.
    pub blackout_us: f64,
    /// Fleet-wide p99 latency of the faulted run, µs.
    pub p99_us: f64,
    /// Packets re-steered away from their home server (failover shows up
    /// here).
    pub resteered_packets: u64,
    /// Packets injected by the fault-free reference run.
    pub reference_injected: u64,
    /// Packets delivered by the fault-free reference run.
    pub reference_delivered: u64,
    /// Total migration blackout of the reference run, µs.
    pub reference_blackout_us: f64,
    /// Packets delivered by the recovery-stripped control run (0 when the
    /// plan has no recoveries and no control run was needed).
    pub control_delivered: u64,
}

/// One concrete failure scenario: a seeded base [`FleetScenario`] plus the
/// fault plan aimed at it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultScenario {
    /// Which failure scenario.
    pub kind: FaultScenarioKind,
    /// Fleet size (clamped up to the scenario's minimum viable size).
    pub servers: usize,
}

/// Drain margin past the traffic horizon, so every in-flight packet lands
/// before the conservation invariants are checked.
const DRAIN_MARGIN: SimDuration = SimDuration::from_millis(4);

/// How long a crashed server stays down in the crash scenarios.
const CRASH_DOWNTIME: SimDuration = SimDuration::from_millis(4);

impl FaultScenario {
    /// The scenario at (at least) `servers` servers: the crash scenarios
    /// need a survivor to fail over to, the correlated scenario crashes two
    /// servers and needs two survivors.
    pub fn new(kind: FaultScenarioKind, servers: usize) -> Self {
        let floor = match kind {
            FaultScenarioKind::CorrelatedOverloadRecovery => 4,
            _ => 2,
        };
        FaultScenario {
            kind,
            servers: servers.max(floor),
        }
    }

    /// The fault-free base scenario the faults are injected into.
    pub fn base(&self) -> FleetScenario {
        match self.kind {
            // Pre-copy must be staged for a target crash to have a target:
            // the rolling hotspot migrates early and often.
            FaultScenarioKind::CrashDuringPrecopy => {
                FleetScenario::new(FleetScenarioKind::RollingHotspot, self.servers)
                    .with_tuning(FleetTuning::default().with_mode(MigrationMode::PreCopy))
            }
            // Link faults bite hardest when transfers share the link.
            FaultScenarioKind::LinkFlapStorm => {
                FleetScenario::new(FleetScenarioKind::DiurnalWave, self.servers)
                    .with_tuning(FleetTuning::default().with_link_model(LinkModel::fair_share()))
            }
            FaultScenarioKind::CorrelatedOverloadRecovery => {
                FleetScenario::new(FleetScenarioKind::CorrelatedOverload, self.servers)
            }
        }
    }

    /// The run horizon: the base traffic horizon plus a drain margin, so
    /// the conservation audit sees every in-flight packet land.
    pub fn horizon(&self) -> SimTime {
        self.base().horizon() + DRAIN_MARGIN
    }

    /// The scenario's invariant pins.
    pub fn expectations(&self) -> FaultExpectations {
        let universal = FaultExpectations {
            min_target_crashes: 0,
            min_crashes: 0,
            min_recoveries: 0,
            zero_fault_drops: true,
            blackout_slack_us: 20_000.0,
        };
        match self.kind {
            FaultScenarioKind::CrashDuringPrecopy => FaultExpectations {
                min_target_crashes: 1,
                min_crashes: 1,
                min_recoveries: 1,
                ..universal
            },
            FaultScenarioKind::LinkFlapStorm => universal,
            FaultScenarioKind::CorrelatedOverloadRecovery => FaultExpectations {
                min_crashes: 2,
                min_recoveries: 2,
                ..universal
            },
        }
    }

    /// Builds the scenario's fault plan. For `crash_during_precopy` this
    /// runs a sequential probe of the fault-free fleet to find the first
    /// instant a pre-copy is in flight — the plan is data, so the faulted
    /// run (sharded or not) replays it byte-identically.
    pub fn plan(&self, strategy: StrategyKind) -> Result<FaultPlan> {
        match self.kind {
            FaultScenarioKind::CrashDuringPrecopy => {
                let (crash_at, server) = precopy_instant(&self.base(), strategy, self.horizon())?;
                Ok(FaultPlan::new(vec![
                    FaultEvent {
                        at: crash_at,
                        kind: FaultKind::ServerCrash { server },
                    },
                    FaultEvent {
                        at: crash_at + CRASH_DOWNTIME,
                        kind: FaultKind::ServerRecover { server },
                    },
                ]))
            }
            // Two waves of overlapping flaps per server (the second flap of
            // each pair extends the first's outage) plus a capacity swing —
            // all inside the diurnal wave's 40 ms horizon.
            FaultScenarioKind::LinkFlapStorm => {
                let mut events = Vec::new();
                for index in 0..self.servers {
                    let server = ServerId::from(index);
                    let stagger = SimDuration::from_micros(500) * index as u64;
                    for wave_ms in [3u64, 12] {
                        let at = SimTime::from_millis(wave_ms) + stagger;
                        events.push(FaultEvent {
                            at,
                            kind: FaultKind::LinkFlap {
                                server,
                                down_for: SimDuration::from_micros(700),
                            },
                        });
                        events.push(FaultEvent {
                            at: at + SimDuration::from_micros(300),
                            kind: FaultKind::LinkFlap {
                                server,
                                down_for: SimDuration::from_micros(900),
                            },
                        });
                    }
                    events.push(FaultEvent {
                        at: SimTime::from_millis(20) + stagger,
                        kind: FaultKind::CapacitySwing {
                            server,
                            factor: 0.4,
                            period: SimDuration::from_millis(2),
                        },
                    });
                }
                Ok(FaultPlan::new(events))
            }
            // Servers 0 and 1 die two milliseconds into the fleet-wide
            // overload (which runs 8–24 ms) and come back while it is still
            // on, so recovery has to prove itself under pressure.
            FaultScenarioKind::CorrelatedOverloadRecovery => {
                let mut events = Vec::new();
                for index in 0..2usize {
                    let server = ServerId::from(index);
                    events.push(FaultEvent {
                        at: SimTime::from_millis(10),
                        kind: FaultKind::ServerCrash { server },
                    });
                    events.push(FaultEvent {
                        at: SimTime::from_millis(18),
                        kind: FaultKind::ServerRecover { server },
                    });
                }
                Ok(FaultPlan::new(events))
            }
        }
    }

    /// Runs the scenario end to end: fault-free reference, faulted run on
    /// `shards` lanes, recovery-stripped control (when the plan recovers
    /// anything), then the [`FaultAudit`]. An audit violation is a hard
    /// error.
    pub fn run(&self, strategy: StrategyKind, shards: usize) -> Result<FaultCell> {
        let base = self.base();
        let plan = self.plan(strategy)?;
        let horizon = self.horizon();

        let mut reference = base.build_fleet(strategy)?;
        reference.run(horizon);
        let reference_report = reference.report();

        let mut faulted = base.build_fleet(strategy)?;
        faulted.set_fault_plan(plan.clone())?;
        faulted.run_sharded(horizon, shards.max(1));
        let report = faulted.report();
        let target_crashes = total_target_crashes(&faulted);

        let has_recovery = plan
            .events()
            .iter()
            .any(|event| matches!(event.kind, FaultKind::ServerRecover { .. }));
        let control_delivered = if has_recovery {
            let stripped = FaultPlan::new(
                plan.events()
                    .iter()
                    .copied()
                    .filter(|event| !matches!(event.kind, FaultKind::ServerRecover { .. }))
                    .collect(),
            );
            let mut control = base.build_fleet(strategy)?;
            control.set_fault_plan(stripped)?;
            control.run(horizon);
            Some(control.report().totals.delivered)
        } else {
            None
        };

        let audit = FaultAudit::check(
            &report,
            target_crashes,
            &reference_report,
            control_delivered,
            &self.expectations(),
        );
        if !audit.is_clean() {
            return Err(PamError::InvalidState(format!(
                "fault audit failed for {}: {}",
                self.kind,
                audit.violations().join("; ")
            )));
        }

        Ok(FaultCell {
            scenario: self.kind.name().to_string(),
            strategy: strategy.build().name().to_string(),
            servers: self.servers,
            faults: plan.len(),
            injected: report.totals.injected,
            delivered: report.totals.delivered,
            fault_drops: report.totals.fault_drops,
            server_crashes: report.totals.server_crashes,
            server_recoveries: report.totals.server_recoveries,
            aborted_migrations: report.totals.aborted_migrations,
            target_crashes,
            blackout_us: report.totals.blackout_us,
            p99_us: report.totals.p99_us,
            resteered_packets: report.totals.resteered_packets,
            reference_injected: reference_report.totals.injected,
            reference_delivered: reference_report.totals.delivered,
            reference_blackout_us: reference_report.totals.blackout_us,
            control_delivered: control_delivered.unwrap_or(0),
        })
    }
}

/// Sums the fleet's `TargetCrash` abort counters (a runtime side channel,
/// deliberately outside [`FleetReport`]).
fn total_target_crashes(fleet: &Fleet) -> u64 {
    fleet
        .servers()
        .iter()
        .map(|server| server.runtime().target_crashes())
        .sum()
}

/// Probes the fault-free fleet sequentially in 5 µs steps for the first
/// instant a pre-copy migration is in flight on some server, and returns a
/// crash instant pinned 1 µs after it.
///
/// The +1 µs matters: fault events are scheduled before arrivals and
/// control ticks, so a fault at the probe instant itself would sort *ahead*
/// of the equal-time control tick that starts the migration and find
/// nothing staged yet. The probe re-checks that the pre-copy is still in
/// flight at the pinned crash instant before accepting it.
fn precopy_instant(
    base: &FleetScenario,
    strategy: StrategyKind,
    horizon: SimTime,
) -> Result<(SimTime, ServerId)> {
    let mut probe = base.build_fleet(strategy)?;
    let step = SimDuration::from_micros(5);
    let mut at = SimTime::ZERO;
    while at < horizon {
        at += step;
        probe.run(at);
        let staged = probe
            .servers()
            .iter()
            .position(|server| server.runtime().pre_copy_in_progress());
        if let Some(index) = staged {
            let crash_at = at + SimDuration::from_micros(1);
            probe.run(crash_at);
            if probe.servers()[index].runtime().pre_copy_in_progress() {
                return Ok((crash_at, ServerId::from(index)));
            }
        }
    }
    Err(PamError::InvalidState(format!(
        "no in-flight pre-copy found probing {} up to {horizon}",
        base.kind
    )))
}

/// Runs every failure scenario under PAM at (at least) `servers` servers,
/// each faulted run on `shards` lanes. Any invariant violation is an error.
pub fn run_fault_scenarios(servers: usize, shards: usize) -> Result<Vec<FaultCell>> {
    FaultScenarioKind::ALL
        .into_iter()
        .map(|kind| FaultScenario::new(kind, servers).run(StrategyKind::Pam, shards))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for kind in FaultScenarioKind::ALL {
            assert_eq!(FaultScenarioKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(FaultScenarioKind::from_name("nope"), None);
    }

    #[test]
    fn scenarios_clamp_to_their_minimum_fleet_size() {
        assert_eq!(
            FaultScenario::new(FaultScenarioKind::CrashDuringPrecopy, 1).servers,
            2
        );
        assert_eq!(
            FaultScenario::new(FaultScenarioKind::CorrelatedOverloadRecovery, 2).servers,
            4
        );
        assert_eq!(
            FaultScenario::new(FaultScenarioKind::LinkFlapStorm, 3).servers,
            3
        );
    }

    /// The PR's acceptance criterion: the crash lands while a pre-copy is
    /// staged, drives the protocol's `TargetCrash` abort arc, loses no
    /// acked state (the audit's exact conservation pin) and keeps the
    /// blackout bounded — all asserted inside `run`.
    #[test]
    fn crash_during_precopy_exercises_the_target_crash_abort() {
        let cell = FaultScenario::new(FaultScenarioKind::CrashDuringPrecopy, 2)
            .run(StrategyKind::Pam, 1)
            .unwrap();
        assert!(cell.target_crashes >= 1, "no TargetCrash abort observed");
        assert!(cell.aborted_migrations >= 1);
        assert_eq!(cell.server_crashes, 1);
        assert_eq!(cell.server_recoveries, 1);
        assert_eq!(cell.fault_drops, 0, "failover re-steers every arrival");
        assert_eq!(cell.injected, cell.reference_injected);
        assert!(
            cell.delivered > cell.control_delivered,
            "recovery must restore service over the no-recovery control"
        );
    }

    #[test]
    fn link_flap_storm_delays_but_never_loses_traffic() {
        let cell = FaultScenario::new(FaultScenarioKind::LinkFlapStorm, 2)
            .run(StrategyKind::Pam, 1)
            .unwrap();
        assert_eq!(cell.server_crashes, 0);
        assert_eq!(cell.fault_drops, 0);
        assert_eq!(cell.injected, cell.reference_injected);
        assert!(cell.faults >= 10, "two waves of paired flaps plus swings");
    }

    #[test]
    fn correlated_overload_recovery_fails_over_and_comes_back() {
        let cell = FaultScenario::new(FaultScenarioKind::CorrelatedOverloadRecovery, 4)
            .run(StrategyKind::Pam, 1)
            .unwrap();
        assert_eq!(cell.server_crashes, 2);
        assert_eq!(cell.server_recoveries, 2);
        assert_eq!(cell.fault_drops, 0, "survivors absorb the re-steered load");
        assert!(
            cell.resteered_packets > 0,
            "failover re-steering is visible"
        );
        assert!(
            cell.delivered > cell.control_delivered,
            "recovering mid-overload must beat staying down"
        );
    }

    /// The determinism pin behind CI's fault matrix: a faulted cell is
    /// byte-identical whether its fleet ran sequentially or sharded.
    #[test]
    fn fault_cells_are_byte_identical_across_shard_counts() {
        let scenario = FaultScenario::new(FaultScenarioKind::LinkFlapStorm, 3);
        let sequential = scenario.run(StrategyKind::Pam, 1).unwrap();
        let sharded = scenario.run(StrategyKind::Pam, 3).unwrap();
        assert_eq!(
            serde_json::to_string(&sequential).unwrap(),
            serde_json::to_string(&sharded).unwrap()
        );
    }

    #[test]
    fn audit_flags_broken_invariants() {
        let clean = FaultScenario::new(FaultScenarioKind::LinkFlapStorm, 2);
        let base = clean.base();
        let mut fleet = base.build_fleet(StrategyKind::Pam).unwrap();
        fleet.run(clean.horizon());
        let report = fleet.report();
        // Same report as faulted and reference, impossible expectations:
        // the pins must flag, conservation must not.
        let expect = FaultExpectations {
            min_target_crashes: 1,
            min_crashes: 3,
            min_recoveries: 3,
            zero_fault_drops: true,
            blackout_slack_us: 20_000.0,
        };
        let audit = FaultAudit::check(&report, 0, &report, Some(report.totals.delivered), &expect);
        assert!(!audit.is_clean());
        assert_eq!(
            audit.violations().len(),
            4,
            "TargetCrash, crashes, recoveries and the control-run pin: {:?}",
            audit.violations()
        );
        // And a clean check against itself with no expectations passes.
        let relaxed = FaultExpectations {
            min_target_crashes: 0,
            min_crashes: 0,
            min_recoveries: 0,
            zero_fault_drops: true,
            blackout_slack_us: 0.0,
        };
        assert!(FaultAudit::check(&report, 0, &report, None, &relaxed).is_clean());
    }
}
