//! The experiment harness: every table and figure of the poster, regenerated.
//!
//! | Experiment | Paper artefact | Entry point |
//! |------------|----------------|-------------|
//! | E1 | Table 1 — vNF capacities on SmartNIC and CPU | [`table1::run_table1`] |
//! | E2 | Figure 2(a) — service-chain latency (Original / Naive / PAM) | [`figure2::run_figure2`] |
//! | E3 | Figure 2(b) — service-chain throughput (Original / Naive / PAM) | [`figure2::run_figure2`] |
//! | A1 | Ablation — algorithm decision time | `pam-bench/benches/algorithm_micro.rs` |
//! | A2 | Ablation — strategy comparison over random chains | [`ablations::strategy_sweep`] |
//! | A3 | Ablation — latency penalty vs PCIe crossing latency | [`ablations::pcie_sweep`] |
//! | A4 | Ablation — live-migration cost vs flow-table size | [`ablations::migration_cost_sweep`] |
//! | F1 | Fleet — scenario × strategy matrix behind CI's perf gate | [`fleet::run_fleet_matrix`] |
//! | F2 | Fleet — sharded scaling curve (byte-compared to sequential) | [`fleet::run_scale_curve`] |
//! | F3 | Fleet — failure scenarios under invariant pins (crash mid-pre-copy, link-flap storm, correlated crash/recovery) | [`faults::run_fault_scenarios`] |
//!
//! Each experiment returns plain data rows plus a [`report`]-rendered text
//! table whose layout mirrors the paper, so the benches' stdout doubles as
//! the experiment record (`EXPERIMENTS.md` quotes it).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]
#![warn(missing_docs)]

pub mod ablations;
pub mod faults;
pub mod figure2;
pub mod fleet;
pub mod report;
pub mod scenarios;
pub mod table1;

pub use faults::{run_fault_scenarios, FaultAudit, FaultCell, FaultScenario, FaultScenarioKind};
pub use figure2::{run_figure2, Figure2Config, Figure2Results, Figure2Row};
pub use fleet::{
    run_estimator_ablation, run_fleet_matrix, run_scale_curve, EstimatorCell, FleetBenchEntry,
    FleetBenchOutput, FleetScenario, FleetScenarioKind, FleetTuning, ScalePoint,
};
pub use scenarios::Figure1Scenario;
pub use table1::{run_table1, Table1Results};
