//! Evaluation scenarios.

use pam_core::Placement;
use pam_nf::{ProfileCatalog, ServiceChainSpec};
use pam_runtime::{ChainRuntime, RuntimeConfig};
use pam_traffic::{
    ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TraceConfig, TraceSynthesizer,
    TrafficSchedule,
};
use pam_types::{ByteSize, Gbps, Result, SimDuration};

/// The poster's Figure 1 scenario: the Firewall → Monitor → Logger → Load
/// Balancer chain, Table 1 capacities with a sampling Logger, traffic that
/// starts at a comfortable baseline and then fluctuates upward until the
/// SmartNIC overloads.
#[derive(Debug, Clone)]
pub struct Figure1Scenario {
    /// Offered load before the fluctuation.
    pub baseline_load: Gbps,
    /// Offered load after the fluctuation (overloads the SmartNIC).
    pub overload_load: Gbps,
    /// Duration of the baseline phase.
    pub baseline_duration: SimDuration,
    /// Duration of the overload phase.
    pub overload_duration: SimDuration,
    /// Packet sizes used by the sender.
    pub sizes: PacketSizeProfile,
    /// Trace seed.
    pub seed: u64,
}

impl Default for Figure1Scenario {
    fn default() -> Self {
        Figure1Scenario {
            baseline_load: Gbps::new(1.5),
            overload_load: Gbps::new(2.2),
            baseline_duration: SimDuration::from_millis(6),
            overload_duration: SimDuration::from_millis(24),
            sizes: PacketSizeProfile::paper_sweep(),
            seed: pam_traffic::trace::DEFAULT_TRACE_SEED,
        }
    }
}

impl Figure1Scenario {
    /// The scenario evaluated at a single fixed packet size (the paper sweeps
    /// 64 B – 1500 B and reports the average; the sweep driver calls this per
    /// size).
    pub fn at_packet_size(size: ByteSize) -> Self {
        Figure1Scenario {
            sizes: PacketSizeProfile::Fixed(size),
            ..Default::default()
        }
    }

    /// Total duration of the scenario.
    pub fn total_duration(&self) -> SimDuration {
        self.baseline_duration + self.overload_duration
    }

    /// When the traffic fluctuation (overload onset) happens.
    pub fn overload_onset(&self) -> SimDuration {
        self.baseline_duration
    }

    /// The chain specification.
    pub fn chain_spec(&self) -> ServiceChainSpec {
        ServiceChainSpec::figure1()
    }

    /// The initial placement (Figure 1a).
    pub fn initial_placement(&self) -> Placement {
        Placement::figure1_initial()
    }

    /// The capacity catalogue (Table 1 with the sampling Logger).
    pub fn catalog(&self) -> ProfileCatalog {
        ProfileCatalog::figure1_scenario()
    }

    /// The runtime configuration.
    pub fn runtime_config(&self) -> RuntimeConfig {
        RuntimeConfig::evaluation_default().with_catalog(self.catalog())
    }

    /// Builds the runtime with the initial placement.
    pub fn build_runtime(&self) -> Result<ChainRuntime> {
        ChainRuntime::new(
            self.chain_spec(),
            &self.initial_placement(),
            self.runtime_config(),
        )
    }

    /// Builds the traffic for this scenario.
    pub fn build_trace(&self) -> TraceSynthesizer {
        TraceSynthesizer::new(TraceConfig {
            sizes: self.sizes.clone(),
            flows: FlowGeneratorConfig {
                flow_count: 5_000,
                zipf_exponent: 1.0,
                tcp_fraction: 0.8,
            },
            arrival: ArrivalProcess::Cbr,
            schedule: TrafficSchedule::step_overload(
                self.baseline_load,
                self.baseline_duration,
                self.overload_load,
                self.overload_duration,
            ),
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pam_core::ResourceModel;
    use pam_types::Device;

    #[test]
    fn default_scenario_overloads_the_nic_only_after_the_onset() {
        let scenario = Figure1Scenario::default();
        let runtime = scenario.build_runtime().unwrap();
        let chain = runtime.chain_model();
        let placement = scenario.initial_placement();
        let before = ResourceModel::new(&chain, &placement, scenario.baseline_load);
        let after = ResourceModel::new(&chain, &placement, scenario.overload_load);
        assert!(!before.is_overloaded(Device::SmartNic, 1.0));
        assert!(after.is_overloaded(Device::SmartNic, 1.0));
        assert!(!after.is_overloaded(Device::Cpu, 1.0));
        assert_eq!(scenario.total_duration(), SimDuration::from_millis(30));
        assert_eq!(scenario.overload_onset(), SimDuration::from_millis(6));
    }

    #[test]
    fn fixed_size_scenario_uses_that_size() {
        let scenario = Figure1Scenario::at_packet_size(ByteSize::bytes(256));
        assert_eq!(
            scenario.sizes,
            PacketSizeProfile::Fixed(ByteSize::bytes(256))
        );
        let trace = scenario.build_trace();
        assert_eq!(trace.config().seed, pam_traffic::trace::DEFAULT_TRACE_SEED);
    }
}
