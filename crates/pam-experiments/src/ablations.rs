//! Ablation experiments (A2–A4) beyond the poster's own evaluation.

use pam_core::{
    ChainModel, Decision, LatencyModel, Placement, ResourceModel, StrategyKind, VnfDescriptor,
};
use pam_nf::{NfKind, ServiceChainSpec};
use pam_runtime::{ChainRuntime, RuntimeConfig};
use pam_sim::SimRng;
use pam_traffic::{
    ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, TraceConfig, TraceSynthesizer,
    TrafficSchedule,
};
use pam_types::{ByteSize, Device, Endpoint, Gbps, NfId, SimDuration};

use crate::report::render_table;

/// A3 — one row of the PCIe crossing-latency sweep.
#[derive(Debug, Clone, Copy)]
pub struct PcieSweepRow {
    /// One-way PCIe crossing latency.
    pub crossing_latency: SimDuration,
    /// Chain latency of the original placement (analytical model).
    pub original: SimDuration,
    /// Chain latency after the naive migration.
    pub naive: SimDuration,
    /// Chain latency after the PAM migration.
    pub pam: SimDuration,
    /// PAM's latency reduction vs naive, in percent.
    pub pam_reduction_percent: f64,
}

/// A3 — how the naive-vs-PAM latency gap scales with the PCIe crossing cost.
pub fn pcie_sweep(crossing_latencies: &[SimDuration]) -> Vec<PcieSweepRow> {
    let chain = ChainModel::figure1_example();
    let original = Placement::figure1_initial();
    let mut naive = original.clone();
    naive
        .set(NfId::new(1), Device::Cpu)
        .unwrap_or_else(|_| unreachable!("NF 1 exists in the Figure 1 placement"));
    let mut pam = original.clone();
    pam.set(NfId::new(2), Device::Cpu)
        .unwrap_or_else(|_| unreachable!("NF 2 exists in the Figure 1 placement"));

    crossing_latencies
        .iter()
        .map(|&latency| {
            let model = LatencyModel::with_crossing_latency(latency);
            let l_orig = model.chain_latency(&chain, &original);
            let l_naive = model.chain_latency(&chain, &naive);
            let l_pam = model.chain_latency(&chain, &pam);
            let reduction = (l_naive.as_nanos() as f64 - l_pam.as_nanos() as f64)
                / l_naive.as_nanos().max(1) as f64
                * 100.0;
            PcieSweepRow {
                crossing_latency: latency,
                original: l_orig,
                naive: l_naive,
                pam: l_pam,
                pam_reduction_percent: reduction,
            }
        })
        .collect()
}

/// Renders the A3 sweep.
pub fn render_pcie_sweep(rows: &[PcieSweepRow]) -> String {
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.crossing_latency.as_micros_f64()),
                format!("{:.1}", r.original.as_micros_f64()),
                format!("{:.1}", r.naive.as_micros_f64()),
                format!("{:.1}", r.pam.as_micros_f64()),
                format!("{:.1}%", r.pam_reduction_percent),
            ]
        })
        .collect();
    render_table(
        "Ablation A3: chain latency vs PCIe crossing latency (us)",
        &["crossing (us)", "Original", "Naive", "PAM", "PAM vs Naive"],
        &rendered,
    )
}

/// A2 — aggregate comparison of strategies over randomly generated chains.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrategySweepSummary {
    /// Scenarios in which the strategy produced a migration plan.
    pub plans: usize,
    /// Scenarios in which it reported scale-out.
    pub scale_outs: usize,
    /// Scenarios in which it relieved the SmartNIC (model-level check).
    pub relieved: usize,
    /// Total vNFs migrated across all scenarios.
    pub total_moves: usize,
    /// Total PCIe crossings added across all scenarios.
    pub crossings_added: isize,
}

/// A2 — runs every strategy over `scenarios` random overloaded chains and
/// summarises how often each relieves the overload and at what cost.
pub fn strategy_sweep(scenarios: usize, seed: u64) -> Vec<(StrategyKind, StrategySweepSummary)> {
    let mut rng = SimRng::seed_from(seed);
    let mut cases = Vec::new();
    for _ in 0..scenarios {
        let len = rng.index(6) + 3;
        let vnfs: Vec<VnfDescriptor> = (0..len)
            .map(|i| {
                VnfDescriptor::new(
                    NfId::from(i),
                    &format!("vnf{i}"),
                    Gbps::new(rng.uniform_range(1.5, 12.0)),
                    Gbps::new(rng.uniform_range(1.5, 12.0)),
                )
                .with_load_factor(rng.uniform_range(0.2, 1.0))
            })
            .collect();
        let chain = ChainModel::new("random", Endpoint::Host, Endpoint::Wire, vnfs);
        // Figure-1 shaped initial placement: everything on the NIC except the
        // last hop.
        let devices = (0..len)
            .map(|i| {
                if i + 1 == len {
                    Device::Cpu
                } else {
                    Device::SmartNic
                }
            })
            .collect();
        let placement = Placement::from_devices(devices);
        // Offer load slightly above the NIC's sustainable point so the
        // scenario is genuinely overloaded.
        let sustainable = ResourceModel::new(&chain, &placement, Gbps::new(1.0))
            .sustainable_throughput()
            .as_gbps();
        let offered = Gbps::new(sustainable * rng.uniform_range(1.05, 1.45));
        cases.push((chain, placement, offered));
    }

    StrategyKind::ALL
        .iter()
        .map(|&kind| {
            let strategy = kind.build();
            let mut summary = StrategySweepSummary::default();
            for (chain, placement, offered) in &cases {
                match strategy.decide(chain, placement, *offered) {
                    Decision::Migrate(plan) => {
                        summary.plans += 1;
                        summary.total_moves += plan.len();
                        let mut after = placement.clone();
                        for mv in &plan.moves {
                            let _ = after.set(mv.nf, mv.to);
                        }
                        summary.crossings_added += after.pcie_crossings(chain) as isize
                            - placement.pcie_crossings(chain) as isize;
                        let model = ResourceModel::new(chain, &after, *offered);
                        if !model.is_overloaded(Device::SmartNic, 1.0) {
                            summary.relieved += 1;
                        }
                    }
                    Decision::ScaleOut => summary.scale_outs += 1,
                    Decision::NoAction => {}
                }
            }
            (kind, summary)
        })
        .collect()
}

/// Renders the A2 sweep.
pub fn render_strategy_sweep(
    rows: &[(StrategyKind, StrategySweepSummary)],
    scenarios: usize,
) -> String {
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|(kind, s)| {
            vec![
                kind.label().to_string(),
                format!("{}", s.plans),
                format!("{}", s.relieved),
                format!("{}", s.scale_outs),
                format!("{}", s.total_moves),
                format!("{}", s.crossings_added),
            ]
        })
        .collect();
    render_table(
        &format!("Ablation A2: strategies over {scenarios} random overloaded chains"),
        &[
            "strategy",
            "plans",
            "relieved NIC",
            "scale-outs",
            "vNFs moved",
            "crossings added",
        ],
        &rendered,
    )
}

/// A4 — one row of the migration-cost sweep.
#[derive(Debug, Clone, Copy)]
pub struct MigrationCostRow {
    /// Number of flows warmed into the monitor before migrating it.
    pub flows: usize,
    /// Serialised state size transferred over PCIe.
    pub state_size: ByteSize,
    /// Blackout (pause) duration of the migration.
    pub blackout: SimDuration,
}

/// A4 — live-migration cost as a function of the migrating vNF's flow-table
/// size (the reason PAM's border pick — the small Logger — also migrates
/// faster than the naive pick — the large Monitor).
pub fn migration_cost_sweep(flow_counts: &[usize]) -> Vec<MigrationCostRow> {
    flow_counts
        .iter()
        .map(|&flows| {
            let spec = ServiceChainSpec::new(
                "monitor-only",
                Endpoint::Wire,
                Endpoint::Wire,
                vec![NfKind::Monitor],
            );
            let placement = Placement::all_on(Device::SmartNic, 1);
            let Ok(mut runtime) =
                ChainRuntime::new(spec, &placement, RuntimeConfig::evaluation_default())
            else {
                unreachable!("the fixed monitor-only chain always builds");
            };
            // Warm the flow table with the requested number of flows.
            let mut trace = TraceSynthesizer::new(TraceConfig {
                sizes: PacketSizeProfile::Fixed(ByteSize::bytes(256)),
                flows: FlowGeneratorConfig {
                    flow_count: flows.max(1),
                    zipf_exponent: 0.0,
                    tcp_fraction: 1.0,
                },
                arrival: ArrivalProcess::Cbr,
                schedule: TrafficSchedule::constant(
                    Gbps::new(1.0),
                    SimDuration::from_micros((flows.max(1) as u64) * 3),
                ),
                seed: 99,
            });
            runtime.run_to_completion(&mut trace);
            let Ok(report) = runtime.live_migrate(NfId::new(0), Device::Cpu, runtime.now()) else {
                unreachable!("migrating the only NF off an idle chain cannot fail");
            };
            MigrationCostRow {
                flows: report.flows_transferred,
                state_size: report.state_size,
                blackout: report.blackout(),
            }
        })
        .collect()
}

/// Renders the A4 sweep.
pub fn render_migration_cost(rows: &[MigrationCostRow]) -> String {
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.flows),
                format!("{}", r.state_size),
                format!("{:.1}", r.blackout.as_micros_f64()),
            ]
        })
        .collect();
    render_table(
        "Ablation A4: live-migration cost vs flow-table size",
        &["flows", "state transferred", "blackout (us)"],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_sweep_gap_grows_with_crossing_latency() {
        let rows = pcie_sweep(&[
            SimDuration::from_micros(2),
            SimDuration::from_micros(22),
            SimDuration::from_micros(60),
        ]);
        assert_eq!(rows.len(), 3);
        // The absolute naive-vs-PAM gap grows with the crossing latency.
        let gap = |r: &PcieSweepRow| r.naive.as_nanos() - r.pam.as_nanos();
        assert!(gap(&rows[2]) > gap(&rows[1]));
        assert!(gap(&rows[1]) > gap(&rows[0]));
        // PAM never exceeds naive.
        assert!(rows.iter().all(|r| r.pam <= r.naive));
        assert!(render_pcie_sweep(&rows).contains("PAM vs Naive"));
    }

    #[test]
    fn strategy_sweep_shows_pam_never_adds_crossings() {
        let rows = strategy_sweep(40, 7);
        let pam = rows
            .iter()
            .find(|(k, _)| *k == StrategyKind::Pam)
            .map(|(_, s)| *s)
            .unwrap();
        assert!(pam.crossings_added <= 0);
        let naive = rows
            .iter()
            .find(|(k, _)| *k == StrategyKind::NaiveBottleneck)
            .map(|(_, s)| *s)
            .unwrap();
        // The naive baseline adds crossings over the sweep.
        assert!(naive.crossings_added > 0);
        // PAM relieves at least as many scenarios as it plans minus none.
        assert_eq!(pam.relieved, pam.plans);
        assert!(render_strategy_sweep(&rows, 40).contains("Naive"));
    }

    #[test]
    fn migration_cost_grows_with_flow_count() {
        let rows = migration_cost_sweep(&[100, 2000]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].flows > rows[0].flows);
        assert!(rows[1].state_size > rows[0].state_size);
        assert!(rows[1].blackout >= rows[0].blackout);
        assert!(render_migration_cost(&rows).contains("blackout"));
    }
}
