//! E2/E3 — reproducing Figure 2: service-chain latency and throughput under
//! the Original, Naive and PAM configurations.
//!
//! Each strategy is evaluated on the same Figure 1 scenario: traffic runs at
//! a comfortable baseline, then fluctuates up to a level that overloads the
//! SmartNIC; the orchestrator (running the strategy under test) reacts.
//! Measurements follow the poster's reading:
//!
//! * **latency** — the "Original" bar is the chain *before migration*
//!   (measured during the baseline phase: the poster compares PAM's
//!   post-migration latency against the pre-migration latency and finds them
//!   almost unchanged), while the Naive and PAM bars are measured after the
//!   respective migration has settled;
//! * **throughput** — all three bars are the delivered throughput during the
//!   overload phase (for "Original" the overloaded SmartNIC keeps dropping,
//!   which is why migration helps at all).
//!
//! The packet size is swept over the paper's 64 B – 1500 B set and the
//! figures report the average across sizes, as in the poster.

use pam_core::StrategyKind;
use pam_orchestrator::{Orchestrator, OrchestratorConfig};
use pam_types::{ByteSize, Gbps, SimDuration, SimTime};

use crate::report::render_table;
use crate::scenarios::Figure1Scenario;

/// Configuration of the Figure 2 reproduction.
#[derive(Debug, Clone)]
pub struct Figure2Config {
    /// Packet sizes to sweep (averaged in the reported figures).
    pub packet_sizes: Vec<ByteSize>,
    /// The strategies to compare (defaults to the paper's three bars).
    pub strategies: Vec<StrategyKind>,
    /// The scenario template (loads, durations, seed).
    pub scenario: Figure1Scenario,
}

impl Default for Figure2Config {
    fn default() -> Self {
        Figure2Config {
            packet_sizes: pam_traffic::size::PAPER_SWEEP_SIZES
                .iter()
                .map(|&b| ByteSize::bytes(b))
                .collect(),
            strategies: StrategyKind::FIGURE2.to_vec(),
            scenario: Figure1Scenario::default(),
        }
    }
}

impl Figure2Config {
    /// A faster configuration for tests and smoke runs: two packet sizes and
    /// shorter phases.
    pub fn quick() -> Self {
        Figure2Config {
            packet_sizes: vec![ByteSize::bytes(256), ByteSize::bytes(1024)],
            scenario: Figure1Scenario {
                baseline_duration: SimDuration::from_millis(4),
                overload_duration: SimDuration::from_millis(12),
                ..Figure1Scenario::default()
            },
            ..Default::default()
        }
    }
}

/// One bar of Figure 2 (averaged over the packet-size sweep).
#[derive(Debug, Clone)]
pub struct Figure2Row {
    /// The strategy ("Original", "Naive", "PAM").
    pub strategy: StrategyKind,
    /// Mean service-chain latency.
    pub mean_latency: SimDuration,
    /// 99th-percentile latency.
    pub p99_latency: SimDuration,
    /// Delivered throughput during the overload phase.
    pub throughput: Gbps,
    /// Mean PCIe crossings per delivered packet.
    pub crossings_per_packet: f64,
    /// vNFs migrated by the strategy.
    pub migrations: usize,
    /// Packets dropped in the overload phase (overload + migration drops).
    pub dropped: u64,
}

/// The full Figure 2 reproduction.
#[derive(Debug, Clone)]
pub struct Figure2Results {
    /// One row per strategy.
    pub rows: Vec<Figure2Row>,
}

impl Figure2Results {
    /// The row for a strategy.
    pub fn row(&self, strategy: StrategyKind) -> Option<&Figure2Row> {
        self.rows.iter().find(|r| r.strategy == strategy)
    }

    /// PAM's latency reduction relative to the naive migration, in percent
    /// (the paper reports ~18 %).
    pub fn pam_latency_reduction_vs_naive(&self) -> f64 {
        let (Some(naive), Some(pam)) = (
            self.row(StrategyKind::NaiveBottleneck),
            self.row(StrategyKind::Pam),
        ) else {
            return 0.0;
        };
        let naive_ns = naive.mean_latency.as_nanos() as f64;
        let pam_ns = pam.mean_latency.as_nanos() as f64;
        if naive_ns <= 0.0 {
            return 0.0;
        }
        (naive_ns - pam_ns) / naive_ns * 100.0
    }

    /// Renders Figure 2(a): the latency comparison.
    pub fn render_latency(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                vec![
                    row.strategy.label().to_string(),
                    format!("{:.1}", row.mean_latency.as_micros_f64()),
                    format!("{:.1}", row.p99_latency.as_micros_f64()),
                    format!("{:.2}", row.crossings_per_packet),
                ]
            })
            .collect();
        render_table(
            "Figure 2(a): service chain latency",
            &[
                "strategy",
                "mean latency (us)",
                "p99 (us)",
                "PCIe crossings/pkt",
            ],
            &rows,
        )
    }

    /// Renders Figure 2(b): the throughput comparison.
    pub fn render_throughput(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                vec![
                    row.strategy.label().to_string(),
                    format!("{:.2}", row.throughput.as_gbps()),
                    format!("{}", row.migrations),
                    format!("{}", row.dropped),
                ]
            })
            .collect();
        render_table(
            "Figure 2(b): service chain throughput",
            &[
                "strategy",
                "throughput (Gbps)",
                "migrations",
                "drops (overload phase)",
            ],
            &rows,
        )
    }
}

struct SingleRun {
    latency_mean: SimDuration,
    latency_p99: SimDuration,
    throughput: Gbps,
    crossings_per_packet: f64,
    migrations: usize,
    dropped: u64,
}

/// Runs one strategy at one packet size and measures the relevant windows.
fn run_single(strategy: StrategyKind, size: ByteSize, scenario: &Figure1Scenario) -> SingleRun {
    let scenario = Figure1Scenario {
        sizes: pam_traffic::PacketSizeProfile::Fixed(size),
        ..scenario.clone()
    };
    let Ok(mut runtime) = scenario.build_runtime() else {
        unreachable!("the Figure 1 scenario always builds");
    };
    let mut trace = scenario.build_trace();
    let mut orchestrator = Orchestrator::new(OrchestratorConfig::with_strategy(strategy));

    let poll = orchestrator.config().poll_interval;
    let onset = SimTime::ZERO + scenario.overload_onset();
    let total = SimTime::ZERO + scenario.total_duration();
    // Let the first half of the overload phase absorb the migration
    // blackout and queue transients before measuring.
    let settle = onset + (scenario.overload_duration / 2);

    // Baseline phase: measure the pre-migration ("Original") latency window
    // between 1 ms and the overload onset.
    let baseline_measure_start = SimTime::from_millis(1).min(onset);
    runtime.run_until(&mut trace, baseline_measure_start);
    runtime.start_measurement(baseline_measure_start);

    // Drive the control loop from the start (polling also happens during the
    // baseline so the orchestrator proves it does not act without overload).
    let mut next_poll = SimTime::ZERO + poll;
    let mut baseline_report = None;
    let mut drops_at_settle = 0;
    let mut measuring_overload = false;
    while next_poll <= total {
        runtime.run_until(&mut trace, next_poll);
        orchestrator.control_step(&mut runtime, next_poll);
        if baseline_report.is_none() && next_poll >= onset {
            baseline_report = Some(runtime.measure(next_poll));
        }
        if !measuring_overload && next_poll >= settle {
            let outcome = runtime.outcome();
            drops_at_settle = outcome.drops_overload + outcome.drops_migration;
            runtime.start_measurement(next_poll);
            measuring_overload = true;
        }
        next_poll += poll;
    }
    runtime.run_until(&mut trace, total);

    let overload_report = runtime.measure(total);
    let baseline_report = baseline_report.unwrap_or(overload_report);
    let outcome = runtime.outcome();
    let crossings_per_packet = if outcome.delivered > 0 {
        outcome.pcie_crossings as f64 / outcome.delivered as f64
    } else {
        0.0
    };

    // Latency: Original = before migration; migrating strategies = after.
    let (latency_mean, latency_p99) = if strategy == StrategyKind::Original {
        (baseline_report.mean_latency, baseline_report.p99_latency)
    } else {
        (overload_report.mean_latency, overload_report.p99_latency)
    };

    SingleRun {
        latency_mean,
        latency_p99,
        throughput: overload_report.delivered,
        crossings_per_packet,
        migrations: outcome.migrations.len(),
        dropped: (outcome.drops_overload + outcome.drops_migration).saturating_sub(drops_at_settle),
    }
}

/// Runs the full Figure 2 reproduction.
pub fn run_figure2(config: &Figure2Config) -> Figure2Results {
    let rows = config
        .strategies
        .iter()
        .map(|&strategy| {
            let runs: Vec<SingleRun> = config
                .packet_sizes
                .iter()
                .map(|&size| run_single(strategy, size, &config.scenario))
                .collect();
            let n = runs.len().max(1) as f64;
            let mean_latency = SimDuration::from_nanos(
                (runs.iter().map(|r| r.latency_mean.as_nanos()).sum::<u64>() as f64 / n) as u64,
            );
            let p99_latency = SimDuration::from_nanos(
                (runs.iter().map(|r| r.latency_p99.as_nanos()).sum::<u64>() as f64 / n) as u64,
            );
            let throughput =
                Gbps::new(runs.iter().map(|r| r.throughput.as_gbps()).sum::<f64>() / n);
            let crossings_per_packet = runs.iter().map(|r| r.crossings_per_packet).sum::<f64>() / n;
            let migrations = runs.iter().map(|r| r.migrations).max().unwrap_or(0);
            let dropped = runs.iter().map(|r| r.dropped).sum::<u64>() / runs.len().max(1) as u64;
            Figure2Row {
                strategy,
                mean_latency,
                p99_latency,
                throughput,
                crossings_per_packet,
                migrations,
                dropped,
            }
        })
        .collect();
    Figure2Results { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_figure2_reproduces_the_paper_shape() {
        let results = run_figure2(&Figure2Config::quick());
        let original = results.row(StrategyKind::Original).unwrap();
        let naive = results.row(StrategyKind::NaiveBottleneck).unwrap();
        let pam = results.row(StrategyKind::Pam).unwrap();

        // Figure 2(a): PAM latency is well below naive and close to original.
        assert!(pam.mean_latency < naive.mean_latency);
        let reduction = results.pam_latency_reduction_vs_naive();
        assert!(
            (8.0..35.0).contains(&reduction),
            "latency reduction {reduction:.1}% out of band"
        );
        let drift = (pam.mean_latency.as_micros_f64() - original.mean_latency.as_micros_f64())
            .abs()
            / original.mean_latency.as_micros_f64();
        assert!(drift < 0.10, "PAM vs original drift {drift:.3}");

        // Figure 2(b): both migrations beat the overloaded original; PAM is
        // at least as good as naive.
        assert!(naive.throughput.as_gbps() > original.throughput.as_gbps());
        assert!(pam.throughput.as_gbps() >= naive.throughput.as_gbps() * 0.98);

        // Crossing structure matches Figure 1.
        assert!(naive.crossings_per_packet > pam.crossings_per_packet);
        assert_eq!(original.migrations, 0);
        assert_eq!(naive.migrations, 1);
        assert_eq!(pam.migrations, 1);

        // Rendering contains the paper's labels.
        let latency_table = results.render_latency();
        assert!(latency_table.contains("Original"));
        assert!(latency_table.contains("PAM"));
        let throughput_table = results.render_throughput();
        assert!(throughput_table.contains("throughput (Gbps)"));
    }
}
