//! E1 — reproducing Table 1: vNF capacities on the SmartNIC and CPU.

use pam_nf::{NfKind, ProfileCatalog};
use pam_runtime::{probe_capacity, CapacityProbeResult};
use pam_types::Device;

use crate::report::render_table;

/// The measured capacities of one vNF kind on both devices.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// The vNF kind.
    pub kind: NfKind,
    /// Probe result on the SmartNIC.
    pub nic: CapacityProbeResult,
    /// Probe result on the CPU.
    pub cpu: CapacityProbeResult,
}

/// The full Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Results {
    /// One row per vNF kind, in the paper's column order.
    pub rows: Vec<Table1Row>,
}

impl Table1Results {
    /// Renders the table in the paper's layout (vNFs as columns are awkward
    /// in plain text, so vNFs are rows here; the numbers are what matters).
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                vec![
                    row.kind.name().to_string(),
                    format!("{:.2}", row.nic.measured.as_gbps()),
                    format!("{:.2}", row.nic.configured.as_gbps()),
                    format!("{:.2}", row.cpu.measured.as_gbps()),
                    format!("{:.2}", row.cpu.configured.as_gbps()),
                ]
            })
            .collect();
        render_table(
            "Table 1: capacity of vNFs on the SmartNIC and CPU (Gbps)",
            &["vNF", "θS measured", "θS paper", "θC measured", "θC paper"],
            &rows,
        )
    }

    /// The worst relative error across every measurement.
    pub fn worst_relative_error(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| [r.nic.relative_error(), r.cpu.relative_error()])
            .fold(0.0, f64::max)
    }
}

/// Runs the capacity probe for every vNF of the paper's Table 1 on both
/// devices. `kinds` defaults to the paper's four vNFs when empty.
///
/// Fails with a typed error when a requested kind has no registered capacity
/// profile instead of aborting mid-experiment.
pub fn run_table1(kinds: &[NfKind]) -> pam_types::Result<Table1Results> {
    let catalog = ProfileCatalog::table1();
    let kinds: Vec<NfKind> = if kinds.is_empty() {
        NfKind::FIGURE1.to_vec()
    } else {
        kinds.to_vec()
    };
    let mut rows = Vec::with_capacity(kinds.len());
    for kind in kinds {
        rows.push(Table1Row {
            kind,
            nic: probe_capacity(kind, Device::SmartNic, &catalog)?,
            cpu: probe_capacity(kind, Device::Cpu, &catalog)?,
        });
    }
    Ok(Table1Results { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logger_row_reproduces_the_paper_within_tolerance() {
        let results = run_table1(&[NfKind::Logger]).unwrap();
        assert_eq!(results.rows.len(), 1);
        let row = &results.rows[0];
        assert!((row.nic.measured.as_gbps() - 2.0).abs() / 2.0 < 0.1);
        assert!((row.cpu.measured.as_gbps() - 4.0).abs() / 4.0 < 0.1);
        assert!(results.worst_relative_error() < 0.1);
        let text = results.render();
        assert!(text.contains("Logger"));
        assert!(text.contains("θS measured"));
    }
}
