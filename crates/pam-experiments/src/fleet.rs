//! The fleet scenario matrix.
//!
//! Four fleet-level traffic shapes stress different rungs of the decision
//! ladder (see `pam-fleet`):
//!
//! | Scenario | Shape | What it stresses |
//! |----------|-------|------------------|
//! | `diurnal_wave` | a staircase up and back down, phase-shifted per server | local migration and scale-in |
//! | `flash_crowd` | one server slammed far past both devices' capacity | cross-server scale-out |
//! | `rolling_hotspot` | an overload that walks across the servers in turn | repeated migrate/recover cycles |
//! | `correlated_overload` | every server slammed at once | the scale-out-blocked path |
//!
//! Every scenario runs under either live-migration transfer mode
//! ([`MigrationMode`], the benchmark matrix covers both), and is fully
//! seeded: the same [`FleetScenario`] produces the same packet trace, the
//! same decisions and a byte-identical [`pam_fleet::FleetReport`], which is
//! what lets CI gate on the committed `BENCH_baseline.json`.

use pam_core::{Placement, StrategyKind};
use pam_fleet::{
    EstimatorConfig, EstimatorKind, Fleet, FleetConfig, FleetReport, ServerSpec, ShardLane,
    ShardRunStats,
};
use pam_nf::ServiceChainSpec;
use pam_runtime::{MigrationMode, RuntimeConfig, RuntimeTuning};
use pam_sim::{LinkModel, PcieLinkConfig};
use pam_traffic::{
    ArrivalProcess, FlowGeneratorConfig, PacketSizeProfile, Phase, TraceConfig, TrafficSchedule,
};
use pam_types::{Gbps, PamError, Result, SimDuration, SimTime};
use serde::value::{Map, Value};
use serde::{Deserialize, Error, Serialize};

/// The default seed of the fleet benchmarks (kept stable: CI compares
/// reports against a committed baseline).
pub const DEFAULT_FLEET_SEED: u64 = 2018;

/// The four fleet-level traffic shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FleetScenarioKind {
    /// A staircase up and back down, phase-shifted per server.
    DiurnalWave,
    /// One server slammed far past both devices' capacity.
    FlashCrowd,
    /// An overload that walks across the servers in turn.
    RollingHotspot,
    /// Every server slammed at once; scale-out has nowhere to go.
    CorrelatedOverload,
}

impl FleetScenarioKind {
    /// Every scenario, in matrix order.
    pub const ALL: [FleetScenarioKind; 4] = [
        FleetScenarioKind::DiurnalWave,
        FleetScenarioKind::FlashCrowd,
        FleetScenarioKind::RollingHotspot,
        FleetScenarioKind::CorrelatedOverload,
    ];

    /// The machine-readable name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            FleetScenarioKind::DiurnalWave => "diurnal_wave",
            FleetScenarioKind::FlashCrowd => "flash_crowd",
            FleetScenarioKind::RollingHotspot => "rolling_hotspot",
            FleetScenarioKind::CorrelatedOverload => "correlated_overload",
        }
    }

    /// Parses a CLI scenario name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for FleetScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The experiment dimensions of a [`FleetScenario`], bundled.
///
/// Every dimension defaults to the committed-baseline knob, so
/// `FleetTuning::default()` reproduces `BENCH_baseline.json` and an
/// ablation overrides exactly the dimensions it moves. New dimensions are
/// added here (one field, one builder) instead of as parallel `with_*`
/// setters on [`FleetScenario`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetTuning {
    /// How every server transfers state during live migration.
    pub migration_mode: MigrationMode,
    /// Doorbell batch size of every server's datapath (1 = unbatched; see
    /// [`pam_runtime::BatchConfig`]).
    pub batch: u32,
    /// Throughput model of every link in the fleet — each server's PCIe link
    /// and the inter-server steering interconnect (FIFO-fixed baseline or
    /// contention-aware fair sharing; see [`pam_sim::LinkModel`]).
    pub link_model: LinkModel,
    /// Which load estimator feeds the fleet controller's decision ladder
    /// (exact per-flow accounting, or the sliding heavy-hitter sketch).
    pub estimator: EstimatorKind,
    /// Synthetic flows per server's trace (the fleet-wide flow population is
    /// `servers x flows`). The baseline 2000; the million-flow nightly cell
    /// raises it to stress estimator memory.
    pub flows: usize,
}

impl Default for FleetTuning {
    fn default() -> Self {
        FleetTuning {
            migration_mode: MigrationMode::StopAndCopy,
            batch: 1,
            link_model: LinkModel::FifoFixed,
            estimator: EstimatorKind::Exact,
            flows: 2000,
        }
    }
}

impl FleetTuning {
    /// Overrides the live-migration transfer mode.
    pub fn with_mode(mut self, mode: MigrationMode) -> Self {
        self.migration_mode = mode;
        self
    }

    /// Overrides the doorbell batch size (1 restores the unbatched baseline).
    pub fn with_batch(mut self, batch: u32) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Overrides the link throughput model.
    pub fn with_link_model(mut self, link_model: LinkModel) -> Self {
        self.link_model = link_model;
        self
    }

    /// Overrides the load estimator kind.
    pub fn with_estimator(mut self, estimator: EstimatorKind) -> Self {
        self.estimator = estimator;
        self
    }

    /// Overrides the per-server flow population.
    pub fn with_flows(mut self, flows: usize) -> Self {
        self.flows = flows.max(1);
        self
    }
}

/// One concrete, fully seeded fleet scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetScenario {
    /// The traffic shape.
    pub kind: FleetScenarioKind,
    /// Number of servers in the fleet.
    pub servers: usize,
    /// The comfortable per-server load.
    pub baseline: Gbps,
    /// The overload every scenario ramps some server(s) to.
    pub peak: Gbps,
    /// The experiment dimensions (migration mode, batch, link model,
    /// estimator, flow population) — see [`FleetTuning`].
    pub tuning: FleetTuning,
    /// Base RNG seed; server `i` traces with `seed + i`.
    pub seed: u64,
}

impl FleetScenario {
    /// The scenario with the benchmark defaults: 1.4 Gbps baseline, a
    /// mildly overloading 1.90 Gbps migratable peak (SmartNIC utilisation
    /// ≈ 1.05 on the figure-1 chain — enough to force migration, mild
    /// enough that the pre-migration queueing transient stays a small
    /// fraction of the run) and the stable benchmark seed.
    pub fn new(kind: FleetScenarioKind, servers: usize) -> Self {
        FleetScenario {
            kind,
            servers,
            baseline: Gbps::new(1.4),
            peak: Gbps::new(1.90),
            tuning: FleetTuning::default(),
            seed: DEFAULT_FLEET_SEED,
        }
    }

    /// The same scenario under the given experiment tuning — the single
    /// builder path for every ablation dimension.
    pub fn with_tuning(mut self, tuning: FleetTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// The same scenario running the given live-migration transfer mode.
    #[deprecated(
        since = "0.6.0",
        note = "use `with_tuning(FleetTuning::default().with_mode(..))` — \
                one builder path for every experiment dimension"
    )]
    pub fn with_mode(mut self, mode: MigrationMode) -> Self {
        self.tuning = self.tuning.with_mode(mode);
        self
    }

    /// The same scenario with every server's datapath batching up to `batch`
    /// packets per doorbell (1 restores the unbatched baseline).
    #[deprecated(
        since = "0.6.0",
        note = "use `with_tuning(FleetTuning::default().with_batch(..))` — \
                one builder path for every experiment dimension"
    )]
    pub fn with_batch(mut self, batch: u32) -> Self {
        self.tuning = self.tuning.with_batch(batch);
        self
    }

    /// The same scenario running every link — per-server PCIe and the
    /// inter-server interconnect — under the given throughput model
    /// ([`LinkModel::FifoFixed`] restores the committed-baseline behaviour).
    #[deprecated(
        since = "0.6.0",
        note = "use `with_tuning(FleetTuning::default().with_link_model(..))` — \
                one builder path for every experiment dimension"
    )]
    pub fn with_link_model(mut self, link_model: LinkModel) -> Self {
        self.tuning = self.tuning.with_link_model(link_model);
        self
    }

    /// A load far past what migration can relieve on one box (both devices
    /// saturate): what flash crowds and correlated overloads ramp to.
    fn hopeless_peak(&self) -> Gbps {
        Gbps::new(3.8)
    }

    /// Duration of one scenario phase. The rolling hotspot uses longer
    /// phases: its comparison hinges on steady-state placement quality, so
    /// each visit must dwarf the reaction transient.
    fn phase_len(&self) -> SimDuration {
        match self.kind {
            FleetScenarioKind::RollingHotspot => SimDuration::from_millis(16),
            _ => SimDuration::from_millis(8),
        }
    }

    /// Total simulated horizon of the scenario.
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.schedule_for(0).total_duration()
    }

    /// The offered-load schedule of server `index`.
    pub fn schedule_for(&self, index: usize) -> TrafficSchedule {
        let step = self.phase_len();
        match self.kind {
            // Staircase 60% → 85% → 100% → 85% → 60% of the migratable
            // peak (the top phase *is* the overload), rotated by one phase
            // per server so the fleet's "day" does not hit every server at
            // once.
            FleetScenarioKind::DiurnalWave => {
                let ladder = [0.6, 0.85, 1.0, 0.85, 0.6];
                let phases: Vec<Phase> = (0..ladder.len())
                    .map(|p| {
                        let factor = ladder[(p + index) % ladder.len()];
                        Phase::new(Gbps::new(self.peak.as_gbps() * factor), step)
                    })
                    .collect();
                TrafficSchedule::from_phases(phases)
            }
            // Server 0 is slammed to the hopeless peak for two phases while
            // the rest of the fleet idles at 1.0 Gbps (SmartNIC utilisation
            // ≈ 0.54 — low enough to qualify as a scale-out recipient).
            FleetScenarioKind::FlashCrowd => {
                let idle = Gbps::new(1.0);
                let (calm, crowd) = if index == 0 {
                    (self.baseline, self.hopeless_peak())
                } else {
                    (idle, idle)
                };
                TrafficSchedule::from_phases(vec![
                    Phase::new(calm, step),
                    Phase::new(crowd, step + step),
                    Phase::new(calm, step + step),
                ])
            }
            // The overload visits server `index` during phase `index`.
            FleetScenarioKind::RollingHotspot => {
                let phases: Vec<Phase> = (0..self.servers + 1)
                    .map(|p| {
                        let load = if p == index { self.peak } else { self.baseline };
                        Phase::new(load, step)
                    })
                    .collect();
                TrafficSchedule::from_phases(phases)
            }
            // Everyone is slammed at once: there is no recipient with
            // headroom, so the ladder's scale-out rung reports "blocked".
            FleetScenarioKind::CorrelatedOverload => TrafficSchedule::from_phases(vec![
                Phase::new(self.baseline, step),
                Phase::new(self.hopeless_peak(), step + step),
                Phase::new(self.baseline, step),
            ]),
        }
    }

    /// The server spec of server `index` (figure-1 chain and placement).
    ///
    /// The PCIe crossing latency is set to 40 µs — within the A3 ablation's
    /// 2–60 µs sweep, modelling the busier interconnect of a loaded fleet
    /// server. This accentuates what the poster's §3 stresses: a placement
    /// that breaks chain order (the naive migration's NIC→CPU→NIC→CPU path)
    /// pays two extra crossings on *every* packet.
    pub fn server_spec(&self, index: usize) -> ServerSpec {
        ServerSpec {
            chain: ServiceChainSpec::figure1(),
            placement: Placement::figure1_initial(),
            runtime: RuntimeConfig::evaluation_default()
                .with_pcie(PcieLinkConfig {
                    crossing_latency: SimDuration::from_micros(40),
                    ..PcieLinkConfig::default()
                })
                .tuned(
                    &RuntimeTuning::default()
                        .with_link_model(self.tuning.link_model)
                        .with_migration_mode(self.tuning.migration_mode)
                        .with_max_batch(self.tuning.batch as usize),
                ),
            trace: TraceConfig {
                // The paper's mixed packet sizes: service-time variance gives
                // the steady-state latency distribution a real tail, so p99
                // reflects placement quality, not just reaction transients.
                sizes: PacketSizeProfile::paper_sweep(),
                flows: FlowGeneratorConfig {
                    flow_count: self.tuning.flows,
                    zipf_exponent: 1.0,
                    tcp_fraction: 0.8,
                },
                arrival: ArrivalProcess::Cbr,
                schedule: self.schedule_for(index),
                seed: self.seed + index as u64,
            },
        }
    }

    /// The fleet-controller parameters of the benchmark runs: a 0.5 ms
    /// control cadence with a 1.5 ms window (the current tick plus the three
    /// preceding ones — eviction keeps samples aged exactly one window), so
    /// the ladder reacts within ~2 ms of an onset while still ignoring
    /// single-tick blips.
    pub fn fleet_config(&self, strategy: StrategyKind) -> FleetConfig {
        let mut config = FleetConfig::with_strategy(strategy);
        config.orchestrator.poll_interval = SimDuration::from_micros(500);
        config.estimator =
            EstimatorConfig::of(self.tuning.estimator).with_window(SimDuration::from_micros(1_500));
        config.interconnect = config.interconnect.with_link_model(self.tuning.link_model);
        config
    }

    /// Builds the fleet running `strategy` on every server.
    pub fn build_fleet(&self, strategy: StrategyKind) -> Result<Fleet> {
        let specs = (0..self.servers).map(|i| self.server_spec(i)).collect();
        Fleet::new(specs, self.fleet_config(strategy))
    }

    /// Runs the scenario to its horizon and returns the fleet's report.
    pub fn run(&self, strategy: StrategyKind) -> Result<FleetReport> {
        Ok(self.run_with_stats(strategy)?.0)
    }

    /// Runs the scenario and additionally returns the total number of
    /// discrete events the run scheduled (deterministic; feeds the
    /// events/second throughput figures of `fleet_bench --timings`).
    pub fn run_with_stats(&self, strategy: StrategyKind) -> Result<(FleetReport, u64)> {
        let mut fleet = self.build_fleet(strategy)?;
        fleet.run(self.horizon());
        let events = fleet.events_scheduled();
        Ok((fleet.report(), events))
    }

    /// Runs the scenario on `shards` worker lanes (`pam_fleet`'s conservative
    /// time-window runner; `1` is exactly the sequential runner). The report
    /// is byte-identical at any shard count.
    pub fn run_sharded(&self, strategy: StrategyKind, shards: usize) -> Result<FleetReport> {
        Ok(self.run_with_stats_sharded(strategy, shards)?.0)
    }

    /// Like [`FleetScenario::run_with_stats`] but sharded, additionally
    /// returning the runner's wall-clock side channel (per-lane event counts
    /// and barrier-wait time).
    pub fn run_with_stats_sharded(
        &self,
        strategy: StrategyKind,
        shards: usize,
    ) -> Result<(FleetReport, u64, ShardRunStats)> {
        let mut fleet = self.build_fleet(strategy)?;
        fleet.run_sharded(self.horizon(), shards);
        let events = fleet.events_scheduled();
        let stats = fleet.shard_stats().clone();
        Ok((fleet.report(), events, stats))
    }

    /// Runs the scenario and additionally returns aggregate state-transfer
    /// round accounting, collected from the per-server runtime side channel.
    /// The rounds never enter [`FleetReport`] — its serialized form is what
    /// `BENCH_baseline.json` pins — which is why the link-model ablation
    /// reads them out of band.
    pub fn run_with_round_stats(
        &self,
        strategy: StrategyKind,
    ) -> Result<(FleetReport, RoundStats)> {
        let mut fleet = self.build_fleet(strategy)?;
        fleet.run(self.horizon());
        let rounds = collect_round_stats(&fleet);
        Ok((fleet.report(), rounds))
    }
}

// Hand-serialised with the historical *flat* key layout: the tuning
// dimensions appear as top-level `migration_mode` / `batch` / `link_model` /
// `estimator` / `flows` keys, and every missing key deserialises to the
// committed-baseline default — so scenarios written before a dimension
// existed keep parsing (the vendored serde derive has no
// `#[serde(default)]`).
impl Serialize for FleetScenario {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("kind".to_owned(), self.kind.to_value());
        map.insert("servers".to_owned(), self.servers.to_value());
        map.insert("baseline".to_owned(), self.baseline.to_value());
        map.insert("peak".to_owned(), self.peak.to_value());
        map.insert(
            "migration_mode".to_owned(),
            self.tuning.migration_mode.to_value(),
        );
        map.insert("batch".to_owned(), self.tuning.batch.to_value());
        map.insert("link_model".to_owned(), self.tuning.link_model.to_value());
        map.insert("estimator".to_owned(), self.tuning.estimator.to_value());
        map.insert("flows".to_owned(), self.tuning.flows.to_value());
        map.insert("seed".to_owned(), self.seed.to_value());
        Value::Object(map)
    }
}

impl Deserialize for FleetScenario {
    fn from_value(value: &Value) -> std::result::Result<Self, Error> {
        let map = match value {
            Value::Object(map) => map,
            _ => return Err(Error::custom("FleetScenario must be an object")),
        };
        let kind = FleetScenarioKind::from_value(
            map.get("kind")
                .ok_or_else(|| Error::custom("missing field `kind`"))?,
        )?;
        let servers = usize::from_value(
            map.get("servers")
                .ok_or_else(|| Error::custom("missing field `servers`"))?,
        )?;
        let defaults = FleetScenario::new(kind, servers);
        let mut tuning = defaults.tuning;
        if let Some(value) = map.get("migration_mode") {
            tuning.migration_mode = MigrationMode::from_value(value)?;
        }
        if let Some(value) = map.get("batch") {
            tuning.batch = u32::from_value(value)?;
        }
        if let Some(value) = map.get("link_model") {
            tuning.link_model = LinkModel::from_value(value)?;
        }
        if let Some(value) = map.get("estimator") {
            tuning.estimator = EstimatorKind::from_value(value)?;
        }
        if let Some(value) = map.get("flows") {
            tuning.flows = usize::from_value(value)?;
        }
        Ok(FleetScenario {
            kind,
            servers,
            baseline: match map.get("baseline") {
                Some(value) => Gbps::from_value(value)?,
                None => defaults.baseline,
            },
            peak: match map.get("peak") {
                Some(value) => Gbps::from_value(value)?,
                None => defaults.peak,
            },
            tuning,
            seed: match map.get("seed") {
                Some(value) => u64::from_value(value)?,
                None => defaults.seed,
            },
        })
    }
}

/// Aggregate state-transfer round accounting of one fleet run: every round of
/// every live migration on every server (pre-copy iterations plus the final
/// freeze round; stop-and-copy migrations contribute one round each).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// State-transfer rounds executed fleet-wide.
    pub rounds: u64,
    /// Mean wall-clock duration of a round (including link contention and
    /// queueing), microseconds.
    pub mean_round_us: f64,
    /// Longest single round, microseconds.
    pub max_round_us: f64,
}

/// Walks every server's migration reports and aggregates their per-round
/// transfer durations.
fn collect_round_stats(fleet: &Fleet) -> RoundStats {
    let mut rounds = 0u64;
    let mut total_us = 0.0f64;
    let mut max_us = 0.0f64;
    for server in fleet.servers() {
        for migration in &server.runtime().outcome().migrations {
            for round in &migration.rounds {
                rounds += 1;
                let us = round.duration.as_micros_f64();
                total_us += us;
                max_us = max_us.max(us);
            }
        }
    }
    RoundStats {
        rounds,
        mean_round_us: if rounds > 0 {
            total_us / rounds as f64
        } else {
            0.0
        },
        max_round_us: max_us,
    }
}

/// One cell of the link-model ablation: a (scenario, strategy, link model)
/// triple under pre-copy migration, with the migration-facing report metrics
/// plus the out-of-band round accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkModelCell {
    /// Scenario name (see [`FleetScenarioKind::name`]).
    pub scenario: String,
    /// Strategy name (see [`pam_core::MigrationStrategy::name`]).
    pub strategy: String,
    /// Link throughput model name (see [`LinkModel::name`]).
    pub link_model: String,
    /// Live migrations executed fleet-wide.
    pub migrations: u64,
    /// Total migration-blackout time fleet-wide, microseconds.
    pub blackout_us: f64,
    /// Fleet-wide 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Migration-blackout drops fleet-wide.
    pub drops_migration: u64,
    /// State-transfer rounds executed fleet-wide.
    pub rounds: u64,
    /// Mean wall-clock duration of a round, microseconds.
    pub mean_round_us: f64,
    /// Longest single round, microseconds.
    pub max_round_us: f64,
}

/// The scenarios of the link-model ablation: the migration-heavy shapes,
/// where pre-copy rounds overlap sustained foreground traffic and the two
/// link models actually diverge.
pub const LINK_MODEL_SCENARIOS: [FleetScenarioKind; 2] = [
    FleetScenarioKind::DiurnalWave,
    FleetScenarioKind::RollingHotspot,
];

/// The link throughput models the ablation compares.
pub const LINK_MODEL_MODELS: [LinkModel; 2] = [LinkModel::FifoFixed, LinkModel::fair_share()];

/// Runs the link-model ablation: every migration-heavy scenario × strategy ×
/// link model under pre-copy migration, reporting how the strategy rankings
/// (blackout, p99, migration drops) shift when state transfer has to share
/// the link with foreground DMA — and how much longer the pre-copy rounds
/// themselves take under contention.
pub fn run_link_model_ablation(servers: usize) -> Result<Vec<LinkModelCell>> {
    let mut cells = Vec::new();
    for kind in LINK_MODEL_SCENARIOS {
        for model in LINK_MODEL_MODELS {
            for strategy in FLEET_BENCH_STRATEGIES {
                let scenario = FleetScenario::new(kind, servers).with_tuning(
                    FleetTuning::default()
                        .with_mode(MigrationMode::PreCopy)
                        .with_link_model(model),
                );
                let (report, rounds) = scenario.run_with_round_stats(strategy)?;
                cells.push(LinkModelCell {
                    scenario: kind.name().to_string(),
                    strategy: strategy.build().name().to_string(),
                    link_model: model.name().to_string(),
                    migrations: report.totals.migrations,
                    blackout_us: report.totals.blackout_us,
                    p99_us: report.totals.p99_us,
                    drops_migration: report.totals.drops_migration,
                    rounds: rounds.rounds,
                    mean_round_us: rounds.mean_round_us,
                    max_round_us: rounds.max_round_us,
                });
            }
        }
    }
    Ok(cells)
}

/// One cell of the estimator ablation: a (strategy, estimator kind) pair on
/// the flash-crowd scenario, with the control-quality metrics the decision
/// ladder is judged by plus the out-of-band estimator memory accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorCell {
    /// Scenario name (see [`FleetScenarioKind::name`]).
    pub scenario: String,
    /// Strategy name (see [`pam_core::MigrationStrategy::name`]).
    pub strategy: String,
    /// Estimator kind name (see [`EstimatorKind::name`]).
    pub estimator: String,
    /// Synthetic flows per server's trace.
    pub flows: usize,
    /// Live migrations executed fleet-wide.
    pub migrations: u64,
    /// Scale-out actions executed fleet-wide.
    pub scale_outs: u64,
    /// Fleet-wide 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Packets dropped fleet-wide, all causes.
    pub drops: u64,
    /// Bytes resident in every server's estimator at the end of the run —
    /// the ablation's headline number. Exact estimators grow with distinct
    /// flows; the sketch is fixed at construction.
    pub estimator_bytes: usize,
    /// The estimator's (epsilon, delta) overcount bound: epsilon as a
    /// fraction of the window's bytes, delta the per-query failure
    /// probability ((0, 0) for exact).
    pub epsilon: f64,
    /// See `epsilon`.
    pub delta: f64,
}

/// The scenario of the estimator ablation: the flash crowd, where one
/// server's flow table floods while the ladder has to pick a scale-out
/// recipient — the exact workload where estimator memory scales with the
/// attack and the sketch does not.
pub const ESTIMATOR_SCENARIO: FleetScenarioKind = FleetScenarioKind::FlashCrowd;

/// Runs the estimator ablation: every strategy × estimator kind on the
/// flash crowd at `flows` synthetic flows per server, comparing control
/// quality (migrations, scale-outs, p99, drops) and estimator memory. Both
/// estimators feed the ladder from the same tick-sample window, so the
/// decisions agree — the ablation's point is the memory column: exact
/// per-flow state pays O(distinct flows), the sketch stays at its fixed
/// (epsilon, delta)-bounded footprint.
pub fn run_estimator_ablation(servers: usize, flows: usize) -> Result<Vec<EstimatorCell>> {
    let mut cells = Vec::new();
    for strategy in FLEET_BENCH_STRATEGIES {
        for estimator in EstimatorKind::ALL {
            let scenario = FleetScenario::new(ESTIMATOR_SCENARIO, servers).with_tuning(
                FleetTuning::default()
                    .with_estimator(estimator)
                    .with_flows(flows),
            );
            // Run the fleet directly (not through `run`) so the estimator's
            // resident bytes can be read out of band after the horizon — the
            // memory column must never enter the gated `FleetReport`.
            let mut fleet = scenario.build_fleet(strategy)?;
            fleet.run(scenario.horizon());
            let report = fleet.report();
            let estimator_bytes = fleet
                .servers()
                .iter()
                .map(|s| s.estimator().resident_bytes())
                .sum();
            let (epsilon, delta) = fleet
                .servers()
                .first()
                .map(|s| s.estimator().error_bound())
                .unwrap_or((0.0, 0.0));
            cells.push(EstimatorCell {
                scenario: ESTIMATOR_SCENARIO.name().to_string(),
                strategy: strategy.build().name().to_string(),
                estimator: estimator.name().to_string(),
                flows,
                migrations: report.totals.migrations,
                scale_outs: report.totals.scale_outs,
                p99_us: report.totals.p99_us,
                drops: report.totals.drops_overload
                    + report.totals.drops_policy
                    + report.totals.drops_migration,
                estimator_bytes,
                epsilon,
                delta,
            });
        }
    }
    Ok(cells)
}

/// One cell of the benchmark matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetBenchEntry {
    /// Scenario name (see [`FleetScenarioKind::name`]).
    pub scenario: String,
    /// Strategy name (see [`pam_core::MigrationStrategy::name`]).
    pub strategy: String,
    /// Live-migration transfer mode (see [`MigrationMode::name`]).
    pub migration_mode: String,
    /// Doorbell batch size of the cell's datapath (1 = unbatched).
    pub batch: u32,
    /// The run's full report.
    pub report: FleetReport,
}

/// The whole benchmark matrix, as committed in `BENCH_baseline.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetBenchOutput {
    /// Schema version of the file.
    pub version: u32,
    /// Number of servers per fleet.
    pub servers: usize,
    /// Base RNG seed of every run.
    pub seed: u64,
    /// One entry per (scenario, strategy) cell, in matrix order.
    pub results: Vec<FleetBenchEntry>,
}

/// The strategies the fleet benchmark compares (no-migration baseline,
/// naive bottleneck migration, PAM).
pub const FLEET_BENCH_STRATEGIES: [StrategyKind; 3] = [
    StrategyKind::Original,
    StrategyKind::NaiveBottleneck,
    StrategyKind::Pam,
];

/// The migration modes the fleet benchmark compares.
pub const FLEET_BENCH_MODES: [MigrationMode; 2] =
    [MigrationMode::StopAndCopy, MigrationMode::PreCopy];

/// The doorbell batch sizes the fleet benchmark compares. `1` is the
/// unbatched baseline the historical (v2) numbers are pinned to — those
/// cells reproduce the v2 reports byte-identically — and `8` is the batched
/// datapath.
pub const FLEET_BENCH_BATCHES: [u32; 2] = [1, 8];

/// Per-cell simulator-throughput measurement of one matrix run: how long the
/// cell took on the wall clock and how many discrete events it scheduled.
/// `events` is deterministic; `wall_ms` (and therefore `events_per_sec`) is
/// machine-dependent, which is why timings live *next to* the benchmark
/// output (`fleet_bench --timings`), never inside it — the main JSON must
/// stay byte-identical across runs, thread counts and machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTiming {
    /// Scenario name of the cell.
    pub scenario: String,
    /// Strategy name of the cell.
    pub strategy: String,
    /// Migration mode of the cell.
    pub migration_mode: String,
    /// Doorbell batch size of the cell.
    pub batch: u32,
    /// Shard lanes the cell's fleet ran on (1 = sequential runner).
    pub shards: usize,
    /// Wall-clock time of the cell run, milliseconds.
    pub wall_ms: f64,
    /// Discrete events the run scheduled (deterministic).
    pub events: u64,
    /// Simulator throughput of the cell: `events / wall seconds`.
    pub events_per_sec: f64,
    /// Per-lane event counts, busy time and barrier-wait time of the sharded
    /// runner (empty for sequential cells) — the honest synchronisation
    /// overhead behind the headline speedup.
    pub lanes: Vec<ShardLane>,
}

/// The simulator-throughput side channel of one matrix run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixTimings {
    /// Worker threads the matrix ran on (across-cell parallelism).
    pub jobs: usize,
    /// Shard lanes inside every cell's fleet (within-cell parallelism).
    pub shards: usize,
    /// End-to-end wall clock of the whole matrix, milliseconds.
    pub total_wall_ms: f64,
    /// Sum of all cells' events (deterministic).
    pub total_events: u64,
    /// Per-cell measurements, in canonical matrix order.
    pub cells: Vec<CellTiming>,
    /// The events/sec-vs-servers-vs-shards scaling curve (empty unless the
    /// harness ran one; see [`run_scale_curve`]).
    pub scale: Vec<ScalePoint>,
}

/// One point of the fleet-size × shard-count scaling curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Scenario name the curve runs (the diurnal wave: its horizon is
    /// independent of the fleet size, so events scale with servers).
    pub scenario: String,
    /// Fleet size of the point.
    pub servers: usize,
    /// Shard lanes of the point (1 = sequential runner).
    pub shards: usize,
    /// Wall-clock time of the run, milliseconds (machine-dependent).
    pub wall_ms: f64,
    /// Discrete events the run scheduled (deterministic).
    pub events: u64,
    /// Simulator throughput: `events / wall seconds`.
    pub events_per_sec: f64,
    /// Wall-clock speedup over the sequential run of the same fleet size.
    pub speedup: f64,
    /// Synchronisation windows the sharded runner executed (0 = sequential).
    pub windows: u64,
    /// Per-lane counters (empty for the sequential point).
    pub lanes: Vec<ShardLane>,
}

/// One finished matrix cell: its benchmark entry plus its timing.
type CellOutcome = Result<(FleetBenchEntry, CellTiming)>;

/// The canonical matrix coordinates, in output order.
fn matrix_cells() -> Vec<(FleetScenarioKind, MigrationMode, u32, StrategyKind)> {
    let mut cells = Vec::new();
    for kind in FleetScenarioKind::ALL {
        for mode in FLEET_BENCH_MODES {
            for batch in FLEET_BENCH_BATCHES {
                for strategy in FLEET_BENCH_STRATEGIES {
                    cells.push((kind, mode, batch, strategy));
                }
            }
        }
    }
    cells
}

/// Runs one matrix cell on `shards` lanes, returning its entry and timing.
fn run_cell(
    servers: usize,
    shards: usize,
    (kind, mode, batch, strategy): (FleetScenarioKind, MigrationMode, u32, StrategyKind),
) -> CellOutcome {
    let scenario = FleetScenario::new(kind, servers)
        .with_tuning(FleetTuning::default().with_mode(mode).with_batch(batch));
    let start = std::time::Instant::now();
    let (report, events, shard_stats) = scenario.run_with_stats_sharded(strategy, shards)?;
    let wall = start.elapsed().as_secs_f64();
    let entry = FleetBenchEntry {
        scenario: kind.name().to_string(),
        strategy: strategy.build().name().to_string(),
        migration_mode: mode.name().to_string(),
        batch,
        report,
    };
    let timing = CellTiming {
        scenario: entry.scenario.clone(),
        strategy: entry.strategy.clone(),
        migration_mode: entry.migration_mode.clone(),
        batch,
        shards,
        wall_ms: wall * 1e3,
        events,
        events_per_sec: if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        },
        lanes: shard_stats.lanes,
    };
    Ok((entry, timing))
}

/// Runs the full scenario × migration-mode × batch × strategy matrix with
/// the stable benchmark seed, single-threaded.
pub fn run_fleet_matrix(servers: usize) -> Result<FleetBenchOutput> {
    Ok(run_fleet_matrix_jobs(servers, 1)?.0)
}

/// Runs the full matrix across `jobs` worker threads.
///
/// Every cell is an independent, fully seeded simulation, so cells execute
/// concurrently without sharing any state; workers claim cells from an
/// atomic cursor (deterministic *work list*, racy *assignment*) and write
/// results into the cell's own slot. The output is assembled in canonical
/// matrix order afterwards, so the `FleetBenchOutput` — and its serialized
/// JSON — is byte-identical for every `jobs` value, which CI pins by
/// diffing `--jobs 1` against `--jobs 4` runs. Timings are returned
/// separately (wall-clock is the one machine-dependent number).
pub fn run_fleet_matrix_jobs(
    servers: usize,
    jobs: usize,
) -> Result<(FleetBenchOutput, MatrixTimings)> {
    run_fleet_matrix_opts(servers, jobs, 1)
}

/// Runs the full matrix across `jobs` worker threads with every cell's fleet
/// itself sharded over `shards` lanes (both parallelism dimensions compose:
/// `jobs` spreads independent cells, `shards` splits one fleet's windows).
/// The `FleetBenchOutput` JSON is byte-identical for every `(jobs, shards)`
/// combination — CI's shard-determinism wall diffs shards 1/2/8 crossed with
/// jobs 1/4.
pub fn run_fleet_matrix_opts(
    servers: usize,
    jobs: usize,
    shards: usize,
) -> Result<(FleetBenchOutput, MatrixTimings)> {
    let started = std::time::Instant::now();
    let cells = matrix_cells();
    let jobs = jobs.max(1).min(cells.len());
    let shards = shards.max(1);
    let mut slots: Vec<Option<CellOutcome>> = Vec::new();
    if jobs == 1 {
        slots.extend(
            cells
                .iter()
                .map(|&cell| Some(run_cell(servers, shards, cell))),
        );
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Vec<std::sync::Mutex<Option<CellOutcome>>> =
            cells.iter().map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&cell) = cells.get(index) else {
                        break;
                    };
                    let outcome = run_cell(servers, shards, cell);
                    *results[index].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                });
            }
        });
        slots.extend(
            results
                .into_iter()
                .map(|slot| slot.into_inner().unwrap_or_else(|e| e.into_inner())),
        );
    }

    let mut entries = Vec::with_capacity(slots.len());
    let mut timings = Vec::with_capacity(slots.len());
    for slot in slots {
        let Some(cell) = slot else {
            unreachable!("every cell was claimed and run");
        };
        let (entry, timing) = cell?;
        entries.push(entry);
        timings.push(timing);
    }
    let total_events = timings.iter().map(|t| t.events).sum();
    Ok((
        FleetBenchOutput {
            version: 3,
            servers,
            seed: DEFAULT_FLEET_SEED,
            results: entries,
        },
        MatrixTimings {
            jobs,
            shards,
            total_wall_ms: started.elapsed().as_secs_f64() * 1e3,
            total_events,
            cells: timings,
            scale: Vec::new(),
        },
    ))
}

/// The scenario family of the scaling curve: the diurnal wave, whose horizon
/// is independent of the fleet size (64–256 servers sweep the same 40 ms),
/// so events — and sequential wall time — grow linearly with servers while
/// its spill-free steady state leaves every server an independent shard
/// group.
pub const SCALE_CURVE_SCENARIO: FleetScenarioKind = FleetScenarioKind::DiurnalWave;

/// Runs the events/sec-vs-servers-vs-shards scaling curve: for every fleet
/// size, one sequential reference run plus one sharded run per requested
/// shard count, all under PAM with the stable benchmark seed.
///
/// Every sharded run is byte-compared against the sequential reference
/// report — the curve doubles as a determinism wall at fleet scale — and a
/// divergence is an error, not a silently wrong speedup.
pub fn run_scale_curve(server_counts: &[usize], shard_counts: &[usize]) -> Result<Vec<ScalePoint>> {
    let mut points = Vec::new();
    for &servers in server_counts {
        let scenario = FleetScenario::new(SCALE_CURVE_SCENARIO, servers);
        let start = std::time::Instant::now();
        let (reference, events) = scenario.run_with_stats(StrategyKind::Pam)?;
        let sequential_wall = start.elapsed().as_secs_f64();
        let reference_json = serde_json::to_string(&reference)
            .map_err(|e| PamError::InvalidState(format!("reference report serialization: {e}")))?;
        for &shards in shard_counts {
            let (wall, windows, lanes) = if shards <= 1 {
                (sequential_wall, 0, Vec::new())
            } else {
                let start = std::time::Instant::now();
                let (report, sharded_events, stats) =
                    scenario.run_with_stats_sharded(StrategyKind::Pam, shards)?;
                let wall = start.elapsed().as_secs_f64();
                let json = serde_json::to_string(&report).map_err(|e| {
                    PamError::InvalidState(format!("sharded report serialization: {e}"))
                })?;
                if json != reference_json || sharded_events != events {
                    return Err(PamError::InvalidState(format!(
                        "sharded run diverged from sequential: servers={servers} shards={shards}"
                    )));
                }
                (wall, stats.windows, stats.lanes)
            };
            points.push(ScalePoint {
                scenario: SCALE_CURVE_SCENARIO.name().to_string(),
                servers,
                shards: shards.max(1),
                wall_ms: wall * 1e3,
                events,
                events_per_sec: if wall > 0.0 {
                    events as f64 / wall
                } else {
                    0.0
                },
                speedup: if wall > 0.0 {
                    sequential_wall / wall
                } else {
                    0.0
                },
                windows,
                lanes,
            });
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(
        output: &FleetBenchOutput,
        scenario: FleetScenarioKind,
        strategy: StrategyKind,
        mode: MigrationMode,
        batch: u32,
    ) -> &FleetBenchEntry {
        let strategy = strategy.build().name().to_string();
        output
            .results
            .iter()
            .find(|e| {
                e.scenario == scenario.name()
                    && e.strategy == strategy
                    && e.migration_mode == mode.name()
                    && e.batch == batch
            })
            .expect("matrix cell present")
    }

    #[test]
    fn scenario_names_round_trip() {
        for kind in FleetScenarioKind::ALL {
            assert_eq!(FleetScenarioKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(FleetScenarioKind::from_name("nope"), None);
    }

    #[test]
    fn schedules_cover_the_same_horizon_on_every_server() {
        for kind in FleetScenarioKind::ALL {
            let scenario = FleetScenario::new(kind, 4);
            let total = scenario.schedule_for(0).total_duration();
            for index in 1..4 {
                assert_eq!(
                    scenario.schedule_for(index).total_duration(),
                    total,
                    "{kind} server {index}"
                );
            }
            assert_eq!(scenario.horizon(), SimTime::ZERO + total);
        }
    }

    #[test]
    fn rolling_hotspot_visits_each_server_in_turn() {
        let scenario = FleetScenario::new(FleetScenarioKind::RollingHotspot, 4);
        let step = scenario.phase_len();
        for index in 0..4 {
            let schedule = scenario.schedule_for(index);
            let mid_own_phase = SimTime::ZERO + step * index as u64 + step / 2;
            assert_eq!(schedule.load_at(mid_own_phase), scenario.peak);
            let other = (index + 1) % 4;
            let mid_other_phase = SimTime::ZERO + step * other as u64 + step / 2;
            assert_eq!(schedule.load_at(mid_other_phase), scenario.baseline);
        }
    }

    /// The PR's acceptance criterion: on the 4-server rolling hotspot, PAM
    /// beats both the naive migration and the no-migration baseline on
    /// fleet-wide p99 latency.
    #[test]
    fn pam_beats_both_baselines_on_the_rolling_hotspot_p99() {
        let scenario = FleetScenario::new(FleetScenarioKind::RollingHotspot, 4);
        let pam = scenario.run(StrategyKind::Pam).unwrap();
        let naive = scenario.run(StrategyKind::NaiveBottleneck).unwrap();
        let original = scenario.run(StrategyKind::Original).unwrap();
        assert!(
            pam.totals.p99_us < naive.totals.p99_us,
            "PAM p99 {} !< naive p99 {}",
            pam.totals.p99_us,
            naive.totals.p99_us
        );
        assert!(
            pam.totals.p99_us < original.totals.p99_us,
            "PAM p99 {} !< original p99 {}",
            pam.totals.p99_us,
            original.totals.p99_us
        );
        assert!(pam.totals.migrations > 0, "PAM migrated on the hotspot");
        assert_eq!(original.totals.migrations, 0);
    }

    #[test]
    fn flash_crowd_scales_out_and_correlated_overload_is_blocked() {
        let flash = FleetScenario::new(FleetScenarioKind::FlashCrowd, 4)
            .run(StrategyKind::Pam)
            .unwrap();
        assert!(flash.totals.scale_outs > 0, "flash crowd forces scale-out");
        assert!(flash.totals.resteered_packets > 0);

        let correlated = FleetScenario::new(FleetScenarioKind::CorrelatedOverload, 4)
            .run(StrategyKind::Pam)
            .unwrap();
        assert!(
            correlated.totals.scale_out_blocked > 0,
            "correlated overload leaves no recipient"
        );
    }

    /// The contention tentpole's acceptance criterion: when state transfer
    /// has to fair-share the link with foreground DMA, pre-copy rounds take
    /// measurably longer than under the FIFO-fixed model, where a round's
    /// bytes are serialised at the full line rate.
    #[test]
    fn fair_share_stretches_precopy_rounds_under_foreground_load() {
        let tuning = FleetTuning::default().with_mode(MigrationMode::PreCopy);
        let base = FleetScenario::new(FleetScenarioKind::RollingHotspot, 4).with_tuning(tuning);
        let (_, fifo) = base.run_with_round_stats(StrategyKind::Pam).unwrap();
        let (_, fair) = base
            .with_tuning(tuning.with_link_model(LinkModel::fair_share()))
            .run_with_round_stats(StrategyKind::Pam)
            .unwrap();
        assert!(fifo.rounds > 0, "the hotspot migrates under FIFO");
        assert!(fair.rounds > 0, "the hotspot migrates under fair sharing");
        assert!(
            fair.mean_round_us > fifo.mean_round_us,
            "fair-share rounds must stretch under foreground load: \
             fair mean {} µs !> fifo mean {} µs",
            fair.mean_round_us,
            fifo.mean_round_us
        );
        assert!(fair.max_round_us > fifo.max_round_us);
    }

    /// The FIFO-fixed cells of the ablation are plain pre-copy runs — the
    /// ablation must not perturb the baseline configuration it compares
    /// against.
    #[test]
    fn link_model_ablation_covers_both_models() {
        let cells = run_link_model_ablation(2).unwrap();
        assert_eq!(
            cells.len(),
            12,
            "2 scenarios x 2 link models x 3 strategies"
        );
        for model in LINK_MODEL_MODELS {
            assert!(cells.iter().any(|c| c.link_model == model.name()));
        }
        // Spot-check one FIFO cell against the same scenario run directly.
        let direct = FleetScenario::new(FleetScenarioKind::RollingHotspot, 2)
            .with_tuning(FleetTuning::default().with_mode(MigrationMode::PreCopy))
            .run(StrategyKind::Pam)
            .unwrap();
        let cell = cells
            .iter()
            .find(|c| {
                c.scenario == "rolling_hotspot"
                    && c.strategy == StrategyKind::Pam.build().name()
                    && c.link_model == "fifo_fixed"
            })
            .unwrap();
        assert_eq!(cell.p99_us, direct.totals.p99_us);
        assert_eq!(cell.migrations, direct.totals.migrations);
        assert_eq!(cell.blackout_us, direct.totals.blackout_us);
    }

    #[test]
    fn identical_runs_produce_byte_identical_reports() {
        let scenario = FleetScenario::new(FleetScenarioKind::FlashCrowd, 3);
        let a = serde_json::to_string(&scenario.run(StrategyKind::Pam).unwrap()).unwrap();
        let b = serde_json::to_string(&scenario.run(StrategyKind::Pam).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matrix_covers_every_cell_and_round_trips_through_json() {
        let output = run_fleet_matrix(2).unwrap();
        assert_eq!(
            output.results.len(),
            48,
            "4 scenarios x 2 modes x 2 batches x 3 strategies"
        );
        let json = serde_json::to_string(&output).unwrap();
        let back: FleetBenchOutput = serde_json::from_str(&json).unwrap();
        assert_eq!(back, output);
        // Spot-check: the no-migration baseline never migrates anywhere,
        // under either transfer mode and either batch size.
        for kind in FleetScenarioKind::ALL {
            for mode in FLEET_BENCH_MODES {
                for batch in FLEET_BENCH_BATCHES {
                    assert_eq!(
                        entry(&output, kind, StrategyKind::Original, mode, batch)
                            .report
                            .totals
                            .migrations,
                        0
                    );
                }
            }
        }
    }

    /// The parallel-runner tentpole's fidelity criterion, now across *both*
    /// parallelism dimensions: the matrix output must be byte-identical at
    /// every thread count *and* every within-cell shard count — same cells,
    /// same order, same numbers — and the per-cell event counts (the
    /// deterministic half of the timings side channel) must agree too.
    #[test]
    fn parallel_matrix_is_byte_identical_to_serial() {
        let (serial, serial_timings) = run_fleet_matrix_jobs(2, 1).unwrap();
        let (parallel, parallel_timings) = run_fleet_matrix_opts(2, 4, 2).unwrap();
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "matrix JSON must not depend on the thread or shard count"
        );
        assert_eq!(serial_timings.cells.len(), 48);
        assert_eq!(parallel_timings.cells.len(), 48);
        assert_eq!(serial_timings.jobs, 1);
        assert_eq!(serial_timings.shards, 1);
        assert_eq!(parallel_timings.jobs, 4);
        assert_eq!(parallel_timings.shards, 2);
        let serial_events: Vec<u64> = serial_timings.cells.iter().map(|c| c.events).collect();
        let parallel_events: Vec<u64> = parallel_timings.cells.iter().map(|c| c.events).collect();
        assert_eq!(
            serial_events, parallel_events,
            "event counts are deterministic"
        );
        assert!(serial_timings.total_events > 0);
        assert!(serial_timings.cells.iter().all(|c| c.events > 0));
        // The sequential matrix reports no lanes; the sharded one reports
        // per-lane counters that sum to the cell's injected packets.
        assert!(serial_timings.cells.iter().all(|c| c.lanes.is_empty()));
        assert!(parallel_timings
            .cells
            .iter()
            .all(|c| c.lanes.len() == 2 && c.lanes.iter().map(|l| l.packets).sum::<u64>() > 0));
    }

    /// The scaling curve runs its own determinism wall (every sharded point
    /// byte-compared to the sequential reference) and reports honest
    /// synchronisation overhead per lane.
    #[test]
    fn scale_curve_points_carry_lane_accounting() {
        let points = run_scale_curve(&[3], &[1, 2]).unwrap();
        assert_eq!(points.len(), 2);
        let sequential = &points[0];
        assert_eq!(sequential.shards, 1);
        assert_eq!(sequential.speedup, 1.0);
        assert!(sequential.lanes.is_empty());
        assert_eq!(sequential.windows, 0);
        let sharded = &points[1];
        assert_eq!(sharded.shards, 2);
        assert_eq!(sharded.servers, 3);
        assert_eq!(
            sharded.events, sequential.events,
            "events are deterministic"
        );
        assert!(sharded.windows > 0);
        assert_eq!(sharded.lanes.len(), 2);
        assert!(sharded.lanes.iter().map(|l| l.packets).sum::<u64>() > 0);
        assert!(sharded.speedup > 0.0);
    }

    /// The tentpole's fidelity criterion: batch=1 must be *exactly* the
    /// historical unbatched datapath — an explicitly batch-1 scenario yields
    /// a byte-identical report to the default-constructed one.
    #[test]
    fn batch_one_is_byte_identical_to_the_default_datapath() {
        let kind = FleetScenarioKind::RollingHotspot;
        let default_run = FleetScenario::new(kind, 2).run(StrategyKind::Pam).unwrap();
        let batch1_run = FleetScenario::new(kind, 2)
            .with_tuning(FleetTuning::default().with_batch(1))
            .run(StrategyKind::Pam)
            .unwrap();
        assert_eq!(
            serde_json::to_string(&default_run).unwrap(),
            serde_json::to_string(&batch1_run).unwrap()
        );
    }

    /// The estimator tentpole's fidelity criterion: `estimator = exact` is
    /// not a new mode — it must reproduce the default-constructed scenario
    /// (and therefore the committed v3 baseline) byte-identically.
    #[test]
    fn exact_estimator_is_byte_identical_to_the_default() {
        let kind = FleetScenarioKind::FlashCrowd;
        let default_run = FleetScenario::new(kind, 2).run(StrategyKind::Pam).unwrap();
        let exact_run = FleetScenario::new(kind, 2)
            .with_tuning(FleetTuning::default().with_estimator(EstimatorKind::Exact))
            .run(StrategyKind::Pam)
            .unwrap();
        assert_eq!(
            serde_json::to_string(&default_run).unwrap(),
            serde_json::to_string(&exact_run).unwrap()
        );
    }

    /// Both estimators feed the ladder from the same tick-sample window, so
    /// on the same seeded trace the *decisions* must agree exactly; what the
    /// sketch buys is the memory column — the acceptance bar is ≥10x less
    /// estimator memory on a 100k+-flow flash crowd.
    #[test]
    fn estimator_ablation_sketch_matches_decisions_at_a_fraction_of_the_memory() {
        let cells = run_estimator_ablation(3, 100_000).unwrap();
        assert_eq!(cells.len(), 6, "3 strategies x 2 estimator kinds");
        for pair in cells.chunks(2) {
            let (exact, sketch) = (&pair[0], &pair[1]);
            assert_eq!(exact.estimator, "exact");
            assert_eq!(sketch.estimator, "sketch");
            assert_eq!(exact.strategy, sketch.strategy);
            assert_eq!(exact.migrations, sketch.migrations, "{}", exact.strategy);
            assert_eq!(exact.scale_outs, sketch.scale_outs, "{}", exact.strategy);
            assert_eq!(exact.p99_us, sketch.p99_us, "{}", exact.strategy);
            assert_eq!(exact.drops, sketch.drops, "{}", exact.strategy);
            assert!(
                exact.estimator_bytes >= 10 * sketch.estimator_bytes,
                "{}: exact {} B !>= 10x sketch {} B",
                exact.strategy,
                exact.estimator_bytes,
                sketch.estimator_bytes
            );
            assert_eq!((exact.epsilon, exact.delta), (0.0, 0.0));
            assert!(sketch.epsilon > 0.0 && sketch.delta > 0.0);
        }
    }

    /// Scenario serde keeps the historical flat key layout: pre-redesign
    /// JSON (no `estimator`/`flows` keys) parses to the baseline tuning, and
    /// a round trip preserves every dimension.
    #[test]
    fn scenario_serde_defaults_missing_tuning_keys() {
        let scenario = FleetScenario::new(FleetScenarioKind::FlashCrowd, 4).with_tuning(
            FleetTuning::default()
                .with_mode(MigrationMode::PreCopy)
                .with_estimator(EstimatorKind::Sketch)
                .with_flows(5000),
        );
        let json = serde_json::to_string(&scenario).unwrap();
        let back: FleetScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
        // A pre-redesign scenario: flat keys, no estimator/flows.
        let legacy = r#"{"kind":"FlashCrowd","servers":2,"migration_mode":"PreCopy","batch":8}"#;
        let parsed: FleetScenario = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed.tuning.migration_mode, MigrationMode::PreCopy);
        assert_eq!(parsed.tuning.batch, 8);
        assert_eq!(parsed.tuning.estimator, EstimatorKind::Exact);
        assert_eq!(parsed.tuning.flows, 2000);
        assert_eq!(parsed.seed, DEFAULT_FLEET_SEED);
        assert_eq!(parsed.baseline, FleetScenario::new(parsed.kind, 2).baseline);
    }

    /// Pins the one-release deprecated shims: the old per-dimension setters
    /// must be exactly the tuning path.
    #[test]
    #[allow(deprecated)]
    fn deprecated_scenario_setters_are_thin_tuning_shims() {
        let kind = FleetScenarioKind::RollingHotspot;
        let shimmed = FleetScenario::new(kind, 2)
            .with_mode(MigrationMode::PreCopy)
            .with_batch(8)
            .with_link_model(LinkModel::fair_share());
        let tuned = FleetScenario::new(kind, 2).with_tuning(
            FleetTuning::default()
                .with_mode(MigrationMode::PreCopy)
                .with_batch(8)
                .with_link_model(LinkModel::fair_share()),
        );
        assert_eq!(shimmed, tuned);
    }

    /// Batching must not change *what* is delivered on a drop-free scenario,
    /// only when: the diurnal wave under the no-migration strategy drops
    /// nothing — for any cause — at either batch size. (Injected and
    /// delivered differ only by the in-flight tail cut off at the horizon,
    /// which grows slightly with the batch size.)
    #[test]
    fn batched_diurnal_wave_stays_drop_free() {
        for batch in FLEET_BENCH_BATCHES {
            let report = FleetScenario::new(FleetScenarioKind::DiurnalWave, 2)
                .with_tuning(FleetTuning::default().with_batch(batch))
                .run(StrategyKind::Original)
                .unwrap();
            assert_eq!(report.totals.drops_overload, 0, "batch={batch}");
            assert_eq!(report.totals.drops_policy, 0, "batch={batch}");
            assert_eq!(report.totals.drops_migration, 0, "batch={batch}");
        }
    }

    /// The PR's acceptance criterion: on the 4-server rolling hotspot at
    /// equal config, pre-copy strictly shrinks the total blackout time and
    /// never drops more packets to migration than stop-and-copy.
    #[test]
    fn pre_copy_beats_stop_and_copy_on_rolling_hotspot_blackout() {
        let scenario = FleetScenario::new(FleetScenarioKind::RollingHotspot, 4);
        let stop = scenario
            .with_tuning(FleetTuning::default().with_mode(MigrationMode::StopAndCopy))
            .run(StrategyKind::Pam)
            .unwrap();
        let pre = scenario
            .with_tuning(FleetTuning::default().with_mode(MigrationMode::PreCopy))
            .run(StrategyKind::Pam)
            .unwrap();
        assert!(stop.totals.migrations > 0, "the hotspot forces migrations");
        assert!(pre.totals.migrations > 0);
        assert!(
            pre.totals.blackout_us < stop.totals.blackout_us,
            "pre-copy blackout {} us !< stop-and-copy {} us",
            pre.totals.blackout_us,
            stop.totals.blackout_us
        );
        assert!(
            pre.totals.drops_migration <= stop.totals.drops_migration,
            "pre-copy dropped {} > stop-and-copy {}",
            pre.totals.drops_migration,
            stop.totals.drops_migration
        );
    }
}
