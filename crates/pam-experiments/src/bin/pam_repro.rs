//! `pam-repro` — regenerates the paper's tables and figures from the command
//! line.
//!
//! ```text
//! pam-repro table1      # Table 1: vNF capacities on SmartNIC and CPU
//! pam-repro figure2a    # Figure 2(a): service chain latency
//! pam-repro figure2b    # Figure 2(b): service chain throughput
//! pam-repro ablations   # A2/A3/A4 ablation sweeps
//! pam-repro quick       # a fast smoke run of figure 2 (reduced sweep)
//! pam-repro all         # everything above
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(
    clippy::dbg_macro,
    clippy::todo,
    clippy::unimplemented,
    clippy::mem_forget
)]

use pam_experiments::ablations::{
    migration_cost_sweep, pcie_sweep, render_migration_cost, render_pcie_sweep,
    render_strategy_sweep, strategy_sweep,
};
use pam_experiments::figure2::{run_figure2, Figure2Config};
use pam_experiments::table1::run_table1;
use pam_types::SimDuration;

fn print_table1() {
    let results = match run_table1(&[]) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", results.render());
    println!(
        "worst relative error vs the paper's Table 1: {:.1}%\n",
        results.worst_relative_error() * 100.0
    );
}

fn print_figure2(config: &Figure2Config) {
    let results = run_figure2(config);
    println!("{}", results.render_latency());
    println!(
        "PAM reduces mean service-chain latency by {:.1}% vs the naive migration (paper: ~18%)\n",
        results.pam_latency_reduction_vs_naive()
    );
    println!("{}", results.render_throughput());
    println!();
}

fn print_ablations() {
    let latencies: Vec<SimDuration> = [2u64, 5, 10, 22, 40, 60]
        .iter()
        .map(|&us| SimDuration::from_micros(us))
        .collect();
    println!("{}", render_pcie_sweep(&pcie_sweep(&latencies)));
    println!();
    let scenarios = 200;
    println!(
        "{}",
        render_strategy_sweep(&strategy_sweep(scenarios, 2018), scenarios)
    );
    println!();
    println!(
        "{}",
        render_migration_cost(&migration_cost_sweep(&[100, 1_000, 10_000, 50_000]))
    );
}

fn main() {
    let command = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match command.as_str() {
        "table1" => print_table1(),
        "figure2a" | "figure2b" | "figure2" => print_figure2(&Figure2Config::default()),
        "quick" => print_figure2(&Figure2Config::quick()),
        "ablations" => print_ablations(),
        "all" => {
            print_table1();
            print_figure2(&Figure2Config::default());
            print_ablations();
        }
        other => {
            eprintln!("unknown command `{other}`");
            eprintln!("usage: pam-repro [table1|figure2a|figure2b|quick|ablations|all]");
            std::process::exit(2);
        }
    }
}
