//! `fleet_bench` — the deterministic fleet benchmark harness behind CI's
//! perf gate.
//!
//! ```text
//! fleet_bench                               # run the matrix, JSON on stdout
//! fleet_bench --out report.json             # write the JSON to a file
//!                                           # instead of stdout
//! fleet_bench --check BENCH_baseline.json   # compare against a baseline;
//!                                           # exit 1 on regression
//! fleet_bench --tolerance 0.25              # relative tolerance band
//! fleet_bench --servers 4                   # fleet size (default 4)
//! ```
//!
//! Every run uses fixed seeds (see `pam_experiments::fleet`), so two runs of
//! the same build produce byte-identical JSON and the baseline comparison is
//! meaningful: metrics moving past the tolerance band are real changes in
//! the algorithms or the simulator, not noise.

use std::process::ExitCode;

use pam_experiments::fleet::{run_fleet_matrix, FleetBenchEntry, FleetBenchOutput};

/// Relative tolerance band the gate allows before calling a change a
/// regression (generous: the runs are deterministic, so any drift at all is
/// an intentional code change — the band only tolerates *small* ones).
const DEFAULT_TOLERANCE: f64 = 0.25;

/// Absolute slack on packet counters, so a baseline of zero drops does not
/// fail on a handful of new ones.
const COUNT_SLACK: f64 = 64.0;

struct Args {
    out: Option<String>,
    check: Option<String>,
    tolerance: f64,
    servers: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        check: None,
        tolerance: DEFAULT_TOLERANCE,
        servers: 4,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--out" => args.out = Some(value("--out")?),
            "--check" => args.check = Some(value("--check")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--servers" => {
                args.servers = value("--servers")?
                    .parse()
                    .map_err(|e| format!("--servers: {e}"))?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// One gate comparison: fails when `current` worsens past the band.
struct Check {
    metric: &'static str,
    baseline: f64,
    current: f64,
    failed: bool,
}

/// Metrics where *larger* is worse (latency, drops, blackout).
fn worse_if_above(metric: &'static str, baseline: f64, current: f64, tolerance: f64) -> Check {
    let slack = if metric.ends_with("drops") {
        COUNT_SLACK
    } else {
        0.0
    };
    let bound = baseline * (1.0 + tolerance) + slack;
    Check {
        metric,
        baseline,
        current,
        failed: current > bound,
    }
}

/// Metrics where *smaller* is worse (delivered packets).
fn worse_if_below(metric: &'static str, baseline: f64, current: f64, tolerance: f64) -> Check {
    Check {
        metric,
        baseline,
        current,
        failed: current < baseline * (1.0 - tolerance),
    }
}

fn gate_entry(baseline: &FleetBenchEntry, current: &FleetBenchEntry, tolerance: f64) -> Vec<Check> {
    let b = &baseline.report.totals;
    let c = &current.report.totals;
    vec![
        worse_if_above("p50_us", b.p50_us, c.p50_us, tolerance),
        worse_if_above("p99_us", b.p99_us, c.p99_us, tolerance),
        worse_if_above("mean_us", b.mean_us, c.mean_us, tolerance),
        worse_if_above("blackout_us", b.blackout_us, c.blackout_us, tolerance),
        worse_if_above(
            "overload_drops",
            b.drops_overload as f64,
            c.drops_overload as f64,
            tolerance,
        ),
        worse_if_above(
            "migration_drops",
            b.drops_migration as f64,
            c.drops_migration as f64,
            tolerance,
        ),
        worse_if_below(
            "delivered",
            b.delivered as f64,
            c.delivered as f64,
            tolerance,
        ),
    ]
}

fn run_gate(baseline: &FleetBenchOutput, current: &FleetBenchOutput, tolerance: f64) -> bool {
    // A baseline from a different configuration is a setup error, not a
    // performance regression — comparing cells anyway would misattribute the
    // whole delta to the algorithms.
    if (baseline.version, baseline.servers, baseline.seed)
        != (current.version, current.servers, current.seed)
    {
        eprintln!(
            "perf-gate: CONFIG MISMATCH — baseline is version {} / {} servers / seed {}, \
             this run is version {} / {} servers / seed {}; regenerate the baseline \
             with the same flags instead of comparing",
            baseline.version,
            baseline.servers,
            baseline.seed,
            current.version,
            current.servers,
            current.seed
        );
        return false;
    }
    let mut regressions = 0usize;
    let mut missing = 0usize;
    for base in &baseline.results {
        let Some(cur) = current.results.iter().find(|e| {
            e.scenario == base.scenario
                && e.strategy == base.strategy
                && e.migration_mode == base.migration_mode
        }) else {
            eprintln!(
                "perf-gate: MISSING  {}/{}/{} — cell not in current matrix",
                base.scenario, base.strategy, base.migration_mode
            );
            missing += 1;
            continue;
        };
        for check in gate_entry(base, cur, tolerance) {
            if check.failed {
                eprintln!(
                    "perf-gate: FAIL     {}/{}/{} {}: baseline {:.1}, current {:.1} (tolerance {:.0}%)",
                    base.scenario,
                    base.strategy,
                    base.migration_mode,
                    check.metric,
                    check.baseline,
                    check.current,
                    tolerance * 100.0
                );
                regressions += 1;
            }
        }
    }
    if regressions == 0 && missing == 0 {
        eprintln!(
            "perf-gate: OK — {} cells within the {:.0}% band",
            baseline.results.len(),
            tolerance * 100.0
        );
        true
    } else {
        eprintln!("perf-gate: {regressions} regression(s), {missing} missing cell(s)");
        false
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("fleet_bench: {e}");
            eprintln!(
                "usage: fleet_bench [--out PATH] [--check BASELINE] [--tolerance F] [--servers N]"
            );
            return ExitCode::FAILURE;
        }
    };

    let output = match run_fleet_matrix(args.servers) {
        Ok(output) => output,
        Err(e) => {
            eprintln!("fleet_bench: matrix failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = serde_json::to_string(&output).expect("report serializes");

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("fleet_bench: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        println!("{json}");
    }

    if let Some(path) = &args.check {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("fleet_bench: reading baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline: FleetBenchOutput = match serde_json::from_str(&text) {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("fleet_bench: parsing baseline {path}: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        if !run_gate(&baseline, &output, args.tolerance) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
